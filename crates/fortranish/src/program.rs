//! Program structure: units, symbols, and executable op streams.
//!
//! Each program unit's statements are flattened into a vector of [`Op`]s
//! with resolved jump targets: block `IF`/`ELSE`/`END IF` and both `DO`
//! forms compile to conditional jumps, labels map to op indices, and
//! `GO TO` is a direct jump — which is exactly the control flow the
//! Force macro expansions rely on.

use std::collections::HashMap;

use crate::ast::{BinOp, DeclItem, Expr, LValue, Stmt, Ty};
use crate::error::{FortError, FortErrorKind};
use crate::lexer::{lex, LexedLine};
use crate::parser::parse_statement;

/// Where a symbol's storage lives.
#[derive(Debug, Clone, PartialEq)]
pub enum Storage {
    /// Process-private storage in the unit's frame; `base` is the first
    /// word of possibly several (arrays).
    Local {
        /// First word in the frame.
        base: usize,
    },
    /// Shared storage: a named block plus a word offset within it.
    Shared {
        /// Block name (a COMMON block, or a Force shared variable's own
        /// one-variable block).
        block: String,
        /// Word offset within the block.
        offset: usize,
    },
    /// The process identifier (`ident` variable of the Force header).
    PseudoMe,
    /// The force size (`of` variable of the Force header).
    PseudoNp,
    /// Subroutine dummy argument `i`.
    Arg(usize),
}

/// A resolved symbol.
#[derive(Debug, Clone, PartialEq)]
pub struct Symbol {
    /// Value type.
    pub ty: Ty,
    /// Array dimensions (empty = scalar; column-major, 1-based).
    pub dims: Vec<usize>,
    /// Storage class.
    pub storage: Storage,
}

impl Symbol {
    /// Total words of storage.
    pub fn words(&self) -> usize {
        self.dims.iter().product::<usize>().max(1)
    }
}

/// One executable operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Evaluate and store.
    Assign(LValue, Expr),
    /// Jump to the target if the condition is false.
    JumpIfFalse(Expr, usize),
    /// Unconditional jump.
    Jump(usize),
    /// Subroutine call (user unit or intrinsic).
    Call(String, Vec<Expr>),
    /// List-directed print.
    Print(Vec<Expr>),
    /// Return from the unit.
    Return,
    /// Stop the process.
    Stop,
    /// No operation (labels, CONTINUE).
    Nop,
}

/// One program unit, compiled.
#[derive(Debug)]
pub struct Unit {
    /// Unit name.
    pub name: String,
    /// Whether this is the PROGRAM (driver) unit.
    pub is_program: bool,
    /// Dummy argument names, in order.
    pub params: Vec<String>,
    /// Symbol table.
    pub symbols: HashMap<String, Symbol>,
    /// Executable ops.
    pub ops: Vec<Op>,
    /// Source line of each op (diagnostics).
    pub op_lines: Vec<usize>,
    /// Size of the process-private frame in words.
    pub frame_words: usize,
}

/// A compiled program: all units plus shared-block geometry.
#[derive(Debug)]
pub struct Program {
    /// Units by name.
    pub units: HashMap<String, Unit>,
    /// The PROGRAM unit's name, if present.
    pub program_unit: Option<String>,
    /// Shared blocks: name → total words (consistent across units).
    pub shared_blocks: Vec<(String, usize)>,
}

impl Program {
    /// Compile source text.  `shared_names` are the Force shared/async
    /// variables (global by name); `ZZPENV` COMMON members become the
    /// process-id / force-size pseudo variables.
    pub fn compile(
        source: &str,
        shared_names: &HashMap<String, usize>,
    ) -> Result<Program, FortError> {
        let lines = lex(source)?;
        let mut stmts = Vec::with_capacity(lines.len());
        for line in &lines {
            let stmt = parse_statement(&line.tokens, line.line_no)?;
            stmts.push((line.clone(), stmt));
        }

        // Split into units.
        let mut units = HashMap::new();
        let mut program_unit = None;
        let mut blocks: HashMap<String, usize> = HashMap::new();
        let mut block_order: Vec<String> = Vec::new();
        let mut i = 0usize;
        while i < stmts.len() {
            let (line, stmt) = &stmts[i];
            let (name, params, is_program) = match stmt {
                Stmt::Program(n) => (n.clone(), Vec::new(), true),
                Stmt::Subroutine(n, p) => (n.clone(), p.clone(), false),
                other => {
                    return Err(FortError::at(
                        line.line_no,
                        FortErrorKind::Structure(format!(
                            "statement outside any program unit: {other:?}"
                        )),
                    ))
                }
            };
            // Find the matching END.
            let mut j = i + 1;
            let mut end = None;
            while j < stmts.len() {
                if matches!(stmts[j].1, Stmt::EndUnit) {
                    end = Some(j);
                    break;
                }
                j += 1;
            }
            let end = end.ok_or_else(|| {
                FortError::at(
                    line.line_no,
                    FortErrorKind::Structure(format!("unit {name} has no END")),
                )
            })?;
            let unit = compile_unit(
                name.clone(),
                params,
                is_program,
                &stmts[i + 1..end],
                shared_names,
                &mut blocks,
                &mut block_order,
            )?;
            if is_program {
                if program_unit.is_some() {
                    return Err(FortError::at(
                        line.line_no,
                        FortErrorKind::Structure("more than one PROGRAM unit".into()),
                    ));
                }
                program_unit = Some(name.clone());
            }
            if units.insert(name.clone(), unit).is_some() {
                return Err(FortError::at(
                    line.line_no,
                    FortErrorKind::Structure(format!("duplicate unit {name}")),
                ));
            }
            i = end + 1;
        }
        if units.is_empty() {
            return Err(FortError::general(FortErrorKind::Structure(
                "source contains no program units".into(),
            )));
        }
        // Force shared variables are one-variable blocks.
        for (name, words) in shared_names {
            let block = blocks.entry(name.clone()).or_insert(*words);
            if *block != *words {
                return Err(FortError::general(FortErrorKind::Structure(format!(
                    "shared variable {name} has inconsistent sizes"
                ))));
            }
            if !block_order.contains(name) {
                block_order.push(name.clone());
            }
        }
        let shared_blocks = block_order.iter().map(|b| (b.clone(), blocks[b])).collect();
        Ok(Program {
            units,
            program_unit,
            shared_blocks,
        })
    }

    /// Look up a unit.
    pub fn unit(&self, name: &str) -> Option<&Unit> {
        self.units.get(name)
    }
}

struct DoFrame {
    terminal: Option<u32>,
    var: String,
    step: Expr,
    head: usize,
    exit_patch: usize,
}

struct IfFrame {
    false_patch: usize,
    end_patches: Vec<usize>,
}

#[allow(clippy::too_many_arguments)]
fn compile_unit(
    name: String,
    params: Vec<String>,
    is_program: bool,
    body: &[(LexedLine, Stmt)],
    shared_names: &HashMap<String, usize>,
    blocks: &mut HashMap<String, usize>,
    block_order: &mut Vec<String>,
) -> Result<Unit, FortError> {
    // ---- pass 1: declarations -------------------------------------------
    let mut decls: HashMap<String, (Ty, Vec<usize>)> = HashMap::new();
    let mut commons: Vec<(String, Vec<DeclItem>, usize)> = Vec::new(); // (block, items, line)
    for (line, stmt) in body {
        match stmt {
            Stmt::Decl { ty, items } => {
                for it in items {
                    if decls
                        .insert(it.name.clone(), (*ty, it.dims.clone()))
                        .is_some()
                    {
                        return Err(FortError::at(
                            line.line_no,
                            FortErrorKind::Structure(format!(
                                "{} declared twice in {name}",
                                it.name
                            )),
                        ));
                    }
                }
            }
            Stmt::Common { block, items } => {
                commons.push((block.clone(), items.clone(), line.line_no));
            }
            _ => {}
        }
    }

    let ty_of = |n: &str| -> (Ty, Vec<usize>) {
        decls
            .get(n)
            .cloned()
            .unwrap_or_else(|| (Ty::implicit_for(n), Vec::new()))
    };

    // ---- pass 2: symbol table ---------------------------------------------
    let mut symbols: HashMap<String, Symbol> = HashMap::new();
    // Dummy arguments first.
    for (i, p) in params.iter().enumerate() {
        let (ty, dims) = ty_of(p);
        symbols.insert(
            p.clone(),
            Symbol {
                ty,
                dims,
                storage: Storage::Arg(i),
            },
        );
    }
    // COMMON members.
    for (block, items, line_no) in &commons {
        if block == "ZZPENV" {
            // the private environment: (me, np)
            for (i, it) in items.iter().enumerate() {
                let storage = match i {
                    0 => Storage::PseudoMe,
                    1 => Storage::PseudoNp,
                    _ => {
                        return Err(FortError::at(
                            *line_no,
                            FortErrorKind::Structure(
                                "COMMON /ZZPENV/ has exactly two members".into(),
                            ),
                        ))
                    }
                };
                symbols.insert(
                    it.name.clone(),
                    Symbol {
                        ty: Ty::Integer,
                        dims: Vec::new(),
                        storage,
                    },
                );
            }
            continue;
        }
        let mut offset = 0usize;
        for it in items {
            let (ty, mut dims) = ty_of(&it.name);
            if !it.dims.is_empty() {
                dims = it.dims.clone();
            }
            let words = dims.iter().product::<usize>().max(1);
            symbols.insert(
                it.name.clone(),
                Symbol {
                    ty,
                    dims,
                    storage: Storage::Shared {
                        block: block.clone(),
                        offset,
                    },
                },
            );
            offset += words;
        }
        match blocks.get(block) {
            Some(&w) if w != offset => {
                return Err(FortError::at(
                    *line_no,
                    FortErrorKind::Structure(format!(
                        "COMMON /{block}/ declared with {offset} words here but {w} elsewhere"
                    )),
                ))
            }
            Some(_) => {}
            None => {
                blocks.insert(block.clone(), offset);
                block_order.push(block.clone());
            }
        }
    }
    // Declared names not yet placed: Force shared variables are global by
    // name, everything else is a process-private local.
    let mut frame_words = 0usize;
    let mut declared: Vec<&String> = decls.keys().collect();
    declared.sort(); // deterministic layout
    for n in declared {
        if symbols.contains_key(n) {
            continue;
        }
        let (ty, dims) = ty_of(n);
        let words = dims.iter().product::<usize>().max(1);
        let storage = if let Some(&shared_words) = shared_names.get(n) {
            if shared_words != words {
                return Err(FortError::general(FortErrorKind::Structure(format!(
                    "shared variable {n}: unit {name} declares {words} words, elsewhere {shared_words}"
                ))));
            }
            Storage::Shared {
                block: n.clone(),
                offset: 0,
            }
        } else {
            let base = frame_words;
            frame_words += words;
            Storage::Local { base }
        };
        symbols.insert(n.clone(), Symbol { ty, dims, storage });
    }

    // ---- pass 3: ops ----------------------------------------------------------
    let mut ops: Vec<Op> = Vec::new();
    let mut op_lines: Vec<usize> = Vec::new();
    let mut labels: HashMap<u32, usize> = HashMap::new();
    let mut gotos: Vec<(usize, u32, usize)> = Vec::new(); // (op idx, label, line)
    let mut if_stack: Vec<IfFrame> = Vec::new();
    let mut do_stack: Vec<DoFrame> = Vec::new();

    // Hidden loop-variable names are not needed: DO re-evaluates bounds,
    // which we document as a (benign) deviation from F77 trip counts.

    for (line, stmt) in body {
        let line_no = line.line_no;
        if let Some(label) = line.label {
            if labels.insert(label, ops.len()).is_some() {
                return Err(FortError::at(
                    line_no,
                    FortErrorKind::Structure(format!("duplicate label {label}")),
                ));
            }
        }
        emit_stmt(
            stmt,
            line_no,
            &mut ops,
            &mut op_lines,
            &mut gotos,
            &mut if_stack,
            &mut do_stack,
        )?;
        // Close labeled DO loops terminating at this line.
        while let Some(frame) = do_stack.last() {
            match (frame.terminal, line.label) {
                (Some(t), Some(l)) if t == l => {
                    let frame = do_stack.pop().expect("frame present");
                    emit_do_close(frame, &mut ops, &mut op_lines, line_no);
                }
                _ => break,
            }
        }
    }

    if let Some(f) = if_stack.last() {
        let _ = f;
        return Err(FortError::general(FortErrorKind::Structure(format!(
            "unit {name}: IF block not closed by END IF"
        ))));
    }
    if !do_stack.is_empty() {
        return Err(FortError::general(FortErrorKind::Structure(format!(
            "unit {name}: DO loop not closed"
        ))));
    }

    // Implicit return at unit end.
    ops.push(Op::Return);
    op_lines.push(body.last().map(|(l, _)| l.line_no).unwrap_or(0));

    // Resolve GOTOs.
    for (op_idx, label, line_no) in gotos {
        let target = *labels.get(&label).ok_or_else(|| {
            FortError::at(
                line_no,
                FortErrorKind::Structure(format!("GO TO unknown label {label}")),
            )
        })?;
        match &mut ops[op_idx] {
            Op::Jump(t) | Op::JumpIfFalse(_, t) => *t = target,
            other => unreachable!("goto fixup on {other:?}"),
        }
    }

    // Collect implicit locals used but never declared (scalars only).
    let mut implicit: Vec<String> = Vec::new();
    for op in &ops {
        collect_names(op, &mut |n| {
            if !symbols.contains_key(n) && !implicit.contains(&n.to_string()) {
                implicit.push(n.to_string());
            }
        });
    }
    implicit.sort();
    for n in implicit {
        if crate::intrinsics::is_intrinsic_function(&n)
            || crate::intrinsics::is_intrinsic_subroutine(&n)
        {
            continue;
        }
        let storage = if let Some(&w) = shared_names.get(&n) {
            if w != 1 {
                return Err(FortError::general(FortErrorKind::Structure(format!(
                    "shared array {n} used without declaration in {name}"
                ))));
            }
            Storage::Shared {
                block: n.clone(),
                offset: 0,
            }
        } else {
            let base = frame_words;
            frame_words += 1;
            Storage::Local { base }
        };
        symbols.insert(
            n.clone(),
            Symbol {
                ty: Ty::implicit_for(&n),
                dims: Vec::new(),
                storage,
            },
        );
    }

    Ok(Unit {
        name,
        is_program,
        params,
        symbols,
        ops,
        op_lines,
        frame_words,
    })
}

/// Emit ops for one statement.
fn emit_stmt(
    stmt: &Stmt,
    line_no: usize,
    ops: &mut Vec<Op>,
    op_lines: &mut Vec<usize>,
    gotos: &mut Vec<(usize, u32, usize)>,
    if_stack: &mut Vec<IfFrame>,
    do_stack: &mut Vec<DoFrame>,
) -> Result<(), FortError> {
    let push = |op: Op, ops: &mut Vec<Op>, op_lines: &mut Vec<usize>| {
        ops.push(op);
        op_lines.push(line_no);
    };
    match stmt {
        Stmt::Decl { .. } | Stmt::Common { .. } => {
            // declarations emit a placeholder so labels on them still work
            push(Op::Nop, ops, op_lines);
        }
        Stmt::Continue => push(Op::Nop, ops, op_lines),
        Stmt::Assign { lhs, rhs } => push(Op::Assign(lhs.clone(), rhs.clone()), ops, op_lines),
        Stmt::Call { name, args } => push(Op::Call(name.clone(), args.clone()), ops, op_lines),
        Stmt::Print(items) => push(Op::Print(items.clone()), ops, op_lines),
        Stmt::Return => push(Op::Return, ops, op_lines),
        Stmt::Stop => push(Op::Stop, ops, op_lines),
        Stmt::Goto(l) => {
            gotos.push((ops.len(), *l, line_no));
            push(Op::Jump(usize::MAX), ops, op_lines);
        }
        Stmt::ArithIf(e, l_neg, l_zero, l_pos) => {
            // Branch on sign.  The expression is evaluated up to twice;
            // expressions in this subset are side-effect free.
            use crate::ast::BinOp;
            let lt = Expr::Bin(BinOp::Lt, Box::new(e.clone()), Box::new(Expr::Int(0)));
            let eq = Expr::Bin(BinOp::Eq, Box::new(e.clone()), Box::new(Expr::Int(0)));
            // if !(e < 0) skip over the negative jump
            let skip1 = ops.len();
            push(Op::JumpIfFalse(lt, usize::MAX), ops, op_lines);
            gotos.push((ops.len(), *l_neg, line_no));
            push(Op::Jump(usize::MAX), ops, op_lines);
            let here = ops.len();
            patch(ops, skip1, here);
            let skip2 = ops.len();
            push(Op::JumpIfFalse(eq, usize::MAX), ops, op_lines);
            gotos.push((ops.len(), *l_zero, line_no));
            push(Op::Jump(usize::MAX), ops, op_lines);
            let here = ops.len();
            patch(ops, skip2, here);
            gotos.push((ops.len(), *l_pos, line_no));
            push(Op::Jump(usize::MAX), ops, op_lines);
        }
        Stmt::IfThen(cond) => {
            if_stack.push(IfFrame {
                false_patch: ops.len(),
                end_patches: Vec::new(),
            });
            push(Op::JumpIfFalse(cond.clone(), usize::MAX), ops, op_lines);
        }
        Stmt::ElseIf(cond) => {
            let frame = if_stack.last_mut().ok_or_else(|| {
                FortError::at(
                    line_no,
                    FortErrorKind::Structure("ELSE IF without IF".into()),
                )
            })?;
            // end-jump for the previous arm
            frame.end_patches.push(ops.len());
            push(Op::Jump(usize::MAX), ops, op_lines);
            // previous false branch lands here
            let here = ops.len();
            patch(ops, frame.false_patch, here);
            frame.false_patch = ops.len();
            push(Op::JumpIfFalse(cond.clone(), usize::MAX), ops, op_lines);
        }
        Stmt::Else => {
            let frame = if_stack.last_mut().ok_or_else(|| {
                FortError::at(line_no, FortErrorKind::Structure("ELSE without IF".into()))
            })?;
            frame.end_patches.push(ops.len());
            push(Op::Jump(usize::MAX), ops, op_lines);
            let here = ops.len();
            patch(ops, frame.false_patch, here);
            // mark "no pending false branch" with a Nop target patching to end
            frame.false_patch = usize::MAX;
        }
        Stmt::EndIf => {
            let frame = if_stack.pop().ok_or_else(|| {
                FortError::at(
                    line_no,
                    FortErrorKind::Structure("END IF without IF".into()),
                )
            })?;
            let here = ops.len();
            if frame.false_patch != usize::MAX {
                patch(ops, frame.false_patch, here);
            }
            for p in frame.end_patches {
                patch(ops, p, here);
            }
            push(Op::Nop, ops, op_lines);
        }
        Stmt::LogicalIf(cond, inner) => {
            let patch_idx = ops.len();
            push(Op::JumpIfFalse(cond.clone(), usize::MAX), ops, op_lines);
            emit_stmt(inner, line_no, ops, op_lines, gotos, if_stack, do_stack)?;
            let here = ops.len();
            patch(ops, patch_idx, here);
        }
        Stmt::Do {
            label,
            var,
            from,
            to,
            step,
        } => {
            let step = step.clone().unwrap_or(Expr::Int(1));
            push(
                Op::Assign(LValue::Name(var.clone()), from.clone()),
                ops,
                op_lines,
            );
            let head = ops.len();
            let cond = do_condition(var, to, &step);
            let exit_patch = ops.len();
            push(Op::JumpIfFalse(cond, usize::MAX), ops, op_lines);
            do_stack.push(DoFrame {
                terminal: *label,
                var: var.clone(),
                step,
                head,
                exit_patch,
            });
        }
        Stmt::EndDo => {
            let frame = do_stack.pop().ok_or_else(|| {
                FortError::at(
                    line_no,
                    FortErrorKind::Structure("END DO without DO".into()),
                )
            })?;
            if frame.terminal.is_some() {
                return Err(FortError::at(
                    line_no,
                    FortErrorKind::Structure("labeled DO must end at its label, not END DO".into()),
                ));
            }
            emit_do_close(frame, ops, op_lines, line_no);
        }
        Stmt::Program(_) | Stmt::Subroutine(_, _) | Stmt::EndUnit => {
            return Err(FortError::at(
                line_no,
                FortErrorKind::Structure("unit header inside a unit body".into()),
            ))
        }
    }
    Ok(())
}

/// `(step > 0 .AND. var <= to) .OR. (step < 0 .AND. var >= to)`
/// Recognize the exact condition shape emitted by [`do_condition`]:
/// `(STEP > 0 .AND. VAR <= TO) .OR. (STEP < 0 .AND. VAR >= TO)`.
///
/// The bytecode compiler uses this to fuse a structured DO-loop head
/// into a single trip-continuation instruction (which delegates the
/// completion test to `force-core`'s schedule range rule) instead of
/// re-evaluating the seven-node boolean tree — with `TO` and `STEP`
/// evaluated once per check rather than twice.  Returns
/// `(var, to, step)` on a match.
pub(crate) fn match_do_condition(e: &Expr) -> Option<(&Expr, &Expr, &Expr)> {
    use BinOp::{And, Ge, Gt, Le, Lt, Or};
    let is_zero = |e: &Expr| matches!(e, Expr::Int(0));
    let Expr::Bin(Or, up, down) = e else {
        return None;
    };
    let Expr::Bin(And, gt, le) = &**up else {
        return None;
    };
    let Expr::Bin(And, lt, ge) = &**down else {
        return None;
    };
    let Expr::Bin(Gt, s1, z1) = &**gt else {
        return None;
    };
    let Expr::Bin(Le, v1, t1) = &**le else {
        return None;
    };
    let Expr::Bin(Lt, s2, z2) = &**lt else {
        return None;
    };
    let Expr::Bin(Ge, v2, t2) = &**ge else {
        return None;
    };
    (is_zero(z1) && is_zero(z2) && s1 == s2 && v1 == v2 && t1 == t2)
        .then_some((&**v1, &**t1, &**s1))
}

fn do_condition(var: &str, to: &Expr, step: &Expr) -> Expr {
    let v = || Box::new(Expr::Var(var.to_string()));
    let t = || Box::new(to.clone());
    let s = || Box::new(step.clone());
    Expr::Bin(
        BinOp::Or,
        Box::new(Expr::Bin(
            BinOp::And,
            Box::new(Expr::Bin(BinOp::Gt, s(), Box::new(Expr::Int(0)))),
            Box::new(Expr::Bin(BinOp::Le, v(), t())),
        )),
        Box::new(Expr::Bin(
            BinOp::And,
            Box::new(Expr::Bin(BinOp::Lt, s(), Box::new(Expr::Int(0)))),
            Box::new(Expr::Bin(BinOp::Ge, v(), t())),
        )),
    )
}

fn emit_do_close(frame: DoFrame, ops: &mut Vec<Op>, op_lines: &mut Vec<usize>, line_no: usize) {
    let DoFrame {
        var,
        step,
        head,
        exit_patch,
        ..
    } = frame;
    ops.push(Op::Assign(
        LValue::Name(var.clone()),
        Expr::Bin(BinOp::Add, Box::new(Expr::Var(var)), Box::new(step)),
    ));
    op_lines.push(line_no);
    ops.push(Op::Jump(head));
    op_lines.push(line_no);
    let here = ops.len();
    patch(ops, exit_patch, here);
}

fn patch(ops: &mut [Op], idx: usize, target: usize) {
    match &mut ops[idx] {
        Op::Jump(t) | Op::JumpIfFalse(_, t) => *t = target,
        other => unreachable!("patch on {other:?}"),
    }
}

/// Walk all identifiers referenced by an op.
fn collect_names(op: &Op, f: &mut impl FnMut(&str)) {
    fn expr(e: &Expr, f: &mut impl FnMut(&str)) {
        match e {
            Expr::Var(n) => f(n),
            Expr::Index(n, args) => {
                f(n);
                for a in args {
                    expr(a, f);
                }
            }
            Expr::Un(_, a) => expr(a, f),
            Expr::Bin(_, a, b) => {
                expr(a, f);
                expr(b, f);
            }
            _ => {}
        }
    }
    match op {
        Op::Assign(lhs, rhs) => {
            match lhs {
                LValue::Name(n) => f(n),
                LValue::Elem(n, idx) => {
                    f(n);
                    for e in idx {
                        expr(e, f);
                    }
                }
            }
            expr(rhs, f);
        }
        Op::JumpIfFalse(e, _) => expr(e, f),
        Op::Call(_, args) => {
            for a in args {
                expr(a, f);
            }
        }
        Op::Print(items) => {
            for e in items {
                expr(e, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Program {
        Program::compile(src, &HashMap::new()).unwrap()
    }

    #[test]
    fn splits_units() {
        let p = compile(
            "      PROGRAM MAIN\n      X = 1\n      END\n      SUBROUTINE SUB(A)\n      RETURN\n      END\n",
        );
        assert_eq!(p.units.len(), 2);
        assert_eq!(p.program_unit.as_deref(), Some("MAIN"));
        assert!(p.unit("SUB").unwrap().params == vec!["A"]);
    }

    #[test]
    fn common_blocks_are_positional_and_sized() {
        let p = compile(
            "      SUBROUTINE A\n      INTEGER X, Y(4)\n      COMMON /BLK/ X, Y\n      END\n",
        );
        let u = p.unit("A").unwrap();
        assert_eq!(
            u.symbols["X"].storage,
            Storage::Shared {
                block: "BLK".into(),
                offset: 0
            }
        );
        assert_eq!(
            u.symbols["Y"].storage,
            Storage::Shared {
                block: "BLK".into(),
                offset: 1
            }
        );
        assert_eq!(p.shared_blocks, vec![("BLK".to_string(), 5)]);
    }

    #[test]
    fn inconsistent_common_sizes_rejected() {
        let err = Program::compile(
            "      SUBROUTINE A\n      INTEGER X(2)\n      COMMON /B/ X\n      END\n      SUBROUTINE C\n      INTEGER X(3)\n      COMMON /B/ X\n      END\n",
            &HashMap::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("words"), "{err}");
    }

    #[test]
    fn zzpenv_members_become_pseudo_vars() {
        let p = compile(
            "      SUBROUTINE A\n      INTEGER ME, NP\n      COMMON /ZZPENV/ ME, NP\n      END\n",
        );
        let u = p.unit("A").unwrap();
        assert_eq!(u.symbols["ME"].storage, Storage::PseudoMe);
        assert_eq!(u.symbols["NP"].storage, Storage::PseudoNp);
    }

    #[test]
    fn force_shared_names_resolve_globally() {
        let mut shared = HashMap::new();
        shared.insert("TOTAL".to_string(), 1);
        let p = Program::compile(
            "      SUBROUTINE A\n      INTEGER TOTAL\n      TOTAL = 1\n      END\n",
            &shared,
        )
        .unwrap();
        let u = p.unit("A").unwrap();
        assert_eq!(
            u.symbols["TOTAL"].storage,
            Storage::Shared {
                block: "TOTAL".into(),
                offset: 0
            }
        );
        assert!(p.shared_blocks.contains(&("TOTAL".to_string(), 1)));
    }

    #[test]
    fn block_if_compiles_to_jumps() {
        let p = compile(
            "      SUBROUTINE A\n      IF (X .GT. 0) THEN\n      Y = 1\n      ELSE\n      Y = 2\n      END IF\n      END\n",
        );
        let u = p.unit("A").unwrap();
        // JumpIfFalse, Assign, Jump, Assign, Nop(endif), Return
        assert!(matches!(u.ops[0], Op::JumpIfFalse(_, 3)));
        assert!(matches!(u.ops[2], Op::Jump(4)));
    }

    #[test]
    fn labeled_do_closes_at_its_label() {
        let p = compile(
            "      SUBROUTINE A\n      DO 10 I = 1, 3\n      X = X + I\n10    CONTINUE\n      END\n",
        );
        let u = p.unit("A").unwrap();
        // Assign I=1; head: JumpIfFalse -> exit; Assign X; Nop(10); I=I+1; Jump head; Return
        assert!(matches!(u.ops[1], Op::JumpIfFalse(_, 6)));
        assert!(matches!(u.ops[5], Op::Jump(1)));
    }

    #[test]
    fn nested_labeled_dos_share_a_terminal() {
        let p = compile(
            "      SUBROUTINE A\n      DO 10 I = 1, 3\n      DO 10 J = 1, 3\n      X = X + 1\n10    CONTINUE\n      END\n",
        );
        // Both frames close; program compiles and ends with Return.
        let u = p.unit("A").unwrap();
        assert!(matches!(u.ops.last(), Some(Op::Return)));
    }

    #[test]
    fn arithmetic_if_branches_on_sign() {
        let p = compile(
            "      SUBROUTINE A\n      X = -2\n      IF (X) 10, 20, 30\n10    Y = 1\n      RETURN\n20    Y = 2\n      RETURN\n30    Y = 3\n      END\n",
        );
        let u = p.unit("A").unwrap();
        // compiles with resolved jumps; last op is the implicit Return
        assert!(matches!(u.ops.last(), Some(Op::Return)));
        assert!(u
            .ops
            .iter()
            .all(|op| !matches!(op, Op::Jump(t) if *t == usize::MAX)));
    }

    #[test]
    fn goto_resolves_labels() {
        let p =
            compile("      SUBROUTINE A\n      GO TO 20\n      X = 1\n20    CONTINUE\n      END\n");
        let u = p.unit("A").unwrap();
        assert!(matches!(u.ops[0], Op::Jump(2)));
    }

    #[test]
    fn unknown_label_is_an_error() {
        let err = Program::compile(
            "      SUBROUTINE A\n      GO TO 99\n      END\n",
            &HashMap::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown label"), "{err}");
    }

    #[test]
    fn unclosed_if_is_an_error() {
        let err = Program::compile(
            "      SUBROUTINE A\n      IF (X .GT. 0) THEN\n      END\n",
            &HashMap::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("not closed"), "{err}");
    }

    #[test]
    fn implicit_locals_get_fortran_types() {
        let p =
            compile("      SUBROUTINE A\n      KOUNT = KOUNT + 1\n      XVAL = 1.5\n      END\n");
        let u = p.unit("A").unwrap();
        assert_eq!(u.symbols["KOUNT"].ty, Ty::Integer);
        assert_eq!(u.symbols["XVAL"].ty, Ty::Real);
        assert!(u.frame_words >= 2);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let err = Program::compile(
            "      SUBROUTINE A\n10    CONTINUE\n10    CONTINUE\n      END\n",
            &HashMap::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate label"), "{err}");
    }
}
