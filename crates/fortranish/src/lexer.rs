//! Line lexer for the mini-Fortran subset.
//!
//! The interpreter is deliberately tolerant of column position (the
//! preprocessor emits "fixed-ish" form): a line is
//! `[label] statement`, comments start with `C`, `c`, `*` or `!` in
//! column 1, and blank lines are ignored.

use crate::error::{FortError, FortErrorKind};
use crate::token::{DotOp, Token};

/// One significant source line: optional numeric label + tokens.
#[derive(Debug, Clone, PartialEq)]
pub struct LexedLine {
    /// 1-based source line number (for diagnostics).
    pub line_no: usize,
    /// Optional statement label.
    pub label: Option<u32>,
    /// The statement tokens.
    pub tokens: Vec<Token>,
}

/// Whether a line is a comment.
pub fn is_comment(line: &str) -> bool {
    matches!(
        line.chars().next(),
        Some('C') | Some('c') | Some('*') | Some('!')
    )
}

/// Lex a whole source into significant lines.
pub fn lex(source: &str) -> Result<Vec<LexedLine>, FortError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        if is_comment(raw) || raw.trim().is_empty() {
            continue;
        }
        let trimmed = raw.trim_start();
        // Leading digits form the statement label.
        let digits: String = trimmed.chars().take_while(|c| c.is_ascii_digit()).collect();
        let (label, rest) = if digits.is_empty() {
            (None, trimmed)
        } else {
            let label = digits.parse::<u32>().map_err(|_| {
                FortError::at(
                    line_no,
                    FortErrorKind::Lex(format!("label `{digits}` too large")),
                )
            })?;
            (Some(label), trimmed[digits.len()..].trim_start())
        };
        let tokens = lex_statement(rest, line_no)?;
        if tokens.is_empty() && label.is_none() {
            continue;
        }
        out.push(LexedLine {
            line_no,
            label,
            tokens,
        });
    }
    Ok(out)
}

/// Lex one statement body.
pub fn lex_statement(s: &str, line_no: usize) -> Result<Vec<Token>, FortError> {
    let chars: Vec<char> = s.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let err = |msg: String| FortError::at(line_no, FortErrorKind::Lex(msg));
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '(' => {
                toks.push(Token::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Token::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Token::Comma);
                i += 1;
            }
            '=' => {
                toks.push(Token::Equals);
                i += 1;
            }
            '+' => {
                toks.push(Token::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Token::Minus);
                i += 1;
            }
            '/' => {
                toks.push(Token::Slash);
                i += 1;
            }
            '*' => {
                if chars.get(i + 1) == Some(&'*') {
                    toks.push(Token::Power);
                    i += 2;
                } else {
                    toks.push(Token::Star);
                    i += 1;
                }
            }
            '\'' => {
                // character literal 'like this' ('' = escaped quote)
                let mut text = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            text.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            text.push(ch);
                            i += 1;
                        }
                        None => return Err(err("unterminated character literal".into())),
                    }
                }
                toks.push(Token::Str(text));
            }
            '.' => {
                // Either a dotted operator/.TRUE./.FALSE., or a real like `.5`.
                if chars.get(i + 1).is_some_and(|c| c.is_ascii_alphabetic()) {
                    let start = i + 1;
                    let mut j = start;
                    while j < chars.len() && chars[j].is_ascii_alphabetic() {
                        j += 1;
                    }
                    if chars.get(j) != Some(&'.') {
                        return Err(err(format!(
                            "malformed dotted operator near `.{}`",
                            chars[start..j].iter().collect::<String>()
                        )));
                    }
                    let name: String = chars[start..j]
                        .iter()
                        .collect::<String>()
                        .to_ascii_uppercase();
                    i = j + 1;
                    match name.as_str() {
                        "TRUE" => toks.push(Token::Logical(true)),
                        "FALSE" => toks.push(Token::Logical(false)),
                        other => match DotOp::from_name(other) {
                            Some(op) => toks.push(Token::DotOp(op)),
                            None => return Err(err(format!("unknown operator `.{other}.`"))),
                        },
                    }
                } else if chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    let (tok, next) = lex_number(&chars, i, line_no)?;
                    toks.push(tok);
                    i = next;
                } else {
                    return Err(err("stray `.`".into()));
                }
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(&chars, i, line_no)?;
                toks.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let name: String = chars[start..i]
                    .iter()
                    .collect::<String>()
                    .to_ascii_uppercase();
                toks.push(Token::Ident(name));
            }
            other => return Err(err(format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

/// Lex an integer or real literal starting at `i`.
fn lex_number(chars: &[char], start: usize, line_no: usize) -> Result<(Token, usize), FortError> {
    let mut i = start;
    let mut text = String::new();
    let mut is_real = false;
    while i < chars.len() && chars[i].is_ascii_digit() {
        text.push(chars[i]);
        i += 1;
    }
    // Decimal point — but only if not the start of a dotted operator
    // (`1.EQ.2` must lex as `1` `.EQ.` `2`).
    if i < chars.len() && chars[i] == '.' {
        let looks_like_dotop = chars.get(i + 1).is_some_and(|c| c.is_ascii_alphabetic()) && {
            let mut j = i + 2;
            while j < chars.len() && chars[j].is_ascii_alphabetic() {
                j += 1;
            }
            chars.get(j) == Some(&'.')
        };
        if !looks_like_dotop {
            is_real = true;
            text.push('.');
            i += 1;
            while i < chars.len() && chars[i].is_ascii_digit() {
                text.push(chars[i]);
                i += 1;
            }
        }
    }
    // Exponent.
    if i < chars.len() && matches!(chars[i], 'e' | 'E' | 'd' | 'D') {
        let mut j = i + 1;
        if j < chars.len() && matches!(chars[j], '+' | '-') {
            j += 1;
        }
        if j < chars.len() && chars[j].is_ascii_digit() {
            is_real = true;
            text.push('E');
            i += 1;
            if matches!(chars[i], '+' | '-') {
                text.push(chars[i]);
                i += 1;
            }
            while i < chars.len() && chars[i].is_ascii_digit() {
                text.push(chars[i]);
                i += 1;
            }
        }
    }
    let tok = if is_real {
        Token::Real(text.parse::<f64>().map_err(|_| {
            FortError::at(
                line_no,
                FortErrorKind::Lex(format!("bad real literal `{text}`")),
            )
        })?)
    } else {
        Token::Int(text.parse::<i64>().map_err(|_| {
            FortError::at(
                line_no,
                FortErrorKind::Lex(format!("integer literal `{text}` out of range")),
            )
        })?)
    };
    Ok((tok, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        lex_statement(s, 1).unwrap()
    }

    #[test]
    fn idents_are_uppercased() {
        assert_eq!(
            toks("total = k_shared"),
            vec![
                Token::Ident("TOTAL".into()),
                Token::Equals,
                Token::Ident("K_SHARED".into())
            ]
        );
    }

    #[test]
    fn numbers_int_and_real() {
        assert_eq!(toks("42"), vec![Token::Int(42)]);
        assert_eq!(toks("1.5"), vec![Token::Real(1.5)]);
        assert_eq!(toks("2."), vec![Token::Real(2.0)]);
        assert_eq!(toks(".25"), vec![Token::Real(0.25)]);
        assert_eq!(toks("1E3"), vec![Token::Real(1000.0)]);
        assert_eq!(toks("2.5E-2"), vec![Token::Real(0.025)]);
        assert_eq!(toks("1D0"), vec![Token::Real(1.0)]);
    }

    #[test]
    fn integer_before_dotop_is_not_a_real() {
        assert_eq!(
            toks("1.EQ.2"),
            vec![Token::Int(1), Token::DotOp(DotOp::Eq), Token::Int(2)]
        );
    }

    #[test]
    fn dotted_operators_and_logicals() {
        assert_eq!(
            toks("A .GE. B .AND. .NOT. .FALSE."),
            vec![
                Token::Ident("A".into()),
                Token::DotOp(DotOp::Ge),
                Token::Ident("B".into()),
                Token::DotOp(DotOp::And),
                Token::DotOp(DotOp::Not),
                Token::Logical(false),
            ]
        );
        assert_eq!(toks(".TRUE."), vec![Token::Logical(true)]);
    }

    #[test]
    fn power_vs_star() {
        assert_eq!(
            toks("A ** 2 * B"),
            vec![
                Token::Ident("A".into()),
                Token::Power,
                Token::Int(2),
                Token::Star,
                Token::Ident("B".into())
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(toks("'it''s'"), vec![Token::Str("it's".into())]);
    }

    #[test]
    fn labels_and_comments() {
        let src = "C a comment\n100   CONTINUE\n* another\n      X = 1\n";
        let lines = lex(src).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].label, Some(100));
        assert_eq!(lines[0].tokens, vec![Token::Ident("CONTINUE".into())]);
        assert_eq!(lines[1].label, None);
        assert_eq!(lines[1].line_no, 4);
    }

    #[test]
    fn unknown_operator_is_an_error() {
        assert!(lex_statement("A .XO. B", 1).is_err());
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex_statement("'open", 1).is_err());
    }
}
