//! Tokens of the mini-Fortran subset.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword, uppercased (`TOTAL`, `IF`, `K_SHARED`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal (`1.5`, `2.`, `1E-3`).
    Real(f64),
    /// Character literal (only used by PRINT).
    Str(String),
    /// `.TRUE.` / `.FALSE.`
    Logical(bool),
    /// A dotted operator: `.EQ.`, `.AND.`, …
    DotOp(DotOp),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Equals,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    Power,
    /// `/`
    Slash,
}

/// The `.XX.` operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DotOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Not,
}

impl DotOp {
    /// Parse the name between the dots.
    pub fn from_name(name: &str) -> Option<DotOp> {
        Some(match name {
            "EQ" => DotOp::Eq,
            "NE" => DotOp::Ne,
            "LT" => DotOp::Lt,
            "LE" => DotOp::Le,
            "GT" => DotOp::Gt,
            "GE" => DotOp::Ge,
            "AND" => DotOp::And,
            "OR" => DotOp::Or,
            "NOT" => DotOp::Not,
            _ => return None,
        })
    }
}
