//! AST of the mini-Fortran subset.

use crate::token::DotOp;

/// Fortran types supported by the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit float (REAL here is double precision; the substrate has one
    /// word size).
    Real,
    /// Logical.
    Logical,
}

impl Ty {
    /// Parse a type keyword.
    pub fn from_keyword(kw: &str) -> Option<Ty> {
        Some(match kw {
            "INTEGER" => Ty::Integer,
            "REAL" | "DOUBLE" => Ty::Real,
            "LOGICAL" => Ty::Logical,
            _ => return None,
        })
    }

    /// Fortran implicit typing: I–N integer, the rest real.
    pub fn implicit_for(name: &str) -> Ty {
        match name.chars().next() {
            Some(c @ 'I'..='N') => {
                let _ = c;
                Ty::Integer
            }
            _ => Ty::Real,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical `.NOT.`.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// Map a dotted operator to a binary operator (`.NOT.` is unary).
    pub fn from_dotop(op: DotOp) -> Option<BinOp> {
        Some(match op {
            DotOp::Eq => BinOp::Eq,
            DotOp::Ne => BinOp::Ne,
            DotOp::Lt => BinOp::Lt,
            DotOp::Le => BinOp::Le,
            DotOp::Gt => BinOp::Gt,
            DotOp::Ge => BinOp::Ge,
            DotOp::And => BinOp::And,
            DotOp::Or => BinOp::Or,
            DotOp::Not => return None,
        })
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Logical literal.
    Logical(bool),
    /// Character literal (PRINT lists only).
    Str(String),
    /// Scalar variable reference.
    Var(String),
    /// `NAME(e, …)` — an array element or a function call; which one is
    /// decided against the symbol table at execution.
    Index(String, Vec<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Name(String),
    /// Array element.
    Elem(String, Vec<Expr>),
}

/// One declared item: name plus literal dimensions (empty = scalar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeclItem {
    /// Variable name.
    pub name: String,
    /// Array dimensions.
    pub dims: Vec<usize>,
}

/// One parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `PROGRAM name`
    Program(String),
    /// `SUBROUTINE name(params…)`
    Subroutine(String, Vec<String>),
    /// `END` (unit terminator)
    EndUnit,
    /// `RETURN`
    Return,
    /// `STOP`
    Stop,
    /// `CONTINUE`
    Continue,
    /// Type declaration.
    Decl {
        /// The declared type.
        ty: Ty,
        /// The declared items.
        items: Vec<DeclItem>,
    },
    /// `COMMON /block/ items`
    Common {
        /// Block name.
        block: String,
        /// Members, in order.
        items: Vec<DeclItem>,
    },
    /// Assignment.
    Assign {
        /// Target.
        lhs: LValue,
        /// Source expression.
        rhs: Expr,
    },
    /// `IF (cond) THEN`
    IfThen(Expr),
    /// `ELSE IF (cond) THEN`
    ElseIf(Expr),
    /// `ELSE`
    Else,
    /// `END IF`
    EndIf,
    /// `IF (cond) stmt`
    LogicalIf(Expr, Box<Stmt>),
    /// Arithmetic IF: `IF (e) l1, l2, l3` — branch on sign.
    ArithIf(Expr, u32, u32, u32),
    /// `GO TO label`
    Goto(u32),
    /// `DO [label] var = from, to [, step]`
    Do {
        /// Terminal label (`None` for `DO … END DO`).
        label: Option<u32>,
        /// Loop variable.
        var: String,
        /// Initial value.
        from: Expr,
        /// Bound.
        to: Expr,
        /// Step (default 1).
        step: Option<Expr>,
    },
    /// `END DO`
    EndDo,
    /// `CALL name(args…)`
    Call {
        /// Subroutine name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `PRINT *, items`
    Print(Vec<Expr>),
}
