//! The execution engine: N interpreter processes over shared COMMON
//! storage on a simulated machine personality.
//!
//! This substitutes for "the manufacturer provided Fortran compiler and
//! linker" of §4.3: it loads the preprocessor's output
//! ([`force_prep::ExpandedProgram`]), lays the shared blocks out through
//! the machine's sharing model (exercising the Encore padding, the
//! Alliant page alignment and the Sequent startup/link protocol), runs
//! the machine-dependent driver, and creates the force with the machine's
//! process model.
//!
//! The lock/unlock/produce/consume *mnemonics* emitted by the level-2
//! macros are runtime services here, and each verifies that it matches
//! the executing machine's personality — re-running expanded code on the
//! wrong machine fails with a machine-mismatch error, while re-running
//! the *source* through the preprocessor ports cleanly.  That asymmetry
//! is the paper's portability claim in executable form.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use force_machdep::fault::{self, Construct, INJECTED_FAULT_MARKER};
use force_machdep::trace;
use force_machdep::Mutex;
use force_machdep::{
    spawn_force_plane, ExecutorChoice, FaultPlane, ForcePool, FullEmptyState, JobError, JobRunner,
    JobYield, LockHandle, LockKind, LockState, Machine, ProcessFault, ProcessModel, ProfileReport,
    RunOptions, SharedRegion, SharingModelId, StatsSnapshot,
};
use force_prep::{ExpandedProgram, VarClass};

use crate::ast::{Expr, LValue, Ty, UnOp};
use crate::bytecode::{self, CompiledProgram, VmProc};
use crate::error::{FortError, FortErrorKind};
use crate::intrinsics;
use crate::program::{Op, Program, Storage, Symbol, Unit};
use crate::value::Value;

/// A loaded Force program bound to a machine personality.
///
/// An `Engine` is a reusable **session**: the shared COMMON region, the
/// lock and full/empty-tag tables, and the fault plane live for the
/// engine's lifetime and are *reset in place* at the start of every
/// [`run`](Engine::run) instead of being reallocated — re-running a
/// loaded program pays for shared-memory designation and (with a pool
/// attached via [`set_pool`](Engine::set_pool)) process creation once,
/// not per run.  All configuration is interior-mutable, so a shared
/// `&Engine` can be watchdog-configured and run from several callers;
/// runs on one session serialize.
pub struct Engine {
    /// The compiled program: AST form plus its bytecode lowering.
    /// Shared (via the expansion cache's payload slot) with every other
    /// engine loaded from the same `(source, machine)` expansion.
    bundle: Arc<CompiledBundle>,
    machine: Arc<Machine>,
    env_cells: Vec<String>,
    /// Force shared/async variables: name → (type, words).
    shared_vars: Vec<(String, Ty, usize)>,
    /// Session defaults for [`run`](Self::run) (watchdog off, no
    /// injection); overridable per run with [`run_with`](Self::run_with).
    defaults: Mutex<RunOptions>,
    /// Resident workers to dispatch forces onto; `None` spawns scoped
    /// threads per run.
    pool: Mutex<Option<Arc<ForcePool>>>,
    /// Resident per-session state, reset in place between runs.
    session: Session,
    /// Serializes runs: the resident state is exclusive to one run.
    run_lock: Mutex<()>,
    /// Whether the most recent run faulted; gates
    /// [`last_job_profile`](Engine::last_job_profile) so a dead run's
    /// partial sink is never surfaced as a profile.
    last_run_faulted: AtomicBool,
}

/// The engine's resident state: allocated on first use, reset in place
/// (never reallocated) between runs.
struct Session {
    /// The shared COMMON region; zeroed between runs.
    shared: Mutex<Option<Arc<SharedState>>>,
    /// Lock table: shared word offset → machine lock.  Cleared between
    /// runs — each run's driver re-executes every `init_lock`.
    locks: Mutex<HashMap<usize, LockHandle>>,
    /// HEP full/empty tags: shared word offset → cell tag.  Cleared
    /// between runs (a fresh run's cells start empty).
    tags: Mutex<HashMap<usize, Arc<FullEmptyState>>>,
    /// The fault plane, reused across runs of the same process count.
    plane: Mutex<Option<Arc<FaultPlane>>>,
}

/// A program in both executable forms, built once per expansion.
///
/// `preprocess_cached` hands out the same `ExpandedProgram` by `Arc` on
/// every hit, and the bundle rides in its payload slot keyed by the
/// cache's *(source hash, machine)* — so a pooled session (or any
/// repeated [`Engine::from_expanded`] of a cached expansion) skips both
/// the front-end parse and the bytecode compilation and goes straight
/// to execution.
pub(crate) struct CompiledBundle {
    pub(crate) program: Program,
    pub(crate) compiled: CompiledProgram,
}

/// The observable result of one run.
#[derive(Debug)]
pub struct RunOutput {
    /// Lines produced by `PRINT *`.
    pub prints: Vec<String>,
    /// Primitive-operation counts for this run (per-machine delta).
    pub stats: StatsSnapshot,
    /// Simulated cycles, from the machine's cost model.
    pub cycles: u64,
    /// Linker commands emitted by the Sequent link pass (empty elsewhere).
    pub linker_commands: Vec<String>,
    /// Final values of the Force shared variables and environment cells.
    pub shared_values: HashMap<String, Vec<Value>>,
    /// Construct-level profile of this run; `Some` only when the run's
    /// [`RunOptions::trace`] was set and a force was actually created.
    pub profile: Option<ProfileReport>,
}

impl RunOutput {
    /// The final value of a shared scalar.
    pub fn shared_scalar(&self, name: &str) -> Option<Value> {
        self.shared_values
            .get(name)
            .and_then(|v| v.first().copied())
    }
}

impl Engine {
    /// Load a preprocessed program onto a machine.
    pub fn from_expanded(
        exp: &ExpandedProgram,
        machine: Arc<Machine>,
    ) -> Result<Engine, FortError> {
        let mut shared_names: HashMap<String, usize> = HashMap::new();
        let mut shared_vars = Vec::new();
        for d in &exp.decls {
            if matches!(d.class, VarClass::Shared | VarClass::Async) {
                let ty = match d.ty.as_str() {
                    "INTEGER" => Ty::Integer,
                    "REAL" => Ty::Real,
                    "LOGICAL" => Ty::Logical,
                    other => {
                        return Err(FortError::general(FortErrorKind::Structure(format!(
                            "unsupported shared type {other}"
                        ))))
                    }
                };
                if shared_names.insert(d.name.clone(), d.words()).is_none() {
                    shared_vars.push((d.name.clone(), ty, d.words()));
                }
            }
        }
        // Parse + bytecode-compile once per expansion: the bundle lives
        // in the expansion's payload slot, so every engine loaded from
        // the same cached `ExpandedProgram` reuses it.
        let bundle = match exp.payload.get::<CompiledBundle>() {
            Some(b) => b,
            None => {
                let program = Program::compile(&exp.code, &shared_names)?;
                if program.program_unit.is_none() {
                    return Err(FortError::general(FortErrorKind::Structure(
                        "expanded code has no driver PROGRAM unit".into(),
                    )));
                }
                if !program.units.contains_key(&exp.main_unit) {
                    return Err(FortError::general(FortErrorKind::Structure(format!(
                        "main unit {} not found",
                        exp.main_unit
                    ))));
                }
                let compiled = bytecode::compile(&program);
                exp.payload
                    .attach(Arc::new(CompiledBundle { program, compiled }))
            }
        };
        Ok(Engine {
            bundle,
            machine,
            env_cells: exp.env_cells.clone(),
            shared_vars,
            defaults: Mutex::new(RunOptions::default()),
            pool: Mutex::new(None),
            session: Session {
                shared: Mutex::new(None),
                locks: Mutex::new(HashMap::new()),
                tags: Mutex::new(HashMap::new()),
                plane: Mutex::new(None),
            },
            run_lock: Mutex::new(()),
            last_run_faulted: AtomicBool::new(false),
        })
    }

    /// Enable the deadlock watchdog by default: if every process of the
    /// force stays blocked with no progress for `bound`, the run is
    /// cancelled and [`run`](Self::run) returns a runtime error naming a
    /// parked process and the Force construct it was parked in.  This
    /// sets the session default; [`run_with`](Self::run_with) overrides
    /// it per run.
    pub fn set_watchdog(&self, bound: std::time::Duration) {
        self.defaults.lock().watchdog = Some(bound);
    }

    /// Replace the session-default [`RunOptions`] (watchdog bound and
    /// fault injection) used by [`run`](Self::run).
    pub fn set_run_options(&self, options: RunOptions) {
        *self.defaults.lock() = options;
    }

    /// Dispatch this engine's forces onto a resident [`ForcePool`]
    /// instead of spawning scoped threads per run.  Runs whose process
    /// count exceeds the pool fall back to scoped threads.
    pub fn set_pool(&self, pool: Arc<ForcePool>) {
        *self.pool.lock() = Some(pool);
    }

    /// The compiled program.
    pub fn program(&self) -> &Program {
        &self.bundle.program
    }

    /// Choose the executor for subsequent [`run`](Self::run) calls
    /// (session default; [`run_with`](Self::run_with) overrides per
    /// run).  [`ExecutorChoice::Auto`] — the default — consults the
    /// `FORCE_EXECUTOR` environment variable and otherwise uses the
    /// bytecode VM.
    pub fn set_executor(&self, executor: ExecutorChoice) {
        self.defaults.lock().executor = executor;
    }

    /// The machine personality.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Run the driver (which creates the force of `nproc` processes)
    /// with the session-default [`RunOptions`].
    pub fn run(&self, nproc: usize) -> Result<RunOutput, FortError> {
        let options = *self.defaults.lock();
        self.run_with(nproc, options)
    }

    /// Run the driver with explicit per-run [`RunOptions`] (watchdog
    /// bound, fault injection), overriding the session defaults for this
    /// run only.
    pub fn run_with(&self, nproc: usize, options: RunOptions) -> Result<RunOutput, FortError> {
        assert!(nproc > 0, "a force needs at least one process");
        // One run at a time per session: the resident state is exclusive
        // to the running job.
        let _run = self.run_lock.lock();
        self.reset_session(options);
        let before = self.machine.stats().snapshot();
        let rt = Rt {
            engine: self,
            nproc,
            options,
            pool: self.pool.lock().clone(),
            prints: Mutex::new(Vec::new()),
            linker: Mutex::new(Vec::new()),
        };
        let driver_name = self
            .bundle
            .program
            .program_unit
            .as_deref()
            .expect("checked in load");
        let exec_result = match resolve_executor(options.executor) {
            ExecutorChoice::TreeWalk => {
                let driver = self.bundle.program.unit(driver_name).expect("driver unit");
                let proc = Proc {
                    rt: &rt,
                    me: -1,
                    np: nproc as i64,
                };
                proc.exec(driver, Vec::new()).map(|_| ())
            }
            _ => {
                let driver = self
                    .bundle
                    .compiled
                    .unit_index(driver_name)
                    .expect("driver unit");
                let mut proc = VmProc::new(&rt, &self.bundle.compiled, -1, nproc as i64);
                proc.exec(driver, Vec::new()).map(|_| ())
            }
        };
        // A faulted run leaves no results behind: the flag below makes
        // `last_job_profile` answer `None` instead of surfacing the dead
        // run's partial event sink (or a previous run's data).
        self.last_run_faulted
            .store(exec_result.is_err(), Ordering::Release);
        exec_result?;

        // Collect observables.
        let after = self.machine.stats().snapshot();
        let stats = after.since(&before);
        let costs = self.machine.spec().costs;
        let cycles = stats.lock_acquires * costs.lock_op
            + stats.lock_releases * costs.lock_op
            + stats.lock_contended * costs.contended_lock
            + stats.syscalls * costs.syscall
            + (stats.fe_produces + stats.fe_consumes) * costs.fullempty_op
            + stats.processes_created * costs.process_create
            + stats.shared_words * costs.shared_access;
        let mut shared_values = HashMap::new();
        if let Some(state) = self.session.shared.lock().as_ref() {
            for (name, ty, words) in &self.shared_vars {
                if let Some(&base) = state.bases.get(name) {
                    let vals = (0..*words)
                        .map(|i| Value::from_bits(state.region.load_raw(base + i), *ty))
                        .collect();
                    shared_values.insert(name.clone(), vals);
                }
            }
            if let Some(&env_base) = state.bases.get("ZZFENV") {
                let mut offset = 0usize;
                for cell in &self.env_cells {
                    // Entries are `NAME` or `NAME(words)` for lock arrays.
                    let (name, words) = match cell.find('(') {
                        Some(p) => {
                            let w: usize = cell[p + 1..cell.len() - 1]
                                .split(',')
                                .map(|d| d.trim().parse::<usize>().unwrap_or(1))
                                .product();
                            (cell[..p].to_string(), w)
                        }
                        None => (cell.clone(), 1),
                    };
                    let vals = (0..words)
                        .map(|i| {
                            Value::from_bits(
                                state.region.load_raw(env_base + offset + i),
                                Ty::Integer,
                            )
                        })
                        .collect();
                    shared_values.insert(name, vals);
                    offset += words;
                }
            }
        }
        // Snapshot the profile while the run's quiescence still holds
        // (the next run's reset would wipe the sink).  Gated on this
        // run's options so a resident plane from an earlier traced run
        // cannot leak a stale profile into an untraced one.
        let profile = match options.trace {
            Some(_) => self
                .session
                .plane
                .lock()
                .as_ref()
                .and_then(|p| p.profile_report()),
            None => None,
        };
        Ok(RunOutput {
            prints: rt.prints.into_inner(),
            stats,
            cycles,
            linker_commands: rt.linker.into_inner(),
            shared_values,
            profile,
        })
    }

    /// Construct-level profile of the most recent run (see
    /// [`RunOutput::profile`]); `None` when that run did not trace — or
    /// when it faulted, since a torn-down run's sink holds a partial
    /// event stream, not a profile of completed work.
    /// Summarized lazily from the resident sink under the run lock —
    /// call it between runs, never from inside a running program.
    pub fn last_job_profile(&self) -> Option<ProfileReport> {
        let _run = self.run_lock.lock();
        if self.last_run_faulted.load(Ordering::Acquire) {
            return None;
        }
        self.session
            .plane
            .lock()
            .as_ref()
            .and_then(|p| p.profile_report())
    }

    /// The session's resident fault plane for a force of `nproc`
    /// processes, creating (or resizing) it if needed.  The serving
    /// layer binds this to a job context before a run so a deadline
    /// watcher can cancel the run through the plane's trip token even
    /// though the engine only forks its force mid-program.
    pub fn fault_plane(&self, nproc: usize) -> Arc<FaultPlane> {
        assert!(nproc > 0, "a force needs at least one process");
        let mut slot = self.session.plane.lock();
        match slot.as_ref() {
            Some(p) if p.nproc() == nproc => Arc::clone(p),
            _ => {
                let p = FaultPlane::new(
                    nproc,
                    Arc::clone(self.machine.stats()),
                    *self.defaults.lock(),
                );
                *slot = Some(Arc::clone(&p));
                p
            }
        }
    }

    /// Package this engine's program as a [`JobRunner`] for a
    /// [`ForceServer`](force_machdep::serve::ForceServer): each attempt
    /// binds the session's fault plane (so deadlines can cancel the
    /// run), executes via [`run_with`](Self::run_with), and maps the
    /// result onto the server's retry taxonomy — an error carrying the
    /// injection marker becomes a transient [`JobError::Fault`], while
    /// every genuine `FortError` (type errors, overflow, runtime faults)
    /// becomes [`JobError::Deterministic`] and is never retried.
    ///
    /// `on_output` observes each successful run's [`RunOutput`] (prints,
    /// shared values, stats); pass a closure capturing a slot, or `|_|
    /// ()` to discard.  When `options` carries fault injection, each
    /// retry re-derives the injection seed from the attempt number so a
    /// retried job does not deterministically replay the same injected
    /// fault.
    pub fn serve_runner<F>(
        self: &Arc<Self>,
        nproc: usize,
        options: RunOptions,
        mut on_output: F,
    ) -> JobRunner
    where
        F: FnMut(RunOutput) + Send + 'static,
    {
        let engine = Arc::clone(self);
        Box::new(move |cx| {
            cx.bind_plane(&engine.fault_plane(nproc));
            let mut opts = options;
            if let Some(inj) = opts.injection.as_mut() {
                inj.seed ^= u64::from(cx.attempt()).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
            match engine.run_with(nproc, opts) {
                Ok(output) => {
                    let profile = output.profile.clone();
                    on_output(output);
                    Ok(JobYield { profile })
                }
                Err(e) => {
                    let msg = e.to_string();
                    if msg.contains(INJECTED_FAULT_MARKER) {
                        Err(JobError::Fault(ProcessFault {
                            pid: 0,
                            construct: "interpreter",
                            payload: msg,
                        }))
                    } else {
                        Err(JobError::Deterministic(msg))
                    }
                }
            }
        })
    }

    /// Reset the resident session state in place for a new run: zero the
    /// cached shared region (fresh COMMON storage without a fresh
    /// designation pass) and clear the lock and tag tables (each run's
    /// driver re-executes every `init_lock`; full/empty cells start
    /// empty).  A resident fault plane is re-armed with this run's
    /// options up front (so a run that never creates a force still
    /// cannot observe a previous job's trip or trace); process creation
    /// re-arms again when it reuses the plane, which is idempotent.
    fn reset_session(&self, options: RunOptions) {
        if let Some(state) = self.session.shared.lock().as_ref() {
            state.region.reset();
        }
        self.session.locks.lock().clear();
        self.session.tags.lock().clear();
        if let Some(plane) = self.session.plane.lock().as_ref() {
            plane.reset_for_job(options);
        }
    }
}

/// Shared storage once allocated: the region plus per-block base offsets.
pub(crate) struct SharedState {
    pub(crate) region: SharedRegion,
    pub(crate) bases: HashMap<String, usize>,
}

/// Per-run runtime state shared by all processes.  The long-lived
/// tables (shared region, locks, tags) live on the engine's [`Session`];
/// this carries only the run-scoped pieces.
pub(crate) struct Rt<'e> {
    pub(crate) engine: &'e Engine,
    pub(crate) nproc: usize,
    /// This run's fault-containment options.
    pub(crate) options: RunOptions,
    /// Resident pool to dispatch this run's force onto, if any.
    pub(crate) pool: Option<Arc<ForcePool>>,
    pub(crate) prints: Mutex<Vec<String>>,
    pub(crate) linker: Mutex<Vec<String>>,
}

impl Rt<'_> {
    /// The shared region: reused from the session if a previous run
    /// allocated it (zeroed by the run prologue), otherwise allocated
    /// through the machine's sharing model.  On the Sequent this fails
    /// until the startup/link protocol has run — faithfully.
    pub(crate) fn shared(&self, line: usize) -> Result<Arc<SharedState>, FortError> {
        let mut guard = self.engine.session.shared.lock();
        if let Some(s) = guard.as_ref() {
            return Ok(Arc::clone(s));
        }
        let machine = &self.engine.machine;
        let blocks: Vec<force_machdep::BlockRequest> = self
            .engine
            .program()
            .shared_blocks
            .iter()
            .map(|(n, w)| force_machdep::BlockRequest::new(n.clone(), *w))
            .collect();
        let layout = machine.sharing_model().layout(&blocks).map_err(|e| {
            FortError::at(
                line,
                FortErrorKind::Runtime(format!("shared memory designation failed: {e}")),
            )
        })?;
        let mut bases = HashMap::new();
        for (n, _) in &self.engine.program().shared_blocks {
            let (base, _) = layout.block(n).expect("block laid out");
            bases.insert(n.clone(), base);
        }
        let region = SharedRegion::allocate(layout, machine.stats());
        let state = Arc::new(SharedState { region, bases });
        *guard = Some(Arc::clone(&state));
        Ok(state)
    }

    pub(crate) fn lock_handle(&self, offset: usize, line: usize) -> Result<LockHandle, FortError> {
        self.engine
            .session
            .locks
            .lock()
            .get(&offset)
            .cloned()
            .ok_or_else(|| FortError::runtime(line, "lock variable used before initialization"))
    }

    pub(crate) fn tag_handle(&self, offset: usize) -> Arc<FullEmptyState> {
        let mut tags = self.engine.session.tags.lock();
        Arc::clone(tags.entry(offset).or_insert_with(|| {
            Arc::new(FullEmptyState::new_empty(Arc::clone(
                self.engine.machine.stats(),
            )))
        }))
    }
}

// ---- executor selection ----------------------------------------------

/// `FORCE_EXECUTOR` environment override (the escape hatch back to the
/// tree-walker), read once per process.
fn env_executor() -> ExecutorChoice {
    static ENV: OnceLock<ExecutorChoice> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("FORCE_EXECUTOR").ok().as_deref() {
        Some(s)
            if s.eq_ignore_ascii_case("tree")
                || s.eq_ignore_ascii_case("treewalk")
                || s.eq_ignore_ascii_case("tree-walk")
                || s.eq_ignore_ascii_case("interpreter")
                || s.eq_ignore_ascii_case("walker") =>
        {
            ExecutorChoice::TreeWalk
        }
        _ => ExecutorChoice::Bytecode,
    })
}

/// Resolve `Auto` to a concrete executor.
fn resolve_executor(choice: ExecutorChoice) -> ExecutorChoice {
    match choice {
        ExecutorChoice::Auto => env_executor(),
        concrete => concrete,
    }
}

// ---- runtime services, shared by both executors ----------------------
//
// The tree-walking interpreter and the bytecode VM both execute the ZZ*
// runtime mnemonics through these functions, so the two executors cannot
// drift: machine-personality checks, lock and full/empty semantics,
// OpStats charging and fault-plane behavior are one implementation.
// Check *ordering* is part of the contract — a machine-personality
// mismatch is reported before arguments are bound, binding errors before
// arity errors — because the equivalence oracle compares error text.

/// Map a lock/unlock mnemonic to its vendor lock kind and direction.
pub(crate) fn lock_mnemonic(name: &str) -> Option<(LockKind, bool)> {
    Some(match name {
        "ZZTSLCK" => (LockKind::Spin, true),
        "ZZTSUNL" => (LockKind::Spin, false),
        "ZZOSLCK" => (LockKind::Syscall, true),
        "ZZOSUNL" => (LockKind::Syscall, false),
        "ZZCBLCK" => (LockKind::Combined, true),
        "ZZCBUNL" => (LockKind::Combined, false),
        "ZZFELCK" => (LockKind::FullEmpty, true),
        "ZZFEUNL" => (LockKind::FullEmpty, false),
        _ => return None,
    })
}

/// A lock mnemonic must match the executing machine's vendor locks.
pub(crate) fn check_vendor_locks(
    machine: &Machine,
    kind: LockKind,
    line: usize,
) -> Result<(), FortError> {
    if machine.spec().vendor_locks != kind {
        return Err(FortError::at(
            line,
            FortErrorKind::MachineMismatch {
                expected: kind.name().into(),
                found: machine.spec().vendor_locks.name().into(),
            },
        ));
    }
    Ok(())
}

/// Acquire or release an initialized lock.  With tracing armed, an
/// acquire is attributed to the lock *variable's* name (BARWIN/BARWOT,
/// LOOPn, user critical names).  Hold time is not recorded here: the
/// expanded barrier and loop protocols pass lock ownership between
/// processes, so a lock→unlock pairing on one pid would mis-state it.
/// `named_lock_id` is runtime-armed — it must be consulted per call,
/// never precomputed at compile time.
pub(crate) fn lock_service(
    rt: &Rt<'_>,
    offset: usize,
    is_lock: bool,
    var_name: Option<&str>,
    line: usize,
) -> Result<(), FortError> {
    let handle = rt.lock_handle(offset, line)?;
    if is_lock {
        match var_name.and_then(trace::named_lock_id) {
            None => handle.lock(),
            Some(id) => {
                let t0 = trace::now_ns().unwrap_or(0);
                handle.lock();
                let now = trace::now_ns().unwrap_or(t0);
                trace::named_wait(id, now.saturating_sub(t0));
            }
        }
    } else {
        handle.unlock();
    }
    Ok(())
}

/// `ZZINITL`/`ZZINITK`/`ZZINITU`: create a lock at a shared offset.
/// Implementation locks (barrier, loop, Pcase) are held across whole
/// construct episodes, so they come from the port's dedicated reserve;
/// only user locks (`ZZINITU`) draw on the machine's possibly scarce
/// pool.  `ZZINITK` creates the lock already held.
pub(crate) fn init_lock_service(rt: &Rt<'_>, offset: usize, keep_locked: bool, user_pool: bool) {
    let machine = &rt.engine.machine;
    let state = if keep_locked {
        LockState::Locked
    } else {
        LockState::Unlocked
    };
    let lock = if user_pool {
        machine.make_lock(state)
    } else {
        machine.make_dedicated_lock(state)
    };
    rt.engine.session.locks.lock().insert(offset, lock);
}

/// `ZZAINI`: async-variable init, E locked (empty), F unlocked.  These
/// locks *encode state* — E stays locked for as long as the variable is
/// empty — so they must never alias a pooled lock: dedicated reserve.
pub(crate) fn aini_service(rt: &Rt<'_>, e: usize, f: usize) {
    let machine = &rt.engine.machine;
    let mut locks = rt.engine.session.locks.lock();
    locks.insert(e, machine.make_dedicated_lock(LockState::Locked));
    locks.insert(f, machine.make_dedicated_lock(LockState::Unlocked));
}

/// `ZZVOIDL`: void an async variable through its two-lock encoding.
/// Spins until the cell is observably full or empty, honoring a fault
/// plane's cancellation while parked.
pub(crate) fn voidl_service(
    rt: &Rt<'_>,
    e_off: usize,
    f_off: usize,
    line: usize,
) -> Result<(), FortError> {
    let e = rt.lock_handle(e_off, line)?;
    let f = rt.lock_handle(f_off, line)?;
    loop {
        if e.try_lock() {
            // was full: unlock F to reach the empty state
            f.unlock();
            return Ok(());
        }
        if f.try_lock() {
            // was empty: restore
            f.unlock();
            return Ok(());
        }
        fault::check_cancel();
        std::hint::spin_loop();
    }
}

/// The `ZZH*` mnemonics exist only on hardware full/empty machines.
pub(crate) fn check_hardware_fe(machine: &Machine, line: usize) -> Result<(), FortError> {
    if !machine.spec().hardware_fullempty {
        return Err(FortError::at(
            line,
            FortErrorKind::MachineMismatch {
                expected: "hardware full/empty".into(),
                found: machine.spec().vendor_locks.name().into(),
            },
        ));
    }
    Ok(())
}

/// The fault-plane construct a `ZZH*` mnemonic executes under.
pub(crate) fn hep_construct(name: &str) -> Construct {
    match name {
        "ZZHPRD" => Construct::Produce,
        "ZZHCON" => Construct::Consume,
        "ZZHCPY" => Construct::Copy,
        _ => Construct::Void,
    }
}

/// `ZZHPRD` body: wait-for-empty, store, set full.
pub(crate) fn hep_produce(state: &SharedState, tag: &FullEmptyState, offset: usize, bits: u64) {
    tag.acquire_empty();
    state.region.store_release(offset, bits);
    tag.release_full();
}

/// `ZZHCON` body: wait-for-full, load, set empty.
pub(crate) fn hep_consume(
    state: &SharedState,
    tag: &FullEmptyState,
    offset: usize,
    ty: Ty,
) -> Value {
    tag.acquire_full();
    let v = Value::from_bits(state.region.load_acquire(offset), ty);
    tag.release_empty();
    v
}

/// `ZZHCPY` body: wait-for-full, load, leave full.
pub(crate) fn hep_copy(state: &SharedState, tag: &FullEmptyState, offset: usize, ty: Ty) -> Value {
    tag.acquire_full();
    let v = Value::from_bits(state.region.load_acquire(offset), ty);
    tag.release_full();
    v
}

/// `ZZSTRT0`: the Sequent startup pass — every unit's startup routine
/// reports the shared blocks to the link registry.  Re-running an
/// already-linked program skips the first pass (the registry survives on
/// the machine instance).
pub(crate) fn strt0_service(rt: &Rt<'_>, line: usize) -> Result<(), FortError> {
    let machine = &rt.engine.machine;
    let registry = machine.startup_registry().ok_or_else(|| {
        FortError::at(
            line,
            FortErrorKind::MachineMismatch {
                expected: "link-time sharing".into(),
                found: machine.sharing_model().id().name().into(),
            },
        )
    })?;
    if registry.is_finalized() {
        return Ok(());
    }
    let blocks: Vec<(String, usize)> = rt.engine.program().shared_blocks.to_vec();
    let mut names: Vec<&String> = rt.engine.program().units.keys().collect();
    names.sort();
    for unit in names {
        registry.register_module(unit, &blocks);
    }
    Ok(())
}

/// `ZZLINK`: finalize the Sequent link registry into linker commands.
pub(crate) fn link_service(rt: &Rt<'_>, line: usize) -> Result<(), FortError> {
    let machine = &rt.engine.machine;
    let registry = machine.startup_registry().ok_or_else(|| {
        FortError::at(
            line,
            FortErrorKind::MachineMismatch {
                expected: "link-time sharing".into(),
                found: machine.sharing_model().id().name().into(),
            },
        )
    })?;
    let cmds = registry.finalize();
    *rt.linker.lock() = cmds;
    Ok(())
}

/// `ZZSHPG`: designate run-time shared pages.
pub(crate) fn shpg_service(rt: &Rt<'_>, line: usize) -> Result<(), FortError> {
    let machine = &rt.engine.machine;
    let id = machine.sharing_model().id();
    if !matches!(
        id,
        SharingModelId::RunTimePaged | SharingModelId::PageAligned
    ) {
        return Err(FortError::at(
            line,
            FortErrorKind::MachineMismatch {
                expected: "run-time shared pages".into(),
                found: id.name().into(),
            },
        ));
    }
    rt.shared(line)?;
    Ok(())
}

/// A process-creation mnemonic must match the machine's process model.
pub(crate) fn check_fork_mnemonic(
    machine: &Machine,
    name: &str,
    line: usize,
) -> Result<(), FortError> {
    let expected = match machine.spec().process_model {
        ProcessModel::ForkJoinCopy => "ZZFORKJ",
        ProcessModel::SharedDataFork => "ZZSFORK",
        ProcessModel::SpawnByCall => "ZZSPAWN",
    };
    if name != expected {
        return Err(FortError::at(
            line,
            FortErrorKind::MachineMismatch {
                expected: format!("{} process creation", machine.spec().process_model.name()),
                found: format!("driver compiled for `{name}`"),
            },
        ));
    }
    Ok(())
}

/// Create the force: run `body(pid)` on `rt.nproc` processes under the
/// session's fault plane, reusing a resident plane (and the resident
/// pool, if one is attached and large enough).  An interpreter runtime
/// error in one process must not leave its peers parked in a barrier or
/// async wait: the first error trips the fault plane (cancelling the
/// rest of the force) and is reported with its own line number.
pub(crate) fn spawn_force(
    rt: &Rt<'_>,
    line: usize,
    body: &(dyn Fn(usize) -> Result<(), FortError> + Sync),
) -> Result<(), FortError> {
    let machine = &rt.engine.machine;
    let np = rt.nproc;
    // Reuse the session's fault plane when the process count matches
    // (re-armed with this run's options); otherwise build one and make
    // it resident.
    let plane = {
        let mut slot = rt.engine.session.plane.lock();
        match slot.as_ref() {
            Some(p) if p.nproc() == np => {
                p.reset_for_job(rt.options);
                Arc::clone(p)
            }
            _ => {
                let p = FaultPlane::new(np, Arc::clone(machine.stats()), rt.options);
                *slot = Some(Arc::clone(&p));
                p
            }
        }
    };
    let first_err: Mutex<Option<FortError>> = Mutex::new(None);
    let run_one = |pid: usize| {
        // With tracing armed, the whole process body is attributed to
        // the interpreter construct; lock parks and named-lock waits
        // nest inside it.
        let _c = fault::enter(Construct::Interpreter);
        if let Err(e) = body(pid) {
            let msg = e.to_string();
            {
                let mut slot = first_err.lock();
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
            fault::trip_current(Construct::Interpreter, msg);
        }
    };
    let spawned = match rt.pool.as_ref().filter(|pool| np <= pool.size()) {
        Some(pool) => pool.run_plane(&plane, run_one),
        None => spawn_force_plane(&plane, run_one),
    };
    if let Some(e) = first_err.lock().take() {
        return Err(e);
    }
    spawned.map_err(|f| {
        FortError::runtime(
            line,
            format!(
                "process {} faulted in {}: {}",
                f.pid, f.construct, f.payload
            ),
        )
    })?;
    Ok(())
}

/// `ZZISFL`/`ZZHISF` must match the machine's full/empty implementation.
pub(crate) fn check_isfull_machine(
    machine: &Machine,
    name: &str,
    line: usize,
) -> Result<(), FortError> {
    if (name == "ZZHISF") != machine.spec().hardware_fullempty {
        return Err(FortError::at(
            line,
            FortErrorKind::MachineMismatch {
                expected: if name == "ZZHISF" {
                    "hardware full/empty".into()
                } else {
                    "two-lock full/empty emulation".into()
                },
                found: machine.spec().vendor_locks.name().into(),
            },
        ));
    }
    Ok(())
}

/// The full/empty snapshot behind `ZZISFL`/`ZZHISF` — the state may
/// change immediately after, exactly as on the original machines.
pub(crate) fn isfull_value(
    rt: &Rt<'_>,
    name: &str,
    offset: usize,
    line: usize,
) -> Result<Value, FortError> {
    if name == "ZZHISF" {
        Ok(Value::Log(rt.tag_handle(offset).is_full()))
    } else {
        // Two-lock encoding: full = E unlocked.
        let e = rt.lock_handle(offset, line)?;
        Ok(Value::Log(!e.is_locked()))
    }
}

/// One interpreter process.
struct Proc<'r, 'e> {
    rt: &'r Rt<'e>,
    me: i64,
    np: i64,
}

/// Actual argument binding.
#[derive(Clone)]
pub(crate) enum ArgVal {
    /// Reference to shared storage (possibly an array base).
    Shared {
        offset: usize,
        ty: Ty,
        dims: Vec<usize>,
    },
    /// A copied-in value (read-only in the callee).
    Value(Value),
    /// A program-unit name (spawn intrinsics).
    Unit(String),
}

/// Per-call frame.
struct Frame<'u> {
    unit: &'u Unit,
    locals: Vec<Value>,
    args: Vec<ArgVal>,
}

impl<'u> Frame<'u> {
    fn new(unit: &'u Unit, args: Vec<ArgVal>) -> Frame<'u> {
        let mut locals = vec![Value::Int(0); unit.frame_words];
        for sym in unit.symbols.values() {
            if let Storage::Local { base } = sym.storage {
                for w in 0..sym.words() {
                    locals[base + w] = Value::zero(sym.ty);
                }
            }
        }
        Frame { unit, locals, args }
    }
}

/// Result of running a unit.
pub(crate) enum Flow {
    Normal,
    Stop,
}

impl Proc<'_, '_> {
    /// Execute a unit to completion.
    fn exec(&self, unit: &Unit, args: Vec<ArgVal>) -> Result<Flow, FortError> {
        let mut frame = Frame::new(unit, args);
        let mut pc = 0usize;
        while pc < unit.ops.len() {
            let line = unit.op_lines[pc];
            match &unit.ops[pc] {
                Op::Nop => pc += 1,
                Op::Jump(t) => pc = *t,
                Op::JumpIfFalse(cond, t) => {
                    if self.eval(&mut frame, cond, line)?.as_log(line)? {
                        pc += 1;
                    } else {
                        pc = *t;
                    }
                }
                Op::Assign(lhs, rhs) => {
                    let v = self.eval(&mut frame, rhs, line)?;
                    self.assign(&mut frame, lhs, v, line)?;
                    pc += 1;
                }
                Op::Print(items) => {
                    let mut parts = Vec::with_capacity(items.len());
                    for it in items {
                        match it {
                            Expr::Str(s) => parts.push(s.clone()),
                            e => parts.push(self.eval(&mut frame, e, line)?.display()),
                        }
                    }
                    self.rt.prints.lock().push(parts.join(" "));
                    pc += 1;
                }
                Op::Return => return Ok(Flow::Normal),
                Op::Stop => return Ok(Flow::Stop),
                Op::Call(name, call_args) => match self.call(&mut frame, name, call_args, line)? {
                    Flow::Stop => return Ok(Flow::Stop),
                    Flow::Normal => pc += 1,
                },
            }
        }
        Ok(Flow::Normal)
    }

    // ---- calls ---------------------------------------------------------

    fn call(
        &self,
        frame: &mut Frame<'_>,
        name: &str,
        args: &[Expr],
        line: usize,
    ) -> Result<Flow, FortError> {
        if self.rt.engine.program().units.contains_key(name) {
            let mut bound = Vec::with_capacity(args.len());
            for a in args {
                bound.push(self.bind_arg(frame, a, line)?);
            }
            let unit = self.rt.engine.program().unit(name).expect("checked");
            if unit.params.len() != bound.len() {
                return Err(FortError::runtime(
                    line,
                    format!(
                        "{name} expects {} argument(s), got {}",
                        unit.params.len(),
                        bound.len()
                    ),
                ));
            }
            return self.exec(unit, bound);
        }
        self.intrinsic_call(frame, name, args, line)
    }

    /// Bind one actual argument.
    fn bind_arg(
        &self,
        frame: &mut Frame<'_>,
        arg: &Expr,
        line: usize,
    ) -> Result<ArgVal, FortError> {
        match arg {
            Expr::Var(n) => {
                if self.rt.engine.program().units.contains_key(n) {
                    return Ok(ArgVal::Unit(n.clone()));
                }
                match frame.unit.symbols.get(n) {
                    Some(sym) => match &sym.storage {
                        Storage::Shared { block, offset } => {
                            let base = self.block_base(block, line)?;
                            Ok(ArgVal::Shared {
                                offset: base + offset,
                                ty: sym.ty,
                                dims: sym.dims.clone(),
                            })
                        }
                        Storage::Local { base } => {
                            if sym.dims.is_empty() {
                                Ok(ArgVal::Value(frame.locals[*base]))
                            } else {
                                Err(FortError::runtime(
                                    line,
                                    format!("cannot pass private array {n} by reference"),
                                ))
                            }
                        }
                        Storage::PseudoMe => Ok(ArgVal::Value(Value::Int(self.me))),
                        Storage::PseudoNp => Ok(ArgVal::Value(Value::Int(self.np))),
                        Storage::Arg(i) => Ok(frame.args[*i].clone()),
                    },
                    None => Err(FortError::runtime(line, format!("unknown variable {n}"))),
                }
            }
            Expr::Index(n, idx) => {
                // Element reference if n is an array symbol; otherwise an
                // expression value.
                let is_array = frame
                    .unit
                    .symbols
                    .get(n)
                    .is_some_and(|s| !s.dims.is_empty());
                if is_array {
                    let (offset, ty) = self.array_elem(frame, n, idx, line)?;
                    match offset {
                        ElemPlace::Shared(o) => Ok(ArgVal::Shared {
                            offset: o,
                            ty,
                            dims: Vec::new(),
                        }),
                        ElemPlace::Local(slot) => Ok(ArgVal::Value(frame.locals[slot])),
                    }
                } else {
                    Ok(ArgVal::Value(self.eval(frame, arg, line)?))
                }
            }
            other => Ok(ArgVal::Value(self.eval(frame, other, line)?)),
        }
    }

    // ---- runtime services (the machine layer's intrinsic subroutines) ----

    fn intrinsic_call(
        &self,
        frame: &mut Frame<'_>,
        name: &str,
        args: &[Expr],
        line: usize,
    ) -> Result<Flow, FortError> {
        let machine = &self.rt.engine.machine;
        if let Some((kind, is_lock)) = lock_mnemonic(name) {
            check_vendor_locks(machine, kind, line)?;
            let offset = self.shared_offset_arg(frame, args, 0, name, line)?;
            let var_name = match args.first() {
                Some(Expr::Var(n)) => Some(n.as_str()),
                _ => None,
            };
            lock_service(self.rt, offset, is_lock, var_name, line)?;
            return Ok(Flow::Normal);
        }
        match name {
            "ZZINITL" | "ZZINITK" | "ZZINITU" => {
                let offset = self.shared_offset_arg(frame, args, 0, name, line)?;
                init_lock_service(self.rt, offset, name == "ZZINITK", name == "ZZINITU");
                Ok(Flow::Normal)
            }
            "ZZAINI" => {
                let e = self.shared_offset_arg(frame, args, 0, name, line)?;
                let f = self.shared_offset_arg(frame, args, 1, name, line)?;
                aini_service(self.rt, e, f);
                Ok(Flow::Normal)
            }
            "ZZVOIDL" => {
                let e_off = self.shared_offset_arg(frame, args, 0, name, line)?;
                let f_off = self.shared_offset_arg(frame, args, 1, name, line)?;
                voidl_service(self.rt, e_off, f_off, line)?;
                Ok(Flow::Normal)
            }
            "ZZHPRD" | "ZZHCON" | "ZZHVD" | "ZZHCPY" => {
                check_hardware_fe(machine, line)?;
                let (offset, ty) = self.shared_place_arg(frame, args, 0, name, line)?;
                let tag = self.rt.tag_handle(offset);
                let state = self.rt.shared(line)?;
                let _c = fault::enter(hep_construct(name));
                match name {
                    "ZZHPRD" => {
                        let v = self.eval(frame, &args[1], line)?.convert_to(ty, line)?;
                        hep_produce(&state, &tag, offset, v.to_bits());
                    }
                    "ZZHCON" => {
                        let v = hep_consume(&state, &tag, offset, ty);
                        let dest = lvalue_of(&args[1], line)?;
                        self.assign(frame, &dest, v, line)?;
                    }
                    "ZZHCPY" => {
                        let v = hep_copy(&state, &tag, offset, ty);
                        let dest = lvalue_of(&args[1], line)?;
                        self.assign(frame, &dest, v, line)?;
                    }
                    "ZZHVD" => tag.void(),
                    _ => unreachable!(),
                }
                Ok(Flow::Normal)
            }
            "ZZSTRT0" => {
                strt0_service(self.rt, line)?;
                Ok(Flow::Normal)
            }
            "ZZLINK" => {
                link_service(self.rt, line)?;
                Ok(Flow::Normal)
            }
            "ZZSHPG" => {
                shpg_service(self.rt, line)?;
                Ok(Flow::Normal)
            }
            "ZZFORKJ" | "ZZSFORK" | "ZZSPAWN" => {
                check_fork_mnemonic(machine, name, line)?;
                let unit_name = match args.first() {
                    Some(Expr::Var(n)) if self.rt.engine.program().units.contains_key(n) => {
                        n.clone()
                    }
                    _ => {
                        return Err(FortError::runtime(
                            line,
                            format!("{name} needs a program unit to execute"),
                        ))
                    }
                };
                let unit = self.rt.engine.program().unit(&unit_name).expect("checked");
                let np = self.rt.nproc;
                spawn_force(self.rt, line, &|pid| {
                    let p = Proc {
                        rt: self.rt,
                        me: pid as i64,
                        np: np as i64,
                    };
                    p.exec(unit, Vec::new()).map(|_| ())
                })?;
                Ok(Flow::Normal)
            }
            other => Err(FortError::runtime(
                line,
                format!("CALL to unknown subroutine `{other}`"),
            )),
        }
    }

    /// Resolve intrinsic argument `i` to a shared word offset.
    fn shared_offset_arg(
        &self,
        frame: &mut Frame<'_>,
        args: &[Expr],
        i: usize,
        name: &str,
        line: usize,
    ) -> Result<usize, FortError> {
        self.shared_place_arg(frame, args, i, name, line)
            .map(|(o, _)| o)
    }

    /// Resolve intrinsic argument `i` to shared storage (offset + type).
    fn shared_place_arg(
        &self,
        frame: &mut Frame<'_>,
        args: &[Expr],
        i: usize,
        name: &str,
        line: usize,
    ) -> Result<(usize, Ty), FortError> {
        let arg = args.get(i).ok_or_else(|| {
            FortError::runtime(line, format!("{name} is missing argument {}", i + 1))
        })?;
        match self.bind_arg(frame, arg, line)? {
            ArgVal::Shared { offset, ty, .. } => Ok((offset, ty)),
            _ => Err(FortError::runtime(
                line,
                format!("{name} argument {} must be a shared variable", i + 1),
            )),
        }
    }

    fn block_base(&self, block: &str, line: usize) -> Result<usize, FortError> {
        let state = self.rt.shared(line)?;
        state
            .bases
            .get(block)
            .copied()
            .ok_or_else(|| FortError::runtime(line, format!("unknown shared block {block}")))
    }

    // ---- expression evaluation -------------------------------------------

    fn eval(&self, frame: &mut Frame<'_>, expr: &Expr, line: usize) -> Result<Value, FortError> {
        match expr {
            Expr::Int(n) => Ok(Value::Int(*n)),
            Expr::Real(x) => Ok(Value::Real(*x)),
            Expr::Logical(b) => Ok(Value::Log(*b)),
            Expr::Str(_) => Err(FortError::runtime(
                line,
                "character data are only allowed in PRINT lists",
            )),
            Expr::Var(n) => self.read_scalar(frame, n, line),
            Expr::Index(n, idx) => {
                let is_array = frame
                    .unit
                    .symbols
                    .get(n)
                    .is_some_and(|s| !s.dims.is_empty());
                if is_array {
                    let (place, ty) = self.array_elem(frame, n, idx, line)?;
                    match place {
                        ElemPlace::Shared(o) => {
                            let state = self.rt.shared(line)?;
                            Ok(Value::from_bits(state.region.load_raw(o), ty))
                        }
                        ElemPlace::Local(slot) => Ok(frame.locals[slot]),
                    }
                } else if frame.unit.symbols.contains_key(n) {
                    Err(FortError::runtime(
                        line,
                        format!("{n} is a scalar but was subscripted"),
                    ))
                } else if n == "ZZISFL" || n == "ZZHISF" {
                    // Full/empty state test (§3.4): needs the *address* of
                    // its argument, not its value.
                    self.eval_isfull(frame, n, idx, line)
                } else {
                    let mut vals = Vec::with_capacity(idx.len());
                    for a in idx {
                        vals.push(self.eval(frame, a, line)?);
                    }
                    intrinsics::eval_function(n, &vals, line, self.me, self.np)
                }
            }
            Expr::Un(op, a) => {
                let v = self.eval(frame, a, line)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(n) => Ok(Value::Int(-n)),
                        Value::Real(x) => Ok(Value::Real(-x)),
                        Value::Log(_) => Err(FortError::runtime(line, "cannot negate a LOGICAL")),
                    },
                    UnOp::Not => Ok(Value::Log(!v.as_log(line)?)),
                }
            }
            Expr::Bin(op, a, b) => {
                let va = self.eval(frame, a, line)?;
                let vb = self.eval(frame, b, line)?;
                eval_binop(*op, va, vb, line)
            }
        }
    }

    /// `ZZISFL(XZZE)` / `ZZHISF(X)`: test an asynchronous variable's
    /// full/empty state.  A snapshot — the state may change immediately
    /// after, exactly as on the original machines.
    fn eval_isfull(
        &self,
        frame: &mut Frame<'_>,
        name: &str,
        args: &[Expr],
        line: usize,
    ) -> Result<Value, FortError> {
        check_isfull_machine(&self.rt.engine.machine, name, line)?;
        let (offset, _ty) = self.shared_place_arg(frame, args, 0, name, line)?;
        isfull_value(self.rt, name, offset, line)
    }

    fn read_scalar(&self, frame: &Frame<'_>, name: &str, line: usize) -> Result<Value, FortError> {
        let sym = frame
            .unit
            .symbols
            .get(name)
            .ok_or_else(|| FortError::runtime(line, format!("unknown variable {name}")))?;
        if !sym.dims.is_empty() {
            return Err(FortError::runtime(
                line,
                format!("array {name} used without subscripts"),
            ));
        }
        match &sym.storage {
            Storage::Local { base } => Ok(frame.locals[*base]),
            Storage::Shared { block, offset } => {
                let base = self.block_base(block, line)?;
                let state = self.rt.shared(line)?;
                Ok(Value::from_bits(
                    state.region.load_raw(base + offset),
                    sym.ty,
                ))
            }
            Storage::PseudoMe => Ok(Value::Int(self.me)),
            Storage::PseudoNp => Ok(Value::Int(self.np)),
            Storage::Arg(i) => match &frame.args[*i] {
                ArgVal::Value(v) => Ok(*v),
                ArgVal::Shared { offset, ty, dims } => {
                    if !dims.is_empty() {
                        return Err(FortError::runtime(
                            line,
                            format!("array argument {name} used without subscripts"),
                        ));
                    }
                    let state = self.rt.shared(line)?;
                    Ok(Value::from_bits(state.region.load_raw(*offset), *ty))
                }
                ArgVal::Unit(u) => Err(FortError::runtime(
                    line,
                    format!("unit name {u} used as a value"),
                )),
            },
        }
    }

    // ---- assignment ----------------------------------------------------------

    fn assign(
        &self,
        frame: &mut Frame<'_>,
        lhs: &LValue,
        value: Value,
        line: usize,
    ) -> Result<(), FortError> {
        match lhs {
            LValue::Name(n) => {
                let sym = frame
                    .unit
                    .symbols
                    .get(n)
                    .ok_or_else(|| FortError::runtime(line, format!("unknown variable {n}")))?
                    .clone();
                if !sym.dims.is_empty() {
                    return Err(FortError::runtime(
                        line,
                        format!("array {n} assigned without subscripts"),
                    ));
                }
                let v = value.convert_to(sym.ty, line)?;
                match &sym.storage {
                    Storage::Local { base } => {
                        frame.locals[*base] = v;
                        Ok(())
                    }
                    Storage::Shared { block, offset } => {
                        let base = self.block_base(block, line)?;
                        let state = self.rt.shared(line)?;
                        state.region.store_raw(base + offset, v.to_bits());
                        Ok(())
                    }
                    Storage::PseudoMe | Storage::PseudoNp => Err(FortError::runtime(
                        line,
                        format!("{n} (process environment) is read-only"),
                    )),
                    Storage::Arg(i) => match &frame.args[*i] {
                        ArgVal::Shared { offset, ty, dims } => {
                            if !dims.is_empty() {
                                return Err(FortError::runtime(
                                    line,
                                    format!("array argument {n} assigned without subscripts"),
                                ));
                            }
                            let v = value.convert_to(*ty, line)?;
                            let state = self.rt.shared(line)?;
                            state.region.store_raw(*offset, v.to_bits());
                            Ok(())
                        }
                        ArgVal::Value(_) => Err(FortError::runtime(
                            line,
                            format!("argument {n} was passed by value and is read-only"),
                        )),
                        ArgVal::Unit(_) => Err(FortError::runtime(
                            line,
                            format!("cannot assign to unit name {n}"),
                        )),
                    },
                }
            }
            LValue::Elem(n, idx) => {
                let (place, ty) = self.array_elem(frame, n, idx, line)?;
                let v = value.convert_to(ty, line)?;
                match place {
                    ElemPlace::Shared(o) => {
                        let state = self.rt.shared(line)?;
                        state.region.store_raw(o, v.to_bits());
                    }
                    ElemPlace::Local(slot) => frame.locals[slot] = v,
                }
                Ok(())
            }
        }
    }

    /// Resolve an array element to its storage place.
    fn array_elem(
        &self,
        frame: &mut Frame<'_>,
        name: &str,
        idx: &[Expr],
        line: usize,
    ) -> Result<(ElemPlace, Ty), FortError> {
        let sym: Symbol = frame
            .unit
            .symbols
            .get(name)
            .ok_or_else(|| FortError::runtime(line, format!("unknown array {name}")))?
            .clone();
        let (dims, ty) = (&sym.dims, sym.ty);
        // Arg-bound arrays carry their own dims.
        if let Storage::Arg(i) = sym.storage {
            let arg = frame.args[i].clone();
            return match arg {
                ArgVal::Shared { offset, ty, dims } => {
                    if dims.is_empty() {
                        return Err(FortError::runtime(
                            line,
                            format!("scalar argument {name} was subscripted"),
                        ));
                    }
                    let off = self.elem_offset(frame, &dims, idx, name, line)?;
                    Ok((ElemPlace::Shared(offset + off), ty))
                }
                _ => Err(FortError::runtime(
                    line,
                    format!("argument {name} is not an array reference"),
                )),
            };
        }
        if dims.is_empty() {
            return Err(FortError::runtime(
                line,
                format!("{name} is a scalar but was subscripted"),
            ));
        }
        let dims = dims.clone();
        let off = self.elem_offset(frame, &dims, idx, name, line)?;
        match &sym.storage {
            Storage::Local { base } => Ok((ElemPlace::Local(base + off), ty)),
            Storage::Shared { block, offset } => {
                let base = self.block_base(block, line)?;
                Ok((ElemPlace::Shared(base + offset + off), ty))
            }
            _ => unreachable!("array storage"),
        }
    }

    /// Column-major, 1-based element offset with bounds checking.
    fn elem_offset(
        &self,
        frame: &mut Frame<'_>,
        dims: &[usize],
        idx: &[Expr],
        name: &str,
        line: usize,
    ) -> Result<usize, FortError> {
        if idx.len() != dims.len() {
            return Err(FortError::runtime(
                line,
                format!(
                    "{name} has {} dimension(s) but {} subscript(s) given",
                    dims.len(),
                    idx.len()
                ),
            ));
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for (k, (e, &d)) in idx.iter().zip(dims.iter()).enumerate() {
            let i = self.eval(frame, e, line)?.as_int(line)?;
            if i < 1 || i as usize > d {
                return Err(FortError::runtime(
                    line,
                    format!("subscript {} of {name} is {i}, outside 1..{d}", k + 1),
                ));
            }
            off += (i as usize - 1) * stride;
            stride *= d;
        }
        Ok(off)
    }
}

/// Storage place of one array element.
enum ElemPlace {
    Shared(usize),
    Local(usize),
}

/// Interpret an expression as an assignment target (for ZZHCON etc.).
fn lvalue_of(e: &Expr, line: usize) -> Result<LValue, FortError> {
    match e {
        Expr::Var(n) => Ok(LValue::Name(n.clone())),
        Expr::Index(n, idx) => Ok(LValue::Elem(n.clone(), idx.clone())),
        _ => Err(FortError::runtime(line, "destination must be a variable")),
    }
}

/// Numeric/logical binary operation with Fortran coercions.
pub(crate) fn eval_binop(
    op: crate::ast::BinOp,
    a: Value,
    b: Value,
    line: usize,
) -> Result<Value, FortError> {
    use crate::ast::BinOp::*;
    match op {
        And => Ok(Value::Log(a.as_log(line)? && b.as_log(line)?)),
        Or => Ok(Value::Log(a.as_log(line)? || b.as_log(line)?)),
        Eq | Ne if matches!(a, Value::Log(_)) || matches!(b, Value::Log(_)) => {
            let (x, y) = (a.as_log(line)?, b.as_log(line)?);
            Ok(Value::Log(if op == Eq { x == y } else { x != y }))
        }
        Add | Sub | Mul | Div | Pow => match (a, b) {
            (Value::Int(x), Value::Int(y)) => match op {
                Add => Ok(Value::Int(x.wrapping_add(y))),
                Sub => Ok(Value::Int(x.wrapping_sub(y))),
                Mul => Ok(Value::Int(x.wrapping_mul(y))),
                Div => {
                    if y == 0 {
                        Err(FortError::runtime(line, "integer division by zero"))
                    } else {
                        Ok(Value::Int(x / y))
                    }
                }
                Pow => {
                    if y >= 0 {
                        // Fortran: INTEGER ** INTEGER is an INTEGER.
                        // Overflow is a runtime error, not a silent wrap
                        // (and the exponent is not clamped).
                        let r = match x {
                            0 => Some(i64::from(y == 0)),
                            1 => Some(1),
                            -1 => Some(if y % 2 == 0 { 1 } else { -1 }),
                            _ => u32::try_from(y).ok().and_then(|e| x.checked_pow(e)),
                        };
                        r.map(Value::Int).ok_or_else(|| {
                            FortError::runtime(line, format!("integer overflow in {x} ** {y}"))
                        })
                    } else {
                        Ok(Value::Real(
                            (x as f64).powi(y.max(i64::from(i32::MIN)) as i32),
                        ))
                    }
                }
                _ => unreachable!(),
            },
            _ => {
                let x = a.as_real(line)?;
                let y = b.as_real(line)?;
                match op {
                    Add => Ok(Value::Real(x + y)),
                    Sub => Ok(Value::Real(x - y)),
                    Mul => Ok(Value::Real(x * y)),
                    Div => {
                        if y == 0.0 {
                            Err(FortError::runtime(line, "division by zero"))
                        } else {
                            Ok(Value::Real(x / y))
                        }
                    }
                    Pow => Ok(Value::Real(x.powf(y))),
                    _ => unreachable!(),
                }
            }
        },
        Eq | Ne | Lt | Le | Gt | Ge => {
            let r = num_cmp(a, b, line)?;
            use std::cmp::Ordering::*;
            Ok(Value::Log(match op {
                Eq => r == Equal,
                Ne => r != Equal,
                Lt => r == Less,
                Le => r != Greater,
                Gt => r == Greater,
                Ge => r != Less,
                _ => unreachable!(),
            }))
        }
    }
}

/// Numeric comparison with Fortran coercions (the relational-operator
/// core of [`eval_binop`], shared with the VM's fused DO-loop check).
pub(crate) fn num_cmp(a: Value, b: Value, line: usize) -> Result<std::cmp::Ordering, FortError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(x.cmp(&y)),
        _ => {
            let x = a.as_real(line)?;
            let y = b.as_real(line)?;
            x.partial_cmp(&y)
                .ok_or_else(|| FortError::runtime(line, "comparison with NaN"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use force_machdep::MachineId;
    use force_prep::preprocess;

    fn run_on(source: &str, id: MachineId, nproc: usize) -> RunOutput {
        let exp = preprocess(source, id).unwrap();
        let machine = Machine::new(id);
        let engine = Engine::from_expanded(&exp, machine).unwrap();
        engine.run(nproc).unwrap()
    }

    const SUM_PROGRAM: &str = "\
      Force FMAIN of NP ident ME
      Shared INTEGER TOTAL
      Private INTEGER K
      End declarations
      Barrier
      TOTAL = 0
      End barrier
      Selfsched DO 100 K = 1, 100
      Critical LCK
      TOTAL = TOTAL + K
      End critical
100   End selfsched DO
      Join
";

    #[test]
    fn selfscheduled_sum_is_exact_on_every_machine() {
        for id in MachineId::all() {
            for nproc in [1, 3, 4] {
                let out = run_on(SUM_PROGRAM, id, nproc);
                assert_eq!(
                    out.shared_scalar("TOTAL"),
                    Some(Value::Int(5050)),
                    "{} nproc={nproc}",
                    id.name()
                );
                // All processes left the barrier protocol cleanly.
                assert_eq!(out.shared_scalar("ZZNBAR"), Some(Value::Int(0)));
            }
        }
    }

    #[test]
    fn presched_loop_covers_all_indices() {
        let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER HITS(50)
      Private INTEGER K
      End declarations
      Presched DO 10 K = 1, 50
      HITS(K) = HITS(K) + 1
10    End presched DO
      Join
";
        for nproc in [1, 2, 5] {
            let out = run_on(src, MachineId::AlliantFx8, nproc);
            let hits = &out.shared_values["HITS"];
            assert!(
                hits.iter().all(|v| *v == Value::Int(1)),
                "nproc={nproc}: {hits:?}"
            );
        }
    }

    #[test]
    fn produce_consume_transfers_a_value() {
        let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER GOT
      Async INTEGER CHAN
      Private INTEGER T
      End declarations
      IF (ME .EQ. 0) THEN
      Produce CHAN = 41 + 1
      ELSE
      Consume CHAN into T
      GOT = T
      END IF
      Join
";
        for id in [MachineId::Hep, MachineId::EncoreMultimax, MachineId::Cray2] {
            let out = run_on(src, id, 2);
            assert_eq!(
                out.shared_scalar("GOT"),
                Some(Value::Int(42)),
                "{}",
                id.name()
            );
        }
    }

    #[test]
    fn sequent_link_pass_emits_linker_commands() {
        let out = run_on(SUM_PROGRAM, MachineId::SequentBalance, 2);
        assert!(
            out.linker_commands.iter().any(|c| c.contains("TOTAL")),
            "{:?}",
            out.linker_commands
        );
        assert!(out.linker_commands.iter().any(|c| c.contains("ZZFENV")));
    }

    #[test]
    fn encore_pads_shared_pages() {
        let out = run_on(SUM_PROGRAM, MachineId::EncoreMultimax, 2);
        assert!(out.stats.padding_words > 0, "{:?}", out.stats);
        let out = run_on(SUM_PROGRAM, MachineId::Flex32, 2);
        assert_eq!(out.stats.padding_words, 0);
    }

    #[test]
    fn machine_mismatch_is_detected() {
        // Preprocess for Encore (test&set) but run on the Cray (OS locks).
        let exp = preprocess(SUM_PROGRAM, MachineId::EncoreMultimax).unwrap();
        let machine = Machine::new(MachineId::Cray2);
        let engine = Engine::from_expanded(&exp, machine).unwrap();
        let err = engine.run(2).unwrap_err();
        assert!(
            matches!(err.kind, FortErrorKind::MachineMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn print_output_is_captured() {
        let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER X
      End declarations
      Barrier
      X = 7
      PRINT *, 'X IS', X
      End barrier
      Join
";
        let out = run_on(src, MachineId::Flex32, 3);
        assert_eq!(out.prints, vec!["X IS 7"]);
    }

    #[test]
    fn hep_uses_fullempty_everywhere() {
        let out = run_on(SUM_PROGRAM, MachineId::Hep, 3);
        assert!(
            out.stats.fe_produces > 0 || out.stats.fe_consumes > 0,
            "{:?}",
            out.stats
        );
        assert_eq!(out.stats.syscalls, 0);
        // and HEP process creation is cheap in simulated cycles
        let cray = run_on(SUM_PROGRAM, MachineId::Cray2, 3);
        assert!(
            cray.cycles > out.cycles,
            "cray {} vs hep {}",
            cray.cycles,
            out.cycles
        );
    }

    #[test]
    fn engine_is_a_reusable_session() {
        let exp = preprocess(SUM_PROGRAM, MachineId::EncoreMultimax).unwrap();
        let machine = Machine::new(MachineId::EncoreMultimax);
        let engine = Engine::from_expanded(&exp, machine).unwrap();
        let first = engine.run(3).unwrap();
        assert_eq!(first.shared_scalar("TOTAL"), Some(Value::Int(5050)));
        assert!(first.stats.shared_words > 0, "first run designates memory");
        for _ in 0..3 {
            let again = engine.run(3).unwrap();
            assert_eq!(again.shared_scalar("TOTAL"), Some(Value::Int(5050)));
            assert_eq!(
                again.stats.shared_words, 0,
                "re-runs reuse the resident region: no designation pass"
            );
        }
    }

    #[test]
    fn pooled_engine_creates_no_processes_per_run() {
        let exp = preprocess(SUM_PROGRAM, MachineId::Flex32).unwrap();
        let machine = Machine::new(MachineId::Flex32);
        let engine = Engine::from_expanded(&exp, Arc::clone(&machine)).unwrap();
        let scoped = engine.run(3).unwrap();
        assert_eq!(scoped.stats.processes_created, 3);
        engine.set_pool(Arc::new(ForcePool::new(4, machine.stats())));
        for _ in 0..3 {
            let pooled = engine.run(3).unwrap();
            assert_eq!(pooled.shared_scalar("TOTAL"), Some(Value::Int(5050)));
            assert_eq!(
                pooled.stats.processes_created, 0,
                "a resident pool amortizes process creation across runs"
            );
        }
    }

    #[test]
    fn per_run_options_catch_a_deadlock_and_the_session_recovers() {
        // Every process consumes from an async variable nobody produces.
        let src = "\
      Force FMAIN of NP ident ME
      Async INTEGER CHAN
      Private INTEGER T
      End declarations
      Consume CHAN into T
      Join
";
        let exp = preprocess(src, MachineId::EncoreMultimax).unwrap();
        let engine = Engine::from_expanded(&exp, Machine::new(MachineId::EncoreMultimax)).unwrap();
        let opts = RunOptions {
            watchdog: Some(std::time::Duration::from_millis(150)),
            ..RunOptions::default()
        };
        let err = engine.run_with(2, opts).unwrap_err();
        assert!(err.to_string().contains("deadlock watchdog"), "{err}");
        // The same session runs again cleanly: the plane is re-armed and
        // the stranded async lock state was cleared.
        let err2 = engine.run_with(2, opts).unwrap_err();
        assert!(err2.to_string().contains("deadlock watchdog"), "{err2}");
    }

    #[test]
    fn traced_run_profiles_interpreter_constructs() {
        use force_machdep::TraceConfig;
        let exp = preprocess(SUM_PROGRAM, MachineId::EncoreMultimax).unwrap();
        let engine = Engine::from_expanded(&exp, Machine::new(MachineId::EncoreMultimax)).unwrap();
        let opts = RunOptions {
            trace: Some(TraceConfig::default()),
            ..RunOptions::default()
        };
        let out = engine.run_with(3, opts).unwrap();
        assert_eq!(out.shared_scalar("TOTAL"), Some(Value::Int(5050)));
        let profile = out.profile.as_ref().expect("traced run carries a profile");
        assert_eq!(profile.nproc, 3);
        let interp = profile
            .construct("interpreter")
            .expect("process bodies are attributed to the interpreter");
        assert_eq!(interp.enters, 3, "one body per process");
        assert!(
            profile.named_locks.iter().any(|l| l.name == "BARWIN"),
            "the expanded barrier's entry lock is profiled by name: {:?}",
            profile
                .named_locks
                .iter()
                .map(|l| &l.name)
                .collect::<Vec<_>>()
        );
        assert_eq!(
            engine.last_job_profile().as_ref(),
            Some(profile),
            "engine accessor mirrors the run output"
        );
        // The next untraced run clears it (no stale profile leaks from
        // the resident plane).
        engine.run(3).unwrap();
        assert!(engine.last_job_profile().is_none());
    }

    #[test]
    fn runtime_errors_have_lines() {
        let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER A(5)
      Private INTEGER K
      End declarations
      K = 9
      A(K) = 1
      Join
";
        let exp = preprocess(src, MachineId::Flex32).unwrap();
        let engine = Engine::from_expanded(&exp, Machine::new(MachineId::Flex32)).unwrap();
        let err = engine.run(1).unwrap_err();
        assert!(err.to_string().contains("outside 1..5"), "{err}");
    }

    /// Regression: `INTEGER ** INTEGER` is an INTEGER.  The old
    /// interpreter clamped the exponent to 63 and used unchecked
    /// `i64::pow`, silently wrapping (release) or panicking (debug) on
    /// overflow instead of raising a Fortran runtime error.
    #[test]
    fn integer_power_stays_integer_on_both_executors() {
        use crate::ast::BinOp;
        let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      Shared REAL H
      End declarations
      Barrier
      N = 2 ** 3
      H = 2 ** (-1)
      End barrier
      Join
";
        let exp = preprocess(src, MachineId::EncoreMultimax).unwrap();
        let engine = Engine::from_expanded(&exp, Machine::new(MachineId::EncoreMultimax)).unwrap();
        for executor in [ExecutorChoice::Bytecode, ExecutorChoice::TreeWalk] {
            let out = engine
                .run_with(
                    2,
                    RunOptions {
                        executor,
                        ..RunOptions::default()
                    },
                )
                .unwrap();
            // Exactly Int(8): not Real(8.0), not a wrapped value.
            assert_eq!(out.shared_scalar("N"), Some(Value::Int(8)), "{executor:?}");
            // A negative exponent still takes the real path.
            assert_eq!(
                out.shared_scalar("H"),
                Some(Value::Real(0.5)),
                "{executor:?}"
            );
        }

        // Overflow is a checked runtime error, not a clamp or a wrap.
        for (x, y) in [(3, 63), (2, 64), (10, 19), (i64::MAX, 2)] {
            let err = eval_binop(BinOp::Pow, Value::Int(x), Value::Int(y), 4).unwrap_err();
            assert!(
                err.to_string().contains("integer overflow"),
                "{x} ** {y}: {err}"
            );
        }
        // Bases whose powers never overflow accept huge exponents.
        for (x, y, want) in [
            (0, 0, 1),
            (0, i64::MAX, 0),
            (1, i64::MAX, 1),
            (-1, i64::MAX, -1),
            (-1, i64::MAX - 1, 1),
            (2, 62, 1 << 62),
        ] {
            assert_eq!(
                eval_binop(BinOp::Pow, Value::Int(x), Value::Int(y), 1).unwrap(),
                Value::Int(want),
                "{x} ** {y}"
            );
        }
    }
}
