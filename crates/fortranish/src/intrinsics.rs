//! Intrinsic functions and the runtime-service name tables.

use crate::error::FortError;
use crate::value::Value;

/// Intrinsic *functions* usable in expressions.
pub fn is_intrinsic_function(name: &str) -> bool {
    matches!(
        name,
        "ABS"
            | "IABS"
            | "SQRT"
            | "EXP"
            | "ALOG"
            | "SIN"
            | "COS"
            | "MOD"
            | "MIN"
            | "MAX"
            | "MIN0"
            | "MAX0"
            | "AMIN1"
            | "AMAX1"
            | "FLOAT"
            | "INT"
            | "NINT"
            | "ZZPID"
            | "ZZNPROC"
            | "ZZISFL"
            | "ZZHISF"
    )
}

/// Intrinsic *subroutines* provided by the Force runtime (lock services,
/// asynchronous-variable services, sharing setup, process creation).
pub fn is_intrinsic_subroutine(name: &str) -> bool {
    matches!(
        name,
        "ZZTSLCK"
            | "ZZTSUNL"
            | "ZZOSLCK"
            | "ZZOSUNL"
            | "ZZCBLCK"
            | "ZZCBUNL"
            | "ZZFELCK"
            | "ZZFEUNL"
            | "ZZINITL"
            | "ZZINITK"
            | "ZZINITU"
            | "ZZAINI"
            | "ZZVOIDL"
            | "ZZHPRD"
            | "ZZHCON"
            | "ZZHVD"
            | "ZZHCPY"
            | "ZZSTRT0"
            | "ZZLINK"
            | "ZZSHPG"
            | "ZZFORKJ"
            | "ZZSFORK"
            | "ZZSPAWN"
    )
}

/// Evaluate an intrinsic function.  `me`/`np` serve `ZZPID`/`ZZNPROC`.
pub fn eval_function(
    name: &str,
    args: &[Value],
    line: usize,
    me: i64,
    np: i64,
) -> Result<Value, FortError> {
    let argc = |n: usize| -> Result<(), FortError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(FortError::runtime(
                line,
                format!("{name} expects {n} argument(s), got {}", args.len()),
            ))
        }
    };
    let at_least = |n: usize| -> Result<(), FortError> {
        if args.len() >= n {
            Ok(())
        } else {
            Err(FortError::runtime(
                line,
                format!("{name} expects at least {n} argument(s)"),
            ))
        }
    };
    Ok(match name {
        "ABS" => {
            argc(1)?;
            match args[0] {
                Value::Int(n) => Value::Int(n.abs()),
                _ => Value::Real(args[0].as_real(line)?.abs()),
            }
        }
        "IABS" => {
            argc(1)?;
            Value::Int(args[0].as_int(line)?.abs())
        }
        "SQRT" => {
            argc(1)?;
            let x = args[0].as_real(line)?;
            if x < 0.0 {
                return Err(FortError::runtime(line, "SQRT of a negative value"));
            }
            Value::Real(x.sqrt())
        }
        "EXP" => {
            argc(1)?;
            Value::Real(args[0].as_real(line)?.exp())
        }
        "ALOG" => {
            argc(1)?;
            let x = args[0].as_real(line)?;
            if x <= 0.0 {
                return Err(FortError::runtime(line, "ALOG of a non-positive value"));
            }
            Value::Real(x.ln())
        }
        "SIN" => {
            argc(1)?;
            Value::Real(args[0].as_real(line)?.sin())
        }
        "COS" => {
            argc(1)?;
            Value::Real(args[0].as_real(line)?.cos())
        }
        "MOD" => {
            argc(2)?;
            match (args[0], args[1]) {
                (Value::Int(a), Value::Int(b)) => {
                    if b == 0 {
                        return Err(FortError::runtime(line, "MOD by zero"));
                    }
                    Value::Int(a % b)
                }
                _ => {
                    let a = args[0].as_real(line)?;
                    let b = args[1].as_real(line)?;
                    if b == 0.0 {
                        return Err(FortError::runtime(line, "MOD by zero"));
                    }
                    Value::Real(a % b)
                }
            }
        }
        "MIN" | "MIN0" | "AMIN1" => {
            at_least(1)?;
            fold_minmax(name, args, line, true)?
        }
        "MAX" | "MAX0" | "AMAX1" => {
            at_least(1)?;
            fold_minmax(name, args, line, false)?
        }
        "FLOAT" => {
            argc(1)?;
            Value::Real(args[0].as_real(line)?)
        }
        "INT" => {
            argc(1)?;
            Value::Int(args[0].as_int(line)?)
        }
        "NINT" => {
            argc(1)?;
            Value::Int(args[0].as_real(line)?.round() as i64)
        }
        "ZZPID" => {
            argc(0)?;
            Value::Int(me)
        }
        "ZZNPROC" => {
            argc(0)?;
            Value::Int(np)
        }
        other => {
            return Err(FortError::runtime(
                line,
                format!("unknown function or undeclared array `{other}`"),
            ))
        }
    })
}

fn fold_minmax(name: &str, args: &[Value], line: usize, min: bool) -> Result<Value, FortError> {
    let all_int = args.iter().all(|v| matches!(v, Value::Int(_)));
    if all_int && (name == "MIN" || name == "MAX" || name == "MIN0" || name == "MAX0") {
        let mut best = args[0].as_int(line)?;
        for a in &args[1..] {
            let v = a.as_int(line)?;
            best = if min { best.min(v) } else { best.max(v) };
        }
        Ok(Value::Int(best))
    } else {
        let mut best = args[0].as_real(line)?;
        for a in &args[1..] {
            let v = a.as_real(line)?;
            best = if min { best.min(v) } else { best.max(v) };
        }
        Ok(Value::Real(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(name: &str, args: &[Value]) -> Value {
        eval_function(name, args, 1, 3, 8).unwrap()
    }

    #[test]
    fn arithmetic_intrinsics() {
        assert_eq!(f("ABS", &[Value::Int(-4)]), Value::Int(4));
        assert_eq!(f("ABS", &[Value::Real(-2.5)]), Value::Real(2.5));
        assert_eq!(f("SQRT", &[Value::Real(9.0)]), Value::Real(3.0));
        assert_eq!(f("MOD", &[Value::Int(7), Value::Int(3)]), Value::Int(1));
        assert_eq!(
            f("MAX", &[Value::Int(2), Value::Int(9), Value::Int(5)]),
            Value::Int(9)
        );
        assert_eq!(
            f("MIN", &[Value::Real(2.0), Value::Int(1)]),
            Value::Real(1.0)
        );
        assert_eq!(f("FLOAT", &[Value::Int(2)]), Value::Real(2.0));
        assert_eq!(f("INT", &[Value::Real(2.9)]), Value::Int(2));
        assert_eq!(f("NINT", &[Value::Real(2.9)]), Value::Int(3));
    }

    #[test]
    fn pid_and_nproc() {
        assert_eq!(f("ZZPID", &[]), Value::Int(3));
        assert_eq!(f("ZZNPROC", &[]), Value::Int(8));
    }

    #[test]
    fn errors() {
        assert!(eval_function("SQRT", &[Value::Real(-1.0)], 1, 0, 1).is_err());
        assert!(eval_function("MOD", &[Value::Int(1), Value::Int(0)], 1, 0, 1).is_err());
        assert!(eval_function("NOPE", &[], 1, 0, 1).is_err());
        assert!(eval_function("ABS", &[], 1, 0, 1).is_err());
    }

    #[test]
    fn name_tables() {
        assert!(is_intrinsic_function("MOD"));
        assert!(!is_intrinsic_function("TOTAL"));
        assert!(is_intrinsic_subroutine("ZZTSLCK"));
        assert!(is_intrinsic_subroutine("ZZFORKJ"));
        assert!(!is_intrinsic_subroutine("WORK"));
    }
}
