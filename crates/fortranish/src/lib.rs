//! # force-fortran — the mini-Fortran substrate of The Force
//!
//! A lexer, parser and multi-process interpreter for the Fortran subset
//! emitted by the Force preprocessor ([`force_prep`]), with COMMON
//! storage shared through a simulated machine personality
//! ([`force_machdep::Machine`]).  This crate substitutes for the
//! "manufacturer provided Fortran compiler and linker" of the paper's
//! three-step pipeline (§4.3).
//!
//! ```
//! use force_fortran::Engine;
//! use force_machdep::{Machine, MachineId};
//! use force_prep::preprocess;
//!
//! let source = "\
//!       Force FMAIN of NP ident ME
//!       Shared INTEGER TOTAL
//!       Private INTEGER K
//!       End declarations
//!       Selfsched DO 100 K = 1, 10
//!       Critical LCK
//!       TOTAL = TOTAL + K
//!       End critical
//! 100   End selfsched DO
//!       Join
//! ";
//! let expanded = preprocess(source, MachineId::EncoreMultimax).unwrap();
//! let engine = Engine::from_expanded(&expanded, Machine::new(MachineId::EncoreMultimax)).unwrap();
//! let out = engine.run(4).unwrap();
//! assert_eq!(out.shared_scalar("TOTAL").unwrap().as_int(0).unwrap(), 55);
//! ```

pub mod ast;
pub mod bytecode;
pub mod engine;
pub mod error;
pub mod intrinsics;
pub mod lexer;
pub mod parser;
pub mod program;
pub mod token;
pub mod value;

pub use engine::{Engine, RunOutput};
pub use error::{FortError, FortErrorKind};
pub use program::{Program, Unit};
pub use value::Value;
