//! Runtime values and their coercions.

use crate::ast::Ty;
use crate::error::{FortError, FortErrorKind};

/// A runtime value (one storage word).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// INTEGER
    Int(i64),
    /// REAL
    Real(f64),
    /// LOGICAL
    Log(bool),
}

impl Value {
    /// The zero/default value of a type.
    pub fn zero(ty: Ty) -> Value {
        match ty {
            Ty::Integer => Value::Int(0),
            Ty::Real => Value::Real(0.0),
            Ty::Logical => Value::Log(false),
        }
    }

    /// The value's type.
    pub fn ty(&self) -> Ty {
        match self {
            Value::Int(_) => Ty::Integer,
            Value::Real(_) => Ty::Real,
            Value::Log(_) => Ty::Logical,
        }
    }

    /// Coerce to integer (Fortran truncation for reals).
    ///
    /// NaN, infinities and reals whose truncation does not fit in an
    /// `i64` are runtime errors, not an arbitrary saturated/wrapped
    /// integer (which is what an `as` cast would silently produce).
    pub fn as_int(&self, line: usize) -> Result<i64, FortError> {
        match self {
            Value::Int(n) => Ok(*n),
            Value::Real(x) => {
                let t = x.trunc();
                // 2^63 is exactly representable in f64; i64::MAX is not,
                // so the inclusive upper bound is `t < 2^63`.
                if t.is_finite()
                    && (-9_223_372_036_854_775_808.0..9_223_372_036_854_775_808.0).contains(&t)
                {
                    Ok(t as i64)
                } else {
                    Err(FortError::at(
                        line,
                        FortErrorKind::Runtime(format!(
                            "REAL value {x} has no INTEGER representation"
                        )),
                    ))
                }
            }
            Value::Log(_) => Err(FortError::at(
                line,
                FortErrorKind::Runtime("LOGICAL used where a number is required".into()),
            )),
        }
    }

    /// Coerce to real.
    pub fn as_real(&self, line: usize) -> Result<f64, FortError> {
        match self {
            Value::Int(n) => Ok(*n as f64),
            Value::Real(x) => Ok(*x),
            Value::Log(_) => Err(FortError::at(
                line,
                FortErrorKind::Runtime("LOGICAL used where a number is required".into()),
            )),
        }
    }

    /// Coerce to logical.
    pub fn as_log(&self, line: usize) -> Result<bool, FortError> {
        match self {
            Value::Log(b) => Ok(*b),
            _ => Err(FortError::at(
                line,
                FortErrorKind::Runtime("numeric value used where a LOGICAL is required".into()),
            )),
        }
    }

    /// Convert for storing into a slot of type `ty` (assignment coercion).
    pub fn convert_to(&self, ty: Ty, line: usize) -> Result<Value, FortError> {
        Ok(match ty {
            Ty::Integer => Value::Int(self.as_int(line)?),
            Ty::Real => Value::Real(self.as_real(line)?),
            Ty::Logical => Value::Log(self.as_log(line)?),
        })
    }

    /// Encode into a 64-bit storage word.
    pub fn to_bits(&self) -> u64 {
        match self {
            Value::Int(n) => *n as u64,
            Value::Real(x) => x.to_bits(),
            Value::Log(b) => *b as u64,
        }
    }

    /// Decode from a 64-bit storage word, given the slot type.
    pub fn from_bits(bits: u64, ty: Ty) -> Value {
        match ty {
            Ty::Integer => Value::Int(bits as i64),
            Ty::Real => Value::Real(f64::from_bits(bits)),
            Ty::Logical => Value::Log(bits != 0),
        }
    }

    /// Format as Fortran list-directed output.
    pub fn display(&self) -> String {
        match self {
            Value::Int(n) => n.to_string(),
            Value::Real(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    format!("{x:.1}")
                } else {
                    format!("{x}")
                }
            }
            Value::Log(true) => "T".to_string(),
            Value::Log(false) => "F".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(Value::Real(2.9).as_int(1).unwrap(), 2);
        assert_eq!(Value::Real(-2.9).as_int(1).unwrap(), -2);
        assert_eq!(Value::Int(-3).as_real(1).unwrap(), -3.0);
        assert!(Value::Log(true).as_int(1).is_err());
        assert!(Value::Int(1).as_log(1).is_err());
    }

    #[test]
    fn non_finite_and_out_of_range_reals_do_not_truncate_silently() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e300, -1e300] {
            let err = Value::Real(bad).as_int(7).unwrap_err();
            assert_eq!(err.line, Some(7));
            assert!(
                err.to_string().contains("no INTEGER representation"),
                "{err}"
            );
        }
        // The largest magnitudes that do fit still convert exactly.
        assert_eq!(
            Value::Real(-9_223_372_036_854_775_808.0).as_int(1).unwrap(),
            i64::MIN
        );
        assert!(Value::Real(9_223_372_036_854_775_808.0).as_int(1).is_err());
    }

    #[test]
    fn bits_roundtrip() {
        for (v, ty) in [
            (Value::Int(-42), Ty::Integer),
            (Value::Real(2.5), Ty::Real),
            (Value::Log(true), Ty::Logical),
            (Value::Log(false), Ty::Logical),
        ] {
            assert_eq!(Value::from_bits(v.to_bits(), ty), v);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(7).display(), "7");
        assert_eq!(Value::Real(2.0).display(), "2.0");
        assert_eq!(Value::Real(2.5).display(), "2.5");
        assert_eq!(Value::Log(true).display(), "T");
    }

    #[test]
    fn zero_defaults() {
        assert_eq!(Value::zero(Ty::Integer), Value::Int(0));
        assert_eq!(Value::zero(Ty::Real), Value::Real(0.0));
        assert_eq!(Value::zero(Ty::Logical), Value::Log(false));
    }

    #[test]
    fn assignment_conversion() {
        assert_eq!(
            Value::Real(3.7).convert_to(Ty::Integer, 1).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            Value::Int(3).convert_to(Ty::Real, 1).unwrap(),
            Value::Real(3.0)
        );
    }
}
