//! Recursive-descent parser: one lexed line → one [`Stmt`].

use crate::ast::{BinOp, DeclItem, Expr, LValue, Stmt, Ty, UnOp};
use crate::error::{FortError, FortErrorKind};
use crate::token::{DotOp, Token};

/// Parse the tokens of one statement line.
pub fn parse_statement(tokens: &[Token], line_no: usize) -> Result<Stmt, FortError> {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        line: line_no,
    };
    let stmt = p.statement()?;
    p.expect_end()?;
    Ok(stmt)
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> FortError {
        FortError::at(self.line, FortErrorKind::Parse(msg.into()))
    }

    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), FortError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, FortError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn expect_end(&mut self) -> Result<(), FortError> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            Err(self.err(format!(
                "unexpected trailing tokens: {:?}",
                &self.toks[self.pos..]
            )))
        }
    }

    fn peek_ident(&self) -> Option<&'a str> {
        match self.peek() {
            Some(Token::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    // ---- statements -------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, FortError> {
        let first = match self.peek_ident() {
            Some(s) => s.to_string(),
            None => return Err(self.err("statement must start with a keyword or variable")),
        };
        match first.as_str() {
            "PROGRAM" => {
                self.next();
                let name = self.expect_ident("program name")?;
                Ok(Stmt::Program(name))
            }
            "SUBROUTINE" => {
                self.next();
                let name = self.expect_ident("subroutine name")?;
                let mut params = Vec::new();
                if self.eat(&Token::LParen) && !self.eat(&Token::RParen) {
                    loop {
                        params.push(self.expect_ident("parameter name")?);
                        if self.eat(&Token::RParen) {
                            break;
                        }
                        self.expect(&Token::Comma, "`,` in parameter list")?;
                    }
                }
                Ok(Stmt::Subroutine(name, params))
            }
            "END" => {
                self.next();
                match self.peek_ident() {
                    Some("IF") => {
                        self.next();
                        Ok(Stmt::EndIf)
                    }
                    Some("DO") => {
                        self.next();
                        Ok(Stmt::EndDo)
                    }
                    None => Ok(Stmt::EndUnit),
                    Some(other) => Err(self.err(format!("unexpected `END {other}`"))),
                }
            }
            "ENDIF" => {
                self.next();
                Ok(Stmt::EndIf)
            }
            "ENDDO" => {
                self.next();
                Ok(Stmt::EndDo)
            }
            "RETURN" => {
                self.next();
                Ok(Stmt::Return)
            }
            "STOP" => {
                self.next();
                Ok(Stmt::Stop)
            }
            "CONTINUE" => {
                self.next();
                Ok(Stmt::Continue)
            }
            "INTEGER" | "REAL" | "LOGICAL" | "DOUBLE" => {
                self.next();
                if first == "DOUBLE" {
                    // DOUBLE PRECISION
                    if self.peek_ident() == Some("PRECISION") {
                        self.next();
                    }
                }
                let ty = Ty::from_keyword(&first).expect("checked keyword");
                let items = self.decl_items()?;
                Ok(Stmt::Decl { ty, items })
            }
            "COMMON" => {
                self.next();
                self.expect(&Token::Slash, "`/` before COMMON block name")?;
                let block = self.expect_ident("COMMON block name")?;
                self.expect(&Token::Slash, "`/` after COMMON block name")?;
                let items = self.decl_items()?;
                Ok(Stmt::Common { block, items })
            }
            "IF" => {
                self.next();
                self.expect(&Token::LParen, "`(` after IF")?;
                let cond = self.expr()?;
                self.expect(&Token::RParen, "`)` after IF condition")?;
                if self.peek_ident() == Some("THEN") {
                    self.next();
                    Ok(Stmt::IfThen(cond))
                } else if matches!(self.peek(), Some(Token::Int(_))) {
                    // Arithmetic IF: IF (e) l1, l2, l3
                    let mut labels = [0u32; 3];
                    for (i, slot) in labels.iter_mut().enumerate() {
                        if i > 0 {
                            self.expect(&Token::Comma, "`,` in arithmetic IF")?;
                        }
                        match self.next() {
                            Some(Token::Int(n)) => {
                                *slot =
                                    u32::try_from(*n).map_err(|_| self.err("label out of range"))?
                            }
                            _ => return Err(self.err("expected a label in arithmetic IF")),
                        }
                    }
                    Ok(Stmt::ArithIf(cond, labels[0], labels[1], labels[2]))
                } else {
                    // Logical IF: one simple statement on the same line.
                    let inner = self.statement()?;
                    match inner {
                        Stmt::Assign { .. }
                        | Stmt::Call { .. }
                        | Stmt::Goto(_)
                        | Stmt::Return
                        | Stmt::Stop
                        | Stmt::Continue
                        | Stmt::Print(_) => Ok(Stmt::LogicalIf(cond, Box::new(inner))),
                        _ => Err(self.err("unsupported statement in logical IF")),
                    }
                }
            }
            "ELSE" => {
                self.next();
                if self.peek_ident() == Some("IF") {
                    self.next();
                    self.expect(&Token::LParen, "`(` after ELSE IF")?;
                    let cond = self.expr()?;
                    self.expect(&Token::RParen, "`)` after ELSE IF condition")?;
                    if self.peek_ident() == Some("THEN") {
                        self.next();
                    }
                    Ok(Stmt::ElseIf(cond))
                } else {
                    Ok(Stmt::Else)
                }
            }
            "ELSEIF" => {
                self.next();
                self.expect(&Token::LParen, "`(` after ELSEIF")?;
                let cond = self.expr()?;
                self.expect(&Token::RParen, "`)` after ELSEIF condition")?;
                if self.peek_ident() == Some("THEN") {
                    self.next();
                }
                Ok(Stmt::ElseIf(cond))
            }
            "GO" => {
                self.next();
                if self.peek_ident() == Some("TO") {
                    self.next();
                } else {
                    return Err(self.err("expected `GO TO`"));
                }
                self.goto_label()
            }
            "GOTO" => {
                self.next();
                self.goto_label()
            }
            "DO" => {
                self.next();
                // DO [label] var = from, to [, step]
                let label = match self.peek() {
                    Some(Token::Int(n)) => {
                        let n = *n;
                        self.next();
                        Some(u32::try_from(n).map_err(|_| self.err("label out of range"))?)
                    }
                    _ => None,
                };
                let var = self.expect_ident("loop variable")?;
                self.expect(&Token::Equals, "`=` in DO statement")?;
                let from = self.expr()?;
                self.expect(&Token::Comma, "`,` in DO bounds")?;
                let to = self.expr()?;
                let step = if self.eat(&Token::Comma) {
                    Some(self.expr()?)
                } else {
                    None
                };
                Ok(Stmt::Do {
                    label,
                    var,
                    from,
                    to,
                    step,
                })
            }
            "CALL" => {
                self.next();
                let name = self.expect_ident("subroutine name")?;
                let mut args = Vec::new();
                if self.eat(&Token::LParen) && !self.eat(&Token::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if self.eat(&Token::RParen) {
                            break;
                        }
                        self.expect(&Token::Comma, "`,` in argument list")?;
                    }
                }
                Ok(Stmt::Call { name, args })
            }
            "PRINT" => {
                self.next();
                self.expect(&Token::Star, "`*` after PRINT")?;
                let mut items = Vec::new();
                while self.eat(&Token::Comma) {
                    items.push(self.expr()?);
                }
                Ok(Stmt::Print(items))
            }
            _ => {
                // Assignment.
                let name = self.expect_ident("variable")?;
                let lhs = if self.eat(&Token::LParen) {
                    let mut idx = Vec::new();
                    loop {
                        idx.push(self.expr()?);
                        if self.eat(&Token::RParen) {
                            break;
                        }
                        self.expect(&Token::Comma, "`,` in subscript")?;
                    }
                    LValue::Elem(name, idx)
                } else {
                    LValue::Name(name)
                };
                self.expect(&Token::Equals, "`=` in assignment")?;
                let rhs = self.expr()?;
                Ok(Stmt::Assign { lhs, rhs })
            }
        }
    }

    fn goto_label(&mut self) -> Result<Stmt, FortError> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Stmt::Goto(
                u32::try_from(*n).map_err(|_| self.err("label out of range"))?,
            )),
            _ => Err(self.err("expected a label after GO TO")),
        }
    }

    fn decl_items(&mut self) -> Result<Vec<DeclItem>, FortError> {
        let mut items = Vec::new();
        loop {
            let name = self.expect_ident("declared name")?;
            let mut dims = Vec::new();
            if self.eat(&Token::LParen) {
                loop {
                    match self.next() {
                        Some(Token::Int(n)) if *n > 0 => dims.push(*n as usize),
                        _ => {
                            return Err(
                                self.err("array dimensions must be positive integer literals")
                            )
                        }
                    }
                    if self.eat(&Token::RParen) {
                        break;
                    }
                    self.expect(&Token::Comma, "`,` in dimensions")?;
                }
                if dims.len() > 2 {
                    return Err(self.err("at most 2 array dimensions are supported"));
                }
            }
            items.push(DeclItem { name, dims });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    // ---- expressions (precedence climbing) ---------------------------------
    // .OR. < .AND. < .NOT. < relational < additive < multiplicative < ** < unary

    fn expr(&mut self) -> Result<Expr, FortError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, FortError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&Token::DotOp(DotOp::Or)) {
            self.next();
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, FortError> {
        let mut lhs = self.not_expr()?;
        while self.peek() == Some(&Token::DotOp(DotOp::And)) {
            self.next();
            let rhs = self.not_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, FortError> {
        if self.peek() == Some(&Token::DotOp(DotOp::Not)) {
            self.next();
            let inner = self.not_expr()?;
            Ok(Expr::Un(UnOp::Not, Box::new(inner)))
        } else {
            self.rel_expr()
        }
    }

    fn rel_expr(&mut self) -> Result<Expr, FortError> {
        let lhs = self.add_expr()?;
        if let Some(Token::DotOp(op)) = self.peek() {
            if let Some(bin) = BinOp::from_dotop(*op) {
                if matches!(
                    bin,
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                ) {
                    self.next();
                    let rhs = self.add_expr()?;
                    return Ok(Expr::Bin(bin, Box::new(lhs), Box::new(rhs)));
                }
            }
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, FortError> {
        let mut lhs = self.mul_expr()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.next();
                    let rhs = self.mul_expr()?;
                    lhs = Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs));
                }
                Some(Token::Minus) => {
                    self.next();
                    let rhs = self.mul_expr()?;
                    lhs = Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, FortError> {
        let mut lhs = self.unary_expr()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.next();
                    let rhs = self.unary_expr()?;
                    lhs = Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs));
                }
                Some(Token::Slash) => {
                    self.next();
                    let rhs = self.unary_expr()?;
                    lhs = Expr::Bin(BinOp::Div, Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, FortError> {
        match self.peek() {
            Some(Token::Minus) => {
                self.next();
                let inner = self.unary_expr()?;
                Ok(Expr::Un(UnOp::Neg, Box::new(inner)))
            }
            Some(Token::Plus) => {
                self.next();
                self.unary_expr()
            }
            _ => self.pow_expr(),
        }
    }

    fn pow_expr(&mut self) -> Result<Expr, FortError> {
        let base = self.atom()?;
        if self.peek() == Some(&Token::Power) {
            self.next();
            // Right associative; exponent may itself be unary.
            let exp = self.unary_expr()?;
            Ok(Expr::Bin(BinOp::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn atom(&mut self) -> Result<Expr, FortError> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Expr::Int(*n)),
            Some(Token::Real(x)) => Ok(Expr::Real(*x)),
            Some(Token::Logical(b)) => Ok(Expr::Logical(*b)),
            Some(Token::Str(s)) => Ok(Expr::Str(s.clone())),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if self.eat(&Token::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Token::RParen) {
                                break;
                            }
                            self.expect(&Token::Comma, "`,` in subscript or argument list")?;
                        }
                    }
                    Ok(Expr::Index(name.clone(), args))
                } else {
                    Ok(Expr::Var(name.clone()))
                }
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_statement;

    fn parse(s: &str) -> Stmt {
        let toks = lex_statement(s, 1).unwrap();
        parse_statement(&toks, 1).unwrap()
    }

    #[test]
    fn assignment_and_precedence() {
        let s = parse("X = A + B * C ** 2");
        match s {
            Stmt::Assign { lhs, rhs } => {
                assert_eq!(lhs, LValue::Name("X".into()));
                // A + (B * (C ** 2))
                match rhs {
                    Expr::Bin(BinOp::Add, _, r) => match *r {
                        Expr::Bin(BinOp::Mul, _, rr) => {
                            assert!(matches!(*rr, Expr::Bin(BinOp::Pow, _, _)))
                        }
                        other => panic!("expected Mul, got {other:?}"),
                    },
                    other => panic!("expected Add, got {other:?}"),
                }
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn array_element_assignment() {
        let s = parse("A(I, J+1) = 0");
        assert!(matches!(s, Stmt::Assign { lhs: LValue::Elem(_, ref idx), .. } if idx.len() == 2));
    }

    #[test]
    fn if_then_vs_logical_if() {
        assert!(matches!(parse("IF (X .GT. 0) THEN"), Stmt::IfThen(_)));
        assert!(matches!(
            parse("IF (X .GT. 0) GO TO 100"),
            Stmt::LogicalIf(_, _)
        ));
        assert!(matches!(parse("ELSE"), Stmt::Else));
        assert!(matches!(parse("ELSE IF (A .EQ. B) THEN"), Stmt::ElseIf(_)));
        assert!(matches!(parse("END IF"), Stmt::EndIf));
    }

    #[test]
    fn relational_and_logical_operators() {
        let s = parse("OK = (A .LE. B) .AND. .NOT. (C .EQ. D) .OR. E .GE. F");
        // .OR. at the top.
        match s {
            Stmt::Assign { rhs, .. } => assert!(matches!(rhs, Expr::Bin(BinOp::Or, _, _))),
            _ => unreachable!(),
        }
    }

    #[test]
    fn do_statements() {
        assert!(matches!(
            parse("DO 100 K = 1, N"),
            Stmt::Do { label: Some(100), ref var, step: None, .. } if var == "K"
        ));
        assert!(matches!(
            parse("DO I = 10, 1, -2"),
            Stmt::Do {
                label: None,
                step: Some(_),
                ..
            }
        ));
        assert!(matches!(parse("END DO"), Stmt::EndDo));
    }

    #[test]
    fn goto_and_continue() {
        assert_eq!(parse("GO TO 42"), Stmt::Goto(42));
        assert_eq!(parse("GOTO 42"), Stmt::Goto(42));
        assert_eq!(parse("CONTINUE"), Stmt::Continue);
    }

    #[test]
    fn call_statements() {
        let s = parse("CALL ZZTSLCK(BARWIN)");
        match s {
            Stmt::Call { name, args } => {
                assert_eq!(name, "ZZTSLCK");
                assert_eq!(args, vec![Expr::Var("BARWIN".into())]);
            }
            _ => unreachable!(),
        }
        assert!(matches!(parse("CALL NOARGS"), Stmt::Call { ref args, .. } if args.is_empty()));
        assert!(matches!(parse("CALL EMPTY()"), Stmt::Call { ref args, .. } if args.is_empty()));
    }

    #[test]
    fn declarations_and_common() {
        let s = parse("INTEGER K, A(10, 20)");
        match s {
            Stmt::Decl { ty, items } => {
                assert_eq!(ty, Ty::Integer);
                assert_eq!(items[1].dims, vec![10, 20]);
            }
            _ => unreachable!(),
        }
        let s = parse("COMMON /ZZFENV/ ZZNBAR, BARWIN, BARWOT");
        assert!(
            matches!(s, Stmt::Common { ref block, ref items } if block == "ZZFENV" && items.len() == 3)
        );
    }

    #[test]
    fn subroutine_headers() {
        assert!(matches!(
            parse("SUBROUTINE FMAIN"),
            Stmt::Subroutine(ref n, ref p) if n == "FMAIN" && p.is_empty()
        ));
        assert!(matches!(
            parse("SUBROUTINE WORK(A, N)"),
            Stmt::Subroutine(_, ref p) if p.len() == 2
        ));
        assert!(matches!(parse("PROGRAM ZZDRIVE"), Stmt::Program(_)));
        assert!(matches!(parse("END"), Stmt::EndUnit));
    }

    #[test]
    fn print_statement() {
        let s = parse("PRINT *, 'SUM =', TOTAL");
        match s {
            Stmt::Print(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0], Expr::Str("SUM =".into()));
            }
            _ => unreachable!(),
        }
        assert!(matches!(parse("PRINT *"), Stmt::Print(ref v) if v.is_empty()));
    }

    #[test]
    fn function_call_in_expression() {
        let s = parse("X = MOD(K, 2) + ABS(-3)");
        match s {
            Stmt::Assign {
                rhs: Expr::Bin(BinOp::Add, l, r),
                ..
            } => {
                assert!(matches!(*l, Expr::Index(ref n, _) if n == "MOD"));
                assert!(matches!(*r, Expr::Index(ref n, _) if n == "ABS"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn power_is_right_associative_with_unary_exponent() {
        let s = parse("X = A ** -2");
        assert!(matches!(
            s,
            Stmt::Assign {
                rhs: Expr::Bin(BinOp::Pow, _, _),
                ..
            }
        ));
    }

    #[test]
    fn errors_report_line() {
        let toks = lex_statement("IF (X", 7).unwrap();
        let err = parse_statement(&toks, 7).unwrap_err();
        assert_eq!(err.line, Some(7));
    }

    #[test]
    fn three_dims_rejected() {
        let toks = lex_statement("INTEGER A(2,2,2)", 1).unwrap();
        assert!(parse_statement(&toks, 1).is_err());
    }
}
