//! Structured errors for the mini-Fortran substrate.

use std::fmt;

/// What went wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum FortErrorKind {
    /// Lexical error.
    Lex(String),
    /// Parse error.
    Parse(String),
    /// Program-structure error (missing unit, duplicate label, ...).
    Structure(String),
    /// Runtime error (out-of-bounds, type error, uninitialized lock, ...).
    Runtime(String),
    /// The code was preprocessed for a different machine than it is
    /// running on ("a Force binary is not portable; the source is").
    MachineMismatch {
        /// What the code expects (mnemonic flavour).
        expected: String,
        /// What the executing machine provides.
        found: String,
    },
}

/// An error with an optional source line.
#[derive(Debug, Clone, PartialEq)]
pub struct FortError {
    /// 1-based source line, when known.
    pub line: Option<usize>,
    /// The error itself.
    pub kind: FortErrorKind,
}

impl FortError {
    /// An error at a known source line.
    pub fn at(line: usize, kind: FortErrorKind) -> Self {
        FortError {
            line: Some(line),
            kind,
        }
    }

    /// An error with no line attribution.
    pub fn general(kind: FortErrorKind) -> Self {
        FortError { line: None, kind }
    }

    /// Shorthand for a runtime error.
    pub fn runtime(line: usize, msg: impl Into<String>) -> Self {
        FortError::at(line, FortErrorKind::Runtime(msg.into()))
    }
}

impl fmt::Display for FortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = self.line {
            write!(f, "line {l}: ")?
        }
        match &self.kind {
            FortErrorKind::Lex(m) => write!(f, "lexical error: {m}"),
            FortErrorKind::Parse(m) => write!(f, "parse error: {m}"),
            FortErrorKind::Structure(m) => write!(f, "program error: {m}"),
            FortErrorKind::Runtime(m) => write!(f, "runtime error: {m}"),
            FortErrorKind::MachineMismatch { expected, found } => write!(
                f,
                "machine mismatch: code preprocessed for {expected} locks cannot run on a machine providing {found} locks (re-run the preprocessor — the source is portable, the expansion is not)"
            ),
        }
    }
}

impl std::error::Error for FortError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = FortError::at(12, FortErrorKind::Parse("bad thing".into()));
        assert_eq!(e.to_string(), "line 12: parse error: bad thing");
        let e = FortError::general(FortErrorKind::Structure("no units".into()));
        assert_eq!(e.to_string(), "program error: no units");
    }

    #[test]
    fn machine_mismatch_explains_portability() {
        let e = FortError::general(FortErrorKind::MachineMismatch {
            expected: "test&set".into(),
            found: "system call".into(),
        });
        assert!(e.to_string().contains("re-run the preprocessor"));
    }
}
