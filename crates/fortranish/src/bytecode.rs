//! Bytecode lowering of the fortranish front end: a flat instruction
//! stream with *resolved storage slots* plus a small stack VM.
//!
//! The tree-walking interpreter in [`crate::engine`] re-resolves every
//! name against the unit's symbol table on every access and re-walks the
//! expression tree on every evaluation.  This module compiles each
//! program unit once — scalar reads become `LoadLocal`/`LoadShared` with
//! baked-in slots, the seven-node boolean tree the front end builds for
//! a structured `DO` head fuses into a single `Instr::DoCheck` whose
//! completion test is delegated to `force-core`'s schedule range rule
//! ([`ForceRange::in_bounds`], the §4.2 `(incr > 0 ∧ k ≤ last) ∨
//! (incr < 0 ∧ k ≥ last)` test) — and the VM executes the result.
//!
//! Semantics are bit-for-bit those of the tree-walker; the equivalence
//! oracle (`tests/native_vs_interpreter.rs` and the executor matrix)
//! holds both executors to identical outputs, `OpStats` and error text.
//! To that end the compiler is *infallible*: every error the tree-walker
//! would raise at execution time (unknown variable, scalar subscripted,
//! machine mismatch, …) compiles to code that raises the same error at
//! the same execution point — never to a compile-time rejection, which
//! would change *when* a fault surfaces.  All ZZ* runtime services
//! delegate to the single service layer in [`crate::engine`], so lock
//! semantics, stats charging and fault attribution cannot drift.

use std::collections::HashMap;
use std::sync::Arc;

use force_core::schedule::ForceRange;
use force_machdep::fault;

use crate::ast::{BinOp, Expr, LValue, Ty, UnOp};
use crate::engine::{
    aini_service, check_fork_mnemonic, check_hardware_fe, check_isfull_machine, check_vendor_locks,
    eval_binop, hep_construct, hep_consume, hep_copy, hep_produce, init_lock_service, isfull_value,
    link_service, lock_mnemonic, lock_service, num_cmp, shpg_service, spawn_force, strt0_service,
    voidl_service, ArgVal, Flow, Rt, SharedState,
};
use crate::error::FortError;
use crate::intrinsics;
use crate::program::{Op, Program, Storage, Symbol, Unit};
use crate::value::Value;

// ---- instruction set -------------------------------------------------

/// One VM instruction.  String payloads are interned in
/// [`CompiledProgram::names`]; jump targets are instruction offsets
/// within the unit.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Instr {
    /// Unconditional jump.
    Jump(u32),
    /// Pop a LOGICAL; jump if false.
    JumpIfFalse(u32),
    /// Fused structured-DO head: pops `to`, `var`, `step` and jumps past
    /// the loop body unless the trip continues (§4.2 completion test).
    DoCheck(u32),
    ConstInt(i64),
    ConstReal(f64),
    ConstLog(bool),
    /// Push the process id / force size.
    LoadMe,
    LoadNp,
    /// Push a private scalar from its frame slot.
    LoadLocal(u32),
    /// Push a shared scalar (block index + word offset within it).
    LoadShared {
        block: u16,
        offset: u32,
        ty: Ty,
    },
    /// Push a dummy-argument scalar; the binding's kind is checked
    /// dynamically exactly as the tree-walker does.
    LoadArgScalar {
        arg: u16,
        name: u32,
    },
    /// Pop, convert to `ty`, store into a private frame slot.
    StoreLocal {
        base: u32,
        ty: Ty,
    },
    /// Pop, convert to `ty`, store into shared storage.
    StoreShared {
        block: u16,
        offset: u32,
        ty: Ty,
    },
    /// Pop, store through a dummy argument (dynamic binding checks;
    /// `declared` is the callee-declared type, converted-through first
    /// for error parity with the tree-walker).
    StoreArgScalar {
        arg: u16,
        name: u32,
        declared: Ty,
    },
    /// Pop, convert to `ty`, push (conversion-error parity only).
    Convert(Ty),
    /// Subscript step for a statically-dimensioned array: pops the index
    /// value, then the running offset accumulator; bounds-checks
    /// subscript `k` against `dim` and pushes the advanced accumulator.
    IdxCheck {
        k: u8,
        dim: u32,
        stride: u32,
        name: u32,
    },
    /// Subscript step for an argument-bound array (dimensions read from
    /// the binding at run time).
    IdxCheckArg {
        arg: u16,
        k: u8,
        name: u32,
    },
    /// Head of an argument-bound element access: checks the binding is
    /// an array reference with `nidx` dimensions and pushes the offset
    /// accumulator seed.
    ArgElemCheck {
        arg: u16,
        nidx: u8,
        name: u32,
    },
    /// Pop the accumulator; push the element of a private array.
    LoadElemLocal {
        base: u32,
    },
    /// Pop the accumulator, then the value; store into a private array.
    StoreElemLocal {
        base: u32,
        ty: Ty,
    },
    LoadElemShared {
        block: u16,
        offset: u32,
        ty: Ty,
    },
    StoreElemShared {
        block: u16,
        offset: u32,
        ty: Ty,
    },
    /// Pop the accumulator; push the element behind an array argument.
    LoadElemArg {
        arg: u16,
    },
    StoreElemArg {
        arg: u16,
    },
    Neg,
    Not,
    Bin(BinOp),
    /// Intrinsic function call: pops `argc` values.
    CallFn {
        name: u32,
        argc: u8,
    },
    /// Append a literal to the PRINT line being built.
    PrintStr(u32),
    /// Pop a value and append its display form to the PRINT line.
    PrintVal,
    /// Emit the assembled PRINT line.
    PrintFlush,
    Return,
    Stop,
    /// Raise a runtime error whose condition was decidable at compile
    /// time — placed exactly where the tree-walker would raise it.
    Fail(u32),

    // -- argument binding and user calls --
    /// Bind a shared scalar/array base by reference.
    ArgShared {
        block: u16,
        offset: u32,
        ty: Ty,
        dims: u32,
    },
    /// Pop the accumulator; bind one shared array element by reference.
    ArgSharedElem {
        block: u16,
        offset: u32,
        ty: Ty,
    },
    /// Pop the accumulator; rebind an element of an array argument.
    ArgArgElem {
        arg: u16,
    },
    /// Pop a value; bind it by value (read-only in the callee).
    ArgValue,
    /// Forward the caller's binding `arg` unchanged.
    ArgForward(u16),
    /// Bind a program-unit name (spawn intrinsics).
    ArgUnit(u32),
    /// Call a user unit with the last `argc` bindings.
    CallUser {
        unit: u32,
        argc: u8,
    },

    // -- ZZ* runtime services (shared service layer in `engine`) --
    /// Pop the newest binding; it must be shared storage (service
    /// argument `argn` of mnemonic `name`) — push it as a *place*.
    SvcPlace {
        name: u32,
        argn: u8,
    },
    SvcVendorCheck(force_machdep::LockKind),
    SvcLock {
        is_lock: bool,
        var_name: Option<u32>,
    },
    SvcInitLock {
        keep_locked: bool,
        user_pool: bool,
    },
    SvcAini,
    SvcVoidl,
    SvcHwCheck,
    /// Pop the value, then the place: produce into a full/empty cell.
    SvcHepProduce,
    /// Pop the place; push the consumed value.
    SvcHepConsume,
    SvcHepCopy,
    SvcHepVoid,
    SvcStrt0,
    SvcLink,
    SvcShpg,
    SvcForkCheck(u32),
    /// Create the force: run `unit` on `nproc` VM processes.
    Fork {
        unit: u32,
    },
    SvcIsFullCheck(u32),
    /// Pop the place; push its full/empty snapshot.
    IsFullValue(u32),
}

/// One compiled unit.
#[derive(Debug)]
pub(crate) struct CUnit {
    pub(crate) name: String,
    /// Declared dummy-argument count (checked at call time).
    pub(crate) params: u16,
    pub(crate) frame_words: u32,
    /// Typed-zero initialization runs: `(base, words, ty)`.
    pub(crate) locals_init: Vec<(u32, u32, Ty)>,
    pub(crate) code: Vec<Instr>,
    /// Source line of each instruction (diagnostics).
    pub(crate) lines: Vec<u32>,
}

/// A whole program, lowered.  Built once per `(source, machine)`
/// expansion and shared through the preprocessor cache's payload slot.
#[derive(Debug)]
pub struct CompiledProgram {
    /// Units sorted by name (binary-searchable, deterministic layout).
    pub(crate) units: Vec<CUnit>,
    /// Shared block names in declaration order; instruction `block`
    /// fields index this table.
    pub(crate) blocks: Vec<String>,
    /// Interned strings (error messages, dynamic-lookup names).
    pub(crate) names: Vec<String>,
    /// Interned dimension vectors for array-base argument bindings.
    pub(crate) dims_tables: Vec<Vec<usize>>,
}

impl CompiledProgram {
    /// Index of a unit by name.
    pub(crate) fn unit_index(&self, name: &str) -> Option<usize> {
        self.units
            .binary_search_by(|u| u.name.as_str().cmp(name))
            .ok()
    }
}

// ---- compiler --------------------------------------------------------

struct Compiler<'p> {
    program: &'p Program,
    block_ids: HashMap<&'p str, u16>,
    unit_ids: HashMap<&'p str, u32>,
    names: Vec<String>,
    name_ids: HashMap<String, u32>,
    dims_tables: Vec<Vec<usize>>,
}

/// Per-unit code emission state.
struct Emit<'p> {
    symbols: &'p HashMap<String, Symbol>,
    code: Vec<Instr>,
    lines: Vec<u32>,
}

impl Emit<'_> {
    fn push(&mut self, i: Instr, line: usize) {
        self.code.push(i);
        self.lines.push(line as u32);
    }
}

/// Lower a parsed program to bytecode.  Infallible by design: statically
/// detectable runtime errors become `Instr::Fail` at their execution
/// point, preserving the tree-walker's fault timing.
pub fn compile(program: &Program) -> CompiledProgram {
    let mut c = Compiler {
        program,
        block_ids: program
            .shared_blocks
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.as_str(), i as u16))
            .collect(),
        unit_ids: HashMap::new(),
        names: Vec::new(),
        name_ids: HashMap::new(),
        dims_tables: Vec::new(),
    };
    let mut unit_names: Vec<&str> = program.units.keys().map(|s| s.as_str()).collect();
    unit_names.sort_unstable();
    for (i, n) in unit_names.iter().enumerate() {
        c.unit_ids.insert(n, i as u32);
    }
    let units = unit_names
        .iter()
        .map(|n| c.compile_unit(&program.units[*n]))
        .collect();
    CompiledProgram {
        units,
        blocks: program
            .shared_blocks
            .iter()
            .map(|(n, _)| n.clone())
            .collect(),
        names: c.names,
        dims_tables: c.dims_tables,
    }
}

impl<'p> Compiler<'p> {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.name_ids.get(s) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(s.to_string());
        self.name_ids.insert(s.to_string(), i);
        i
    }

    fn intern_dims(&mut self, dims: &[usize]) -> u32 {
        if let Some(i) = self.dims_tables.iter().position(|d| d == dims) {
            return i as u32;
        }
        self.dims_tables.push(dims.to_vec());
        (self.dims_tables.len() - 1) as u32
    }

    fn compile_unit(&mut self, unit: &'p Unit) -> CUnit {
        let mut e = Emit {
            symbols: &unit.symbols,
            code: Vec::new(),
            lines: Vec::new(),
        };
        // First pass: emit each op, recording where it starts; jump
        // targets temporarily hold *op* indices.
        let mut op_starts = Vec::with_capacity(unit.ops.len() + 1);
        for (pc, op) in unit.ops.iter().enumerate() {
            op_starts.push(e.code.len() as u32);
            let line = unit.op_lines[pc];
            match op {
                Op::Nop => {}
                Op::Jump(t) => e.push(Instr::Jump(*t as u32), line),
                Op::JumpIfFalse(cond, t) => {
                    match crate::program::match_do_condition(cond) {
                        Some((var, to, step)) => {
                            // Tree evaluation order of the condition's
                            // first error: step, then var, then to.
                            self.expr(&mut e, step, line);
                            self.expr(&mut e, var, line);
                            self.expr(&mut e, to, line);
                            e.push(Instr::DoCheck(*t as u32), line);
                        }
                        None => {
                            self.expr(&mut e, cond, line);
                            e.push(Instr::JumpIfFalse(*t as u32), line);
                        }
                    }
                }
                Op::Assign(lhs, rhs) => {
                    self.expr(&mut e, rhs, line);
                    self.store(&mut e, lhs, line);
                }
                Op::Print(items) => {
                    for it in items {
                        match it {
                            Expr::Str(s) => {
                                let id = self.intern(s);
                                e.push(Instr::PrintStr(id), line);
                            }
                            other => {
                                self.expr(&mut e, other, line);
                                e.push(Instr::PrintVal, line);
                            }
                        }
                    }
                    e.push(Instr::PrintFlush, line);
                }
                Op::Return => e.push(Instr::Return, line),
                Op::Stop => e.push(Instr::Stop, line),
                Op::Call(name, args) => self.call(&mut e, name, args, line),
            }
        }
        op_starts.push(e.code.len() as u32);
        // Second pass: rewrite op-index jump targets to instruction
        // offsets.
        for i in &mut e.code {
            match i {
                Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::DoCheck(t) => {
                    *t = op_starts[*t as usize];
                }
                _ => {}
            }
        }
        let mut locals_init = Vec::new();
        for sym in unit.symbols.values() {
            if let Storage::Local { base } = sym.storage {
                if sym.ty != Ty::Integer {
                    locals_init.push((base as u32, sym.words() as u32, sym.ty));
                }
            }
        }
        locals_init.sort_unstable_by_key(|&(base, ..)| base);
        CUnit {
            name: unit.name.clone(),
            params: unit.params.len() as u16,
            frame_words: unit.frame_words as u32,
            locals_init,
            code: e.code,
            lines: e.lines,
        }
    }

    fn fail(&mut self, e: &mut Emit<'_>, msg: String, line: usize) {
        let id = self.intern(&msg);
        e.push(Instr::Fail(id), line);
    }

    fn block_id(&mut self, e: &mut Emit<'_>, block: &str, line: usize) -> Option<u16> {
        match self.block_ids.get(block) {
            Some(&i) => Some(i),
            None => {
                // The tree-walker's `block_base` raises this when the
                // symbol is touched.
                self.fail(e, format!("unknown shared block {block}"), line);
                None
            }
        }
    }

    // -- expressions --

    fn expr(&mut self, e: &mut Emit<'_>, x: &Expr, line: usize) {
        match x {
            Expr::Int(n) => e.push(Instr::ConstInt(*n), line),
            Expr::Real(v) => e.push(Instr::ConstReal(*v), line),
            Expr::Logical(b) => e.push(Instr::ConstLog(*b), line),
            Expr::Str(_) => self.fail(
                e,
                "character data are only allowed in PRINT lists".into(),
                line,
            ),
            Expr::Var(n) => self.read_scalar(e, n, line),
            Expr::Index(n, idx) => {
                let is_array = e.symbols.get(n).is_some_and(|s| !s.dims.is_empty());
                if is_array {
                    self.elem_load(e, n, idx, line);
                } else if e.symbols.contains_key(n) {
                    self.fail(e, format!("{n} is a scalar but was subscripted"), line);
                } else if n == "ZZISFL" || n == "ZZHISF" {
                    let id = self.intern(n);
                    e.push(Instr::SvcIsFullCheck(id), line);
                    self.svc_place(e, n, idx, 0, line);
                    e.push(Instr::IsFullValue(id), line);
                } else {
                    for a in idx {
                        self.expr(e, a, line);
                    }
                    let id = self.intern(n);
                    e.push(
                        Instr::CallFn {
                            name: id,
                            argc: idx.len() as u8,
                        },
                        line,
                    );
                }
            }
            Expr::Un(op, a) => {
                self.expr(e, a, line);
                e.push(
                    match op {
                        UnOp::Neg => Instr::Neg,
                        UnOp::Not => Instr::Not,
                    },
                    line,
                );
            }
            Expr::Bin(op, a, b) => {
                // The tree-walker evaluates both operands
                // unconditionally (no short-circuit) — so does the VM.
                self.expr(e, a, line);
                self.expr(e, b, line);
                e.push(Instr::Bin(*op), line);
            }
        }
    }

    fn read_scalar(&mut self, e: &mut Emit<'_>, n: &str, line: usize) {
        let Some(sym) = e.symbols.get(n) else {
            return self.fail(e, format!("unknown variable {n}"), line);
        };
        if !sym.dims.is_empty() {
            return self.fail(e, format!("array {n} used without subscripts"), line);
        }
        match &sym.storage {
            Storage::Local { base } => e.push(Instr::LoadLocal(*base as u32), line),
            Storage::Shared { block, offset } => {
                let (off, ty) = (*offset as u32, sym.ty);
                if let Some(b) = self.block_id(e, block, line) {
                    e.push(
                        Instr::LoadShared {
                            block: b,
                            offset: off,
                            ty,
                        },
                        line,
                    );
                }
            }
            Storage::PseudoMe => e.push(Instr::LoadMe, line),
            Storage::PseudoNp => e.push(Instr::LoadNp, line),
            Storage::Arg(i) => {
                let id = self.intern(n);
                e.push(
                    Instr::LoadArgScalar {
                        arg: *i as u16,
                        name: id,
                    },
                    line,
                );
            }
        }
    }

    /// Emit the accumulator seed + interleaved index-eval/bounds-check
    /// chain for a statically-dimensioned array.  Returns false if a
    /// `Fail` was emitted instead (dimension-count mismatch).
    fn static_elem_chain(
        &mut self,
        e: &mut Emit<'_>,
        n: &str,
        dims: &[usize],
        idx: &[Expr],
        line: usize,
    ) -> bool {
        if idx.len() != dims.len() {
            self.fail(
                e,
                format!(
                    "{n} has {} dimension(s) but {} subscript(s) given",
                    dims.len(),
                    idx.len()
                ),
                line,
            );
            return false;
        }
        e.push(Instr::ConstInt(0), line);
        let name = self.intern(n);
        let mut stride = 1usize;
        for (k, (ix, &d)) in idx.iter().zip(dims.iter()).enumerate() {
            self.expr(e, ix, line);
            e.push(
                Instr::IdxCheck {
                    k: k as u8,
                    dim: d as u32,
                    stride: stride as u32,
                    name,
                },
                line,
            );
            stride *= d;
        }
        true
    }

    /// Emit the dynamic chain for an argument-bound array.
    fn arg_elem_chain(&mut self, e: &mut Emit<'_>, arg: usize, n: &str, idx: &[Expr], line: usize) {
        let name = self.intern(n);
        e.push(
            Instr::ArgElemCheck {
                arg: arg as u16,
                nidx: idx.len() as u8,
                name,
            },
            line,
        );
        for (k, ix) in idx.iter().enumerate() {
            self.expr(e, ix, line);
            e.push(
                Instr::IdxCheckArg {
                    arg: arg as u16,
                    k: k as u8,
                    name,
                },
                line,
            );
        }
    }

    /// Element load for an array symbol (declared dims non-empty).
    fn elem_load(&mut self, e: &mut Emit<'_>, n: &str, idx: &[Expr], line: usize) {
        let sym = e.symbols[n].clone();
        if let Storage::Arg(i) = sym.storage {
            self.arg_elem_chain(e, i, n, idx, line);
            e.push(Instr::LoadElemArg { arg: i as u16 }, line);
            return;
        }
        if !self.static_elem_chain(e, n, &sym.dims, idx, line) {
            return;
        }
        match &sym.storage {
            Storage::Local { base } => e.push(Instr::LoadElemLocal { base: *base as u32 }, line),
            Storage::Shared { block, offset } => {
                let (off, ty) = (*offset as u32, sym.ty);
                if let Some(b) = self.block_id(e, block, line) {
                    e.push(
                        Instr::LoadElemShared {
                            block: b,
                            offset: off,
                            ty,
                        },
                        line,
                    );
                }
            }
            _ => unreachable!("array storage"),
        }
    }

    // -- stores (value already on the stack) --

    fn store(&mut self, e: &mut Emit<'_>, lhs: &LValue, line: usize) {
        match lhs {
            LValue::Name(n) => {
                let Some(sym) = e.symbols.get(n).cloned() else {
                    return self.fail(e, format!("unknown variable {n}"), line);
                };
                if !sym.dims.is_empty() {
                    return self.fail(e, format!("array {n} assigned without subscripts"), line);
                }
                match &sym.storage {
                    Storage::Local { base } => e.push(
                        Instr::StoreLocal {
                            base: *base as u32,
                            ty: sym.ty,
                        },
                        line,
                    ),
                    Storage::Shared { block, offset } => {
                        let (off, ty) = (*offset as u32, sym.ty);
                        if let Some(b) = self.block_id(e, block, line) {
                            e.push(
                                Instr::StoreShared {
                                    block: b,
                                    offset: off,
                                    ty,
                                },
                                line,
                            );
                        }
                    }
                    Storage::PseudoMe | Storage::PseudoNp => {
                        // The tree-walker converts first, then rejects
                        // the store — conversion errors win.
                        e.push(Instr::Convert(sym.ty), line);
                        self.fail(e, format!("{n} (process environment) is read-only"), line);
                    }
                    Storage::Arg(i) => {
                        let id = self.intern(n);
                        e.push(
                            Instr::StoreArgScalar {
                                arg: *i as u16,
                                name: id,
                                declared: sym.ty,
                            },
                            line,
                        );
                    }
                }
            }
            LValue::Elem(n, idx) => {
                let Some(sym) = e.symbols.get(n).cloned() else {
                    return self.fail(e, format!("unknown array {n}"), line);
                };
                if let Storage::Arg(i) = sym.storage {
                    self.arg_elem_chain(e, i, n, idx, line);
                    e.push(Instr::StoreElemArg { arg: i as u16 }, line);
                    return;
                }
                if sym.dims.is_empty() {
                    return self.fail(e, format!("{n} is a scalar but was subscripted"), line);
                }
                if !self.static_elem_chain(e, n, &sym.dims, idx, line) {
                    return;
                }
                match &sym.storage {
                    Storage::Local { base } => e.push(
                        Instr::StoreElemLocal {
                            base: *base as u32,
                            ty: sym.ty,
                        },
                        line,
                    ),
                    Storage::Shared { block, offset } => {
                        let (off, ty) = (*offset as u32, sym.ty);
                        if let Some(b) = self.block_id(e, block, line) {
                            e.push(
                                Instr::StoreElemShared {
                                    block: b,
                                    offset: off,
                                    ty,
                                },
                                line,
                            );
                        }
                    }
                    _ => unreachable!("array storage"),
                }
            }
        }
    }

    // -- argument binding --

    fn bind_arg(&mut self, e: &mut Emit<'_>, a: &Expr, line: usize) {
        match a {
            Expr::Var(n) => {
                if self.program.units.contains_key(n) {
                    let id = self.intern(n);
                    return e.push(Instr::ArgUnit(id), line);
                }
                let Some(sym) = e.symbols.get(n).cloned() else {
                    return self.fail(e, format!("unknown variable {n}"), line);
                };
                match &sym.storage {
                    Storage::Shared { block, offset } => {
                        let (off, ty) = (*offset as u32, sym.ty);
                        let dims = self.intern_dims(&sym.dims);
                        if let Some(b) = self.block_id(e, block, line) {
                            e.push(
                                Instr::ArgShared {
                                    block: b,
                                    offset: off,
                                    ty,
                                    dims,
                                },
                                line,
                            );
                        }
                    }
                    Storage::Local { base } => {
                        if sym.dims.is_empty() {
                            e.push(Instr::LoadLocal(*base as u32), line);
                            e.push(Instr::ArgValue, line);
                        } else {
                            self.fail(
                                e,
                                format!("cannot pass private array {n} by reference"),
                                line,
                            );
                        }
                    }
                    Storage::PseudoMe => {
                        e.push(Instr::LoadMe, line);
                        e.push(Instr::ArgValue, line);
                    }
                    Storage::PseudoNp => {
                        e.push(Instr::LoadNp, line);
                        e.push(Instr::ArgValue, line);
                    }
                    Storage::Arg(i) => e.push(Instr::ArgForward(*i as u16), line),
                }
            }
            Expr::Index(n, idx) => {
                let is_array = e.symbols.get(n).is_some_and(|s| !s.dims.is_empty());
                if !is_array {
                    self.expr(e, a, line);
                    return e.push(Instr::ArgValue, line);
                }
                let sym = e.symbols[n].clone();
                match &sym.storage {
                    Storage::Arg(i) => {
                        self.arg_elem_chain(e, *i, n, idx, line);
                        e.push(Instr::ArgArgElem { arg: *i as u16 }, line);
                    }
                    Storage::Local { base } => {
                        if self.static_elem_chain(e, n, &sym.dims, idx, line) {
                            e.push(Instr::LoadElemLocal { base: *base as u32 }, line);
                            e.push(Instr::ArgValue, line);
                        }
                    }
                    Storage::Shared { block, offset } => {
                        let (off, ty) = (*offset as u32, sym.ty);
                        if self.static_elem_chain(e, n, &sym.dims, idx, line) {
                            if let Some(b) = self.block_id(e, block, line) {
                                e.push(
                                    Instr::ArgSharedElem {
                                        block: b,
                                        offset: off,
                                        ty,
                                    },
                                    line,
                                );
                            }
                        }
                    }
                    _ => unreachable!("array storage"),
                }
            }
            other => {
                self.expr(e, other, line);
                e.push(Instr::ArgValue, line);
            }
        }
    }

    /// Bind service argument `i` and require it to be a shared place.
    fn svc_place(&mut self, e: &mut Emit<'_>, svc: &str, args: &[Expr], i: usize, line: usize) {
        match args.get(i) {
            None => self.fail(e, format!("{svc} is missing argument {}", i + 1), line),
            Some(a) => {
                self.bind_arg(e, a, line);
                let id = self.intern(svc);
                e.push(
                    Instr::SvcPlace {
                        name: id,
                        argn: i as u8,
                    },
                    line,
                );
            }
        }
    }

    // -- calls --

    fn call(&mut self, e: &mut Emit<'_>, name: &str, args: &[Expr], line: usize) {
        if let Some(&unit) = self.unit_ids.get(name) {
            for a in args {
                self.bind_arg(e, a, line);
            }
            e.push(
                Instr::CallUser {
                    unit,
                    argc: args.len() as u8,
                },
                line,
            );
            return;
        }
        if let Some((kind, is_lock)) = lock_mnemonic(name) {
            e.push(Instr::SvcVendorCheck(kind), line);
            self.svc_place(e, name, args, 0, line);
            let var_name = match args.first() {
                Some(Expr::Var(n)) => Some(self.intern(n)),
                _ => None,
            };
            e.push(Instr::SvcLock { is_lock, var_name }, line);
            return;
        }
        match name {
            "ZZINITL" | "ZZINITK" | "ZZINITU" => {
                self.svc_place(e, name, args, 0, line);
                e.push(
                    Instr::SvcInitLock {
                        keep_locked: name == "ZZINITK",
                        user_pool: name == "ZZINITU",
                    },
                    line,
                );
            }
            "ZZAINI" => {
                self.svc_place(e, name, args, 0, line);
                self.svc_place(e, name, args, 1, line);
                e.push(Instr::SvcAini, line);
            }
            "ZZVOIDL" => {
                self.svc_place(e, name, args, 0, line);
                self.svc_place(e, name, args, 1, line);
                e.push(Instr::SvcVoidl, line);
            }
            "ZZHPRD" | "ZZHCON" | "ZZHVD" | "ZZHCPY" => {
                e.push(Instr::SvcHwCheck, line);
                self.svc_place(e, name, args, 0, line);
                match name {
                    "ZZHPRD" => match args.get(1) {
                        Some(v) => {
                            self.expr(e, v, line);
                            e.push(Instr::SvcHepProduce, line);
                        }
                        None => self.fail(e, format!("{name} is missing argument 2"), line),
                    },
                    "ZZHCON" | "ZZHCPY" => {
                        e.push(
                            if name == "ZZHCON" {
                                Instr::SvcHepConsume
                            } else {
                                Instr::SvcHepCopy
                            },
                            line,
                        );
                        // The destination resolves *after* the transfer,
                        // exactly as the tree-walker orders it.
                        match args.get(1) {
                            Some(Expr::Var(n)) => self.store(e, &LValue::Name(n.clone()), line),
                            Some(Expr::Index(n, idx)) => {
                                self.store(e, &LValue::Elem(n.clone(), idx.clone()), line)
                            }
                            Some(_) => self.fail(e, "destination must be a variable".into(), line),
                            None => self.fail(e, format!("{name} is missing argument 2"), line),
                        }
                    }
                    _ => e.push(Instr::SvcHepVoid, line),
                }
            }
            "ZZSTRT0" => e.push(Instr::SvcStrt0, line),
            "ZZLINK" => e.push(Instr::SvcLink, line),
            "ZZSHPG" => e.push(Instr::SvcShpg, line),
            "ZZFORKJ" | "ZZSFORK" | "ZZSPAWN" => {
                let id = self.intern(name);
                e.push(Instr::SvcForkCheck(id), line);
                match args.first() {
                    Some(Expr::Var(n)) if self.program.units.contains_key(n) => {
                        let unit = self.unit_ids[n.as_str()];
                        e.push(Instr::Fork { unit }, line);
                    }
                    _ => self.fail(e, format!("{name} needs a program unit to execute"), line),
                }
            }
            other => self.fail(e, format!("CALL to unknown subroutine `{other}`"), line),
        }
    }
}

// ---- VM --------------------------------------------------------------

/// The §4.2 trip-continuation test for a fused DO head.  All-integer
/// bounds delegate to the schedule range rule in `force-core`; mixed
/// types fall back to the coercing comparisons the boolean tree would
/// perform, in its evaluation order (step sign first).
fn do_continues(var: Value, to: Value, step: Value, line: usize) -> Result<bool, FortError> {
    if let (Value::Int(k), Value::Int(last), Value::Int(incr)) = (var, to, step) {
        if incr != 0 {
            return Ok(ForceRange {
                start: k,
                last,
                incr,
            }
            .in_bounds(k));
        }
        return Ok(false);
    }
    use std::cmp::Ordering::{Greater, Less};
    let cs = num_cmp(step, Value::Int(0), line)?;
    let ck = num_cmp(var, to, line)?;
    Ok((cs == Greater && ck != Greater) || (cs == Less && ck != Less))
}

/// One VM process: the bytecode counterpart of the tree-walker's `Proc`.
pub(crate) struct VmProc<'r, 'e> {
    rt: &'r Rt<'e>,
    cp: &'r CompiledProgram,
    me: i64,
    np: i64,
    /// Shared region + per-block bases, resolved on first shared touch
    /// (preserving the Sequent's designate-at-first-use failure timing)
    /// and then cached for the process's lifetime.
    shared: Option<(Arc<SharedState>, Vec<usize>)>,
}

impl<'r, 'e> VmProc<'r, 'e> {
    pub(crate) fn new(rt: &'r Rt<'e>, cp: &'r CompiledProgram, me: i64, np: i64) -> Self {
        VmProc {
            rt,
            cp,
            me,
            np,
            shared: None,
        }
    }

    fn shared_ref(&mut self, line: usize) -> Result<&(Arc<SharedState>, Vec<usize>), FortError> {
        if self.shared.is_none() {
            let state = self.rt.shared(line)?;
            let mut bases = Vec::with_capacity(self.cp.blocks.len());
            for b in &self.cp.blocks {
                bases.push(*state.bases.get(b).ok_or_else(|| {
                    FortError::runtime(line, format!("unknown shared block {b}"))
                })?);
            }
            self.shared = Some((state, bases));
        }
        Ok(self.shared.as_ref().expect("just set"))
    }

    /// Absolute shared word offset of `(block, offset)`.
    fn shared_off(&mut self, block: u16, offset: u32, line: usize) -> Result<usize, FortError> {
        let (_, bases) = self.shared_ref(line)?;
        Ok(bases[block as usize] + offset as usize)
    }

    fn load_word(&mut self, off: usize, ty: Ty, line: usize) -> Result<Value, FortError> {
        let (state, _) = self.shared_ref(line)?;
        Ok(Value::from_bits(state.region.load_raw(off), ty))
    }

    fn store_word(&mut self, off: usize, bits: u64, line: usize) -> Result<(), FortError> {
        let (state, _) = self.shared_ref(line)?;
        state.region.store_raw(off, bits);
        Ok(())
    }

    /// Execute a unit to completion.
    pub(crate) fn exec(&mut self, unit: usize, args: Vec<ArgVal>) -> Result<Flow, FortError> {
        let u = &self.cp.units[unit];
        let mut locals = vec![Value::Int(0); u.frame_words as usize];
        for &(base, words, ty) in &u.locals_init {
            for w in 0..words {
                locals[(base + w) as usize] = Value::zero(ty);
            }
        }
        let mut stack: Vec<Value> = Vec::with_capacity(16);
        let mut argstack: Vec<ArgVal> = Vec::new();
        let mut places: Vec<(usize, Ty)> = Vec::new();
        let mut parts: Vec<String> = Vec::new();
        let code = &u.code;
        let mut pc = 0usize;
        macro_rules! pop {
            () => {
                stack.pop().expect("value stack underflow")
            };
        }
        while pc < code.len() {
            let line = u.lines[pc] as usize;
            match &code[pc] {
                Instr::Jump(t) => {
                    pc = *t as usize;
                    continue;
                }
                Instr::JumpIfFalse(t) => {
                    if !pop!().as_log(line)? {
                        pc = *t as usize;
                        continue;
                    }
                }
                Instr::DoCheck(t) => {
                    let to = pop!();
                    let var = pop!();
                    let step = pop!();
                    if !do_continues(var, to, step, line)? {
                        pc = *t as usize;
                        continue;
                    }
                }
                Instr::ConstInt(n) => stack.push(Value::Int(*n)),
                Instr::ConstReal(x) => stack.push(Value::Real(*x)),
                Instr::ConstLog(b) => stack.push(Value::Log(*b)),
                Instr::LoadMe => stack.push(Value::Int(self.me)),
                Instr::LoadNp => stack.push(Value::Int(self.np)),
                Instr::LoadLocal(slot) => stack.push(locals[*slot as usize]),
                Instr::LoadShared { block, offset, ty } => {
                    let off = self.shared_off(*block, *offset, line)?;
                    let v = self.load_word(off, *ty, line)?;
                    stack.push(v);
                }
                Instr::LoadArgScalar { arg, name } => match &args[*arg as usize] {
                    ArgVal::Value(v) => stack.push(*v),
                    ArgVal::Shared { offset, ty, dims } => {
                        if !dims.is_empty() {
                            return Err(FortError::runtime(
                                line,
                                format!(
                                    "array argument {} used without subscripts",
                                    self.cp.names[*name as usize]
                                ),
                            ));
                        }
                        let (offset, ty) = (*offset, *ty);
                        let v = self.load_word(offset, ty, line)?;
                        stack.push(v);
                    }
                    ArgVal::Unit(u) => {
                        return Err(FortError::runtime(
                            line,
                            format!("unit name {u} used as a value"),
                        ))
                    }
                },
                Instr::StoreLocal { base, ty } => {
                    locals[*base as usize] = pop!().convert_to(*ty, line)?;
                }
                Instr::StoreShared { block, offset, ty } => {
                    let v = pop!().convert_to(*ty, line)?;
                    let off = self.shared_off(*block, *offset, line)?;
                    self.store_word(off, v.to_bits(), line)?;
                }
                Instr::StoreArgScalar {
                    arg,
                    name,
                    declared,
                } => {
                    let value = pop!();
                    // Error parity: the tree-walker converts to the
                    // callee-declared type before dispatching on the
                    // binding (the result is then recomputed from the
                    // binding's own type).
                    value.convert_to(*declared, line)?;
                    let n = || self.cp.names[*name as usize].clone();
                    match &args[*arg as usize] {
                        ArgVal::Shared { offset, ty, dims } => {
                            if !dims.is_empty() {
                                return Err(FortError::runtime(
                                    line,
                                    format!("array argument {} assigned without subscripts", n()),
                                ));
                            }
                            let v = value.convert_to(*ty, line)?;
                            let offset = *offset;
                            self.store_word(offset, v.to_bits(), line)?;
                        }
                        ArgVal::Value(_) => {
                            return Err(FortError::runtime(
                                line,
                                format!("argument {} was passed by value and is read-only", n()),
                            ))
                        }
                        ArgVal::Unit(_) => {
                            return Err(FortError::runtime(
                                line,
                                format!("cannot assign to unit name {}", n()),
                            ))
                        }
                    }
                }
                Instr::Convert(ty) => {
                    let v = pop!().convert_to(*ty, line)?;
                    stack.push(v);
                }
                Instr::IdxCheck {
                    k,
                    dim,
                    stride,
                    name,
                } => {
                    let i = pop!().as_int(line)?;
                    let acc = pop!().as_int(line)?;
                    if i < 1 || i as u64 > *dim as u64 {
                        return Err(FortError::runtime(
                            line,
                            format!(
                                "subscript {} of {} is {i}, outside 1..{dim}",
                                *k as usize + 1,
                                self.cp.names[*name as usize]
                            ),
                        ));
                    }
                    stack.push(Value::Int(acc + (i - 1) * *stride as i64));
                }
                Instr::IdxCheckArg { arg, k, name } => {
                    let i = pop!().as_int(line)?;
                    let acc = pop!().as_int(line)?;
                    let dims = match &args[*arg as usize] {
                        ArgVal::Shared { dims, .. } => dims,
                        _ => unreachable!("checked by ArgElemCheck"),
                    };
                    let d = dims[*k as usize];
                    if i < 1 || i as usize > d {
                        return Err(FortError::runtime(
                            line,
                            format!(
                                "subscript {} of {} is {i}, outside 1..{d}",
                                *k as usize + 1,
                                self.cp.names[*name as usize]
                            ),
                        ));
                    }
                    let stride: usize = dims[..*k as usize].iter().product();
                    stack.push(Value::Int(acc + (i - 1) * stride as i64));
                }
                Instr::ArgElemCheck { arg, nidx, name } => {
                    let n = || self.cp.names[*name as usize].clone();
                    match &args[*arg as usize] {
                        ArgVal::Shared { dims, .. } => {
                            if dims.is_empty() {
                                return Err(FortError::runtime(
                                    line,
                                    format!("scalar argument {} was subscripted", n()),
                                ));
                            }
                            if *nidx as usize != dims.len() {
                                return Err(FortError::runtime(
                                    line,
                                    format!(
                                        "{} has {} dimension(s) but {} subscript(s) given",
                                        n(),
                                        dims.len(),
                                        nidx
                                    ),
                                ));
                            }
                        }
                        _ => {
                            return Err(FortError::runtime(
                                line,
                                format!("argument {} is not an array reference", n()),
                            ))
                        }
                    }
                    stack.push(Value::Int(0));
                }
                Instr::LoadElemLocal { base } => {
                    let acc = pop!().as_int(line)? as usize;
                    stack.push(locals[*base as usize + acc]);
                }
                Instr::StoreElemLocal { base, ty } => {
                    let acc = pop!().as_int(line)? as usize;
                    let v = pop!().convert_to(*ty, line)?;
                    locals[*base as usize + acc] = v;
                }
                Instr::LoadElemShared { block, offset, ty } => {
                    let acc = pop!().as_int(line)? as usize;
                    let off = self.shared_off(*block, *offset, line)? + acc;
                    let v = self.load_word(off, *ty, line)?;
                    stack.push(v);
                }
                Instr::StoreElemShared { block, offset, ty } => {
                    let acc = pop!().as_int(line)? as usize;
                    let v = pop!().convert_to(*ty, line)?;
                    let off = self.shared_off(*block, *offset, line)? + acc;
                    self.store_word(off, v.to_bits(), line)?;
                }
                Instr::LoadElemArg { arg } => {
                    let acc = pop!().as_int(line)? as usize;
                    let (offset, ty) = match &args[*arg as usize] {
                        ArgVal::Shared { offset, ty, .. } => (*offset, *ty),
                        _ => unreachable!("checked by ArgElemCheck"),
                    };
                    let v = self.load_word(offset + acc, ty, line)?;
                    stack.push(v);
                }
                Instr::StoreElemArg { arg } => {
                    let acc = pop!().as_int(line)? as usize;
                    let v = pop!();
                    let (offset, ty) = match &args[*arg as usize] {
                        ArgVal::Shared { offset, ty, .. } => (*offset, *ty),
                        _ => unreachable!("checked by ArgElemCheck"),
                    };
                    let v = v.convert_to(ty, line)?;
                    self.store_word(offset + acc, v.to_bits(), line)?;
                }
                Instr::Neg => {
                    let v = match pop!() {
                        Value::Int(n) => Value::Int(-n),
                        Value::Real(x) => Value::Real(-x),
                        Value::Log(_) => {
                            return Err(FortError::runtime(line, "cannot negate a LOGICAL"))
                        }
                    };
                    stack.push(v);
                }
                Instr::Not => {
                    let b = pop!().as_log(line)?;
                    stack.push(Value::Log(!b));
                }
                Instr::Bin(op) => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(eval_binop(*op, a, b, line)?);
                }
                Instr::CallFn { name, argc } => {
                    let split = stack.len() - *argc as usize;
                    let vals: Vec<Value> = stack.split_off(split);
                    let v = intrinsics::eval_function(
                        &self.cp.names[*name as usize],
                        &vals,
                        line,
                        self.me,
                        self.np,
                    )?;
                    stack.push(v);
                }
                Instr::PrintStr(s) => parts.push(self.cp.names[*s as usize].clone()),
                Instr::PrintVal => {
                    let v = pop!();
                    parts.push(v.display());
                }
                Instr::PrintFlush => {
                    self.rt
                        .prints
                        .lock()
                        .push(std::mem::take(&mut parts).join(" "));
                }
                Instr::Return => return Ok(Flow::Normal),
                Instr::Stop => return Ok(Flow::Stop),
                Instr::Fail(msg) => {
                    return Err(FortError::runtime(
                        line,
                        self.cp.names[*msg as usize].clone(),
                    ))
                }

                Instr::ArgShared {
                    block,
                    offset,
                    ty,
                    dims,
                } => {
                    let off = self.shared_off(*block, *offset, line)?;
                    argstack.push(ArgVal::Shared {
                        offset: off,
                        ty: *ty,
                        dims: self.cp.dims_tables[*dims as usize].clone(),
                    });
                }
                Instr::ArgSharedElem { block, offset, ty } => {
                    let acc = pop!().as_int(line)? as usize;
                    let off = self.shared_off(*block, *offset, line)? + acc;
                    argstack.push(ArgVal::Shared {
                        offset: off,
                        ty: *ty,
                        dims: Vec::new(),
                    });
                }
                Instr::ArgArgElem { arg } => {
                    let acc = pop!().as_int(line)? as usize;
                    let (offset, ty) = match &args[*arg as usize] {
                        ArgVal::Shared { offset, ty, .. } => (*offset, *ty),
                        _ => unreachable!("checked by ArgElemCheck"),
                    };
                    argstack.push(ArgVal::Shared {
                        offset: offset + acc,
                        ty,
                        dims: Vec::new(),
                    });
                }
                Instr::ArgValue => {
                    let v = pop!();
                    argstack.push(ArgVal::Value(v));
                }
                Instr::ArgForward(i) => argstack.push(args[*i as usize].clone()),
                Instr::ArgUnit(n) => {
                    argstack.push(ArgVal::Unit(self.cp.names[*n as usize].clone()))
                }
                Instr::CallUser { unit, argc } => {
                    let split = argstack.len() - *argc as usize;
                    let bound: Vec<ArgVal> = argstack.split_off(split);
                    let callee = &self.cp.units[*unit as usize];
                    if callee.params as usize != bound.len() {
                        return Err(FortError::runtime(
                            line,
                            format!(
                                "{} expects {} argument(s), got {}",
                                callee.name,
                                callee.params,
                                bound.len()
                            ),
                        ));
                    }
                    match self.exec(*unit as usize, bound)? {
                        Flow::Stop => return Ok(Flow::Stop),
                        Flow::Normal => {}
                    }
                }

                Instr::SvcPlace { name, argn } => match argstack.pop().expect("service binding") {
                    ArgVal::Shared { offset, ty, .. } => places.push((offset, ty)),
                    _ => {
                        return Err(FortError::runtime(
                            line,
                            format!(
                                "{} argument {} must be a shared variable",
                                self.cp.names[*name as usize],
                                *argn as usize + 1
                            ),
                        ))
                    }
                },
                Instr::SvcVendorCheck(kind) => {
                    check_vendor_locks(self.rt.engine.machine(), *kind, line)?;
                }
                Instr::SvcLock { is_lock, var_name } => {
                    let (offset, _) = places.pop().expect("service place");
                    let name = var_name.map(|i| self.cp.names[i as usize].as_str());
                    lock_service(self.rt, offset, *is_lock, name, line)?;
                }
                Instr::SvcInitLock {
                    keep_locked,
                    user_pool,
                } => {
                    let (offset, _) = places.pop().expect("service place");
                    init_lock_service(self.rt, offset, *keep_locked, *user_pool);
                }
                Instr::SvcAini => {
                    let (f, _) = places.pop().expect("service place");
                    let (e, _) = places.pop().expect("service place");
                    aini_service(self.rt, e, f);
                }
                Instr::SvcVoidl => {
                    let (f, _) = places.pop().expect("service place");
                    let (e, _) = places.pop().expect("service place");
                    voidl_service(self.rt, e, f, line)?;
                }
                Instr::SvcHwCheck => {
                    check_hardware_fe(self.rt.engine.machine(), line)?;
                }
                Instr::SvcHepProduce => {
                    let value = pop!();
                    let (offset, ty) = places.pop().expect("service place");
                    let tag = self.rt.tag_handle(offset);
                    self.shared_ref(line)?;
                    let (state, _) = self.shared.as_ref().expect("just resolved");
                    let _c = fault::enter(hep_construct("ZZHPRD"));
                    let v = value.convert_to(ty, line)?;
                    hep_produce(state, &tag, offset, v.to_bits());
                }
                Instr::SvcHepConsume | Instr::SvcHepCopy => {
                    let copy = matches!(&code[pc], Instr::SvcHepCopy);
                    let (offset, ty) = places.pop().expect("service place");
                    let tag = self.rt.tag_handle(offset);
                    self.shared_ref(line)?;
                    let (state, _) = self.shared.as_ref().expect("just resolved");
                    let _c = fault::enter(hep_construct(if copy { "ZZHCPY" } else { "ZZHCON" }));
                    let v = if copy {
                        hep_copy(state, &tag, offset, ty)
                    } else {
                        hep_consume(state, &tag, offset, ty)
                    };
                    stack.push(v);
                }
                Instr::SvcHepVoid => {
                    let (offset, _) = places.pop().expect("service place");
                    let tag = self.rt.tag_handle(offset);
                    self.shared_ref(line)?;
                    let _c = fault::enter(hep_construct("ZZHVD"));
                    tag.void();
                }
                Instr::SvcStrt0 => strt0_service(self.rt, line)?,
                Instr::SvcLink => link_service(self.rt, line)?,
                Instr::SvcShpg => shpg_service(self.rt, line)?,
                Instr::SvcForkCheck(n) => {
                    check_fork_mnemonic(
                        self.rt.engine.machine(),
                        &self.cp.names[*n as usize],
                        line,
                    )?;
                }
                Instr::Fork { unit } => {
                    let np = self.rt.nproc;
                    let rt = self.rt;
                    let cp = self.cp;
                    let target = *unit as usize;
                    spawn_force(rt, line, &|pid| {
                        let mut p = VmProc::new(rt, cp, pid as i64, np as i64);
                        p.exec(target, Vec::new()).map(|_| ())
                    })?;
                }
                Instr::SvcIsFullCheck(n) => {
                    check_isfull_machine(
                        self.rt.engine.machine(),
                        &self.cp.names[*n as usize],
                        line,
                    )?;
                }
                Instr::IsFullValue(n) => {
                    let (offset, _) = places.pop().expect("service place");
                    let v = isfull_value(self.rt, &self.cp.names[*n as usize], offset, line)?;
                    stack.push(v);
                }
            }
            pc += 1;
        }
        Ok(Flow::Normal)
    }
}
