//! Shared workloads and measurement helpers for the Force benchmarks and
//! the `reproduce` harness (see EXPERIMENTS.md at the repository root).

pub mod workloads;

use std::time::{Duration, Instant};

/// Median wall time of `runs` invocations of `f` (plus one discarded
/// warmup run).  Small and deterministic — suited to the harness tables;
/// the Criterion benches do the rigorous statistics.
pub fn median_time(runs: usize, mut f: impl FnMut()) -> Duration {
    assert!(runs >= 1);
    f(); // warmup
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Duration formatted adaptively.
pub fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_time_is_positive() {
        let d = median_time(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn fmt_dur_ranges() {
        assert!(fmt_dur(Duration::from_nanos(50)).contains("ns"));
        assert!(fmt_dur(Duration::from_micros(50)).contains("us"));
        assert!(fmt_dur(Duration::from_millis(50)).contains("ms"));
        assert!(fmt_dur(Duration::from_secs(50)).contains("s"));
    }
}
