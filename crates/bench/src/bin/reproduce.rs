//! The reproduction harness: one table per experiment in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p force-bench --bin reproduce            # all
//! cargo run --release -p force-bench --bin reproduce -- exp3   # one
//! ```
//!
//! Wall-clock numbers depend on the host (and are nearly flat on a
//! single-core machine); the *shapes* described in EXPERIMENTS.md are the
//! reproduction targets.  Simulated-cycle and operation-count columns are
//! host-independent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use force_bench::workloads::{
    askfor_split, busy_work, matmul_checksum, run_doall, static_split, triangular_cost,
    uniform_cost, Schedule,
};
use force_bench::{fmt_dur, median_time};
use force_core::barrier_algs::all_algorithms;
use force_core::prelude::*;
use force_machdep::{spawn_force, LockHandle, LockState, OpStats};
use the_force::{compile_force_source, run_force_source};

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let run = |name: &str| which.is_empty() || which.iter().any(|w| w == name || w == "all");
    println!("The Force (ICPP 1989) — reproduction harness");
    println!("host parallelism: {} core(s)\n", host_cores());
    if run("exp1") {
        exp1();
    }
    if run("exp2") {
        exp2();
    }
    if run("exp3") {
        exp3();
    }
    if run("exp4") {
        exp4();
    }
    if run("exp5") {
        exp5();
    }
    if run("exp6") {
        exp6();
    }
    if run("exp7") {
        exp7();
    }
    if run("exp8") {
        exp8();
    }
    if run("exp9") {
        exp9();
    }
    if run("exp10") {
        exp10();
    }
    if run("exp11") {
        exp11();
    }
    if run("exp12") {
        exp12();
    }
    if run("exp13") {
        exp13();
    }
    if run("exp14") {
        exp14();
    }
    if run("exp15") {
        exp15();
    }
    if run("exp16") {
        exp16();
    }
    if run("exp17") {
        exp17();
    }
    if run("exp18") {
        exp18();
    }
}

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn header(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

// ---------------------------------------------------------------- EXP-1

fn exp1() {
    header(
        "EXP-1",
        "the §4.2 Selfsched DO macro expansion (golden listing)",
    );
    let src = "\
      Force FMAIN of NP ident ME
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = START, LAST, INCR
C LOOPBODY
100   End Selfsched DO
      Join
";
    let p = the_force::prep::preprocess(src, MachineId::EncoreMultimax).expect("preprocess");
    let start = p.intermediate.find("C loop entry code").unwrap();
    let end = p.intermediate[start..]
        .find("      RETURN")
        .map(|e| start + e)
        .unwrap_or(p.intermediate.len());
    println!("{}", &p.intermediate[start..end]);
    println!("(machine-independent intermediate form; level 2 then maps");
    println!(" lock/unlock onto each machine's vendor primitive)");
}

// ---------------------------------------------------------------- EXP-2

fn exp2() {
    header("EXP-2", "six-machine portability matrix");
    let programs: &[(&str, &str, i64)] = &[
        (
            "selfsched-sum",
            "\
      Force FMAIN of NP ident ME
      Shared INTEGER R
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 1, 100
      Critical L
      R = R + K
      End critical
100   End selfsched DO
      Join
",
            5050,
        ),
        (
            "barrier-pcase",
            "\
      Force FMAIN of NP ident ME
      Shared INTEGER R
      End declarations
      Barrier
      R = 1
      End barrier
      Pcase
      Usect
      R = R + 10
      Usect
      R = R + 100
      End pcase
      Join
",
            111,
        ),
        (
            "produce-consume",
            "\
      Force FMAIN of NP ident ME
      Shared INTEGER R
      Async INTEGER CH
      Private INTEGER T
      End declarations
      IF (ME .EQ. 0) THEN
      Produce CH = 42
      END IF
      IF (ME .EQ. NP - 1) THEN
      Consume CH into T
      R = T
      END IF
      Join
",
            42,
        ),
    ];
    println!(
        "{:<18} {:<16} {:>8} {:>8} {:>9} {:>10} {:>12}",
        "machine", "program", "result", "locks", "syscalls", "full/empty", "sim cycles"
    );
    for id in MachineId::all() {
        for (name, src, expected) in programs {
            let out = run_force_source(src, id, 4).expect("run");
            let got = out.shared_scalar("R").unwrap().as_int(0).unwrap();
            let verdict = if got == *expected { "PASS" } else { "FAIL" };
            println!(
                "{:<18} {:<16} {:>8} {:>8} {:>9} {:>10} {:>12}",
                id.name(),
                name,
                verdict,
                out.stats.lock_acquires,
                out.stats.syscalls,
                out.stats.fe_produces + out.stats.fe_consumes,
                out.cycles
            );
            assert_eq!(got, *expected, "{} {name}", id.name());
        }
    }
    println!("\nport differences (driver excerpts):");
    let src = programs[0].1;
    for id in MachineId::all() {
        let (exp, _) = compile_force_source(src, id).unwrap();
        let lock_line = exp
            .code
            .lines()
            .find(|l| l.contains("CALL ZZ") && l.contains("(BARWIN)") && !l.contains("INIT"))
            .unwrap_or("")
            .trim()
            .to_string();
        let spawn_line = exp
            .code
            .lines()
            .find(|l| l.contains("CALL ZZF") || l.contains("CALL ZZS"))
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        println!("  {:<18} {:<26} {}", id.name(), lock_line, spawn_line);
    }
}

// ---------------------------------------------------------------- EXP-3

fn exp3() {
    header(
        "EXP-3",
        "barrier algorithms ([AJ87] companion), ns per episode",
    );
    let episodes = 500u64;
    print!("{:<34}", "algorithm \\ nproc");
    let nprocs = [1usize, 2, 4, 8];
    for n in nprocs {
        print!("{n:>12}");
    }
    println!();
    let machine = Machine::new(MachineId::EncoreMultimax);
    for alg_idx in 0..6 {
        let mut row = String::new();
        let mut name = String::new();
        for n in nprocs {
            let algs = all_algorithms(&machine, n);
            let alg = &algs[alg_idx];
            name = alg.name().to_string();
            let t = median_time(3, || {
                spawn_force(n, machine.stats(), |pid| {
                    for _ in 0..episodes {
                        alg.wait(pid);
                    }
                });
            });
            row.push_str(&format!("{:>12}", t.as_nanos() as u64 / episodes));
        }
        println!("{name:<34}{row}");
    }
    println!("(expected shape: log-depth barriers flatten with nproc;");
    println!(" counter/two-lock grow roughly linearly under contention)");
}

// ---------------------------------------------------------------- EXP-4

fn exp4() {
    header(
        "EXP-4",
        "presched vs selfsched DOALL, uniform vs triangular load",
    );
    let n = 2_000i64;
    let nproc = 4;
    let force = Force::new(nproc);
    println!("{:<24} {:>14} {:>14}", "schedule", "uniform", "triangular");
    for sched in [
        Schedule::Presched,
        Schedule::PreschedBlock,
        Schedule::SelfSched,
        Schedule::SelfSchedChunk(16),
    ] {
        let tu = median_time(3, || {
            run_doall(&force, n, uniform_cost, 16, sched);
        });
        let tt = median_time(3, || {
            run_doall(&force, n, triangular_cost, 16, sched);
        });
        println!(
            "{:<24} {:>14} {:>14}",
            sched.name(),
            fmt_dur(tu),
            fmt_dur(tt)
        );
    }
    println!("(expected shape: presched wins slightly on cheap uniform bodies");
    println!(" — no index service — while selfsched wins under skew;");
    println!(" block presched is worst under triangular skew)");
}

// ---------------------------------------------------------------- EXP-5

fn exp5() {
    header(
        "EXP-5",
        "lock taxonomy (§4.1.3): spin vs syscall vs combined",
    );
    let nthreads = 4;
    let acquisitions = 500u64;
    println!(
        "{:<12} {:>14} {:>14} {:>14}   (4 threads x {} acquisitions)",
        "lock", "hold=0", "hold=64", "hold=1024", acquisitions
    );
    let stats = Arc::new(OpStats::new());
    for kind in ["spin", "syscall", "combined", "fullempty"] {
        let mut cols = Vec::new();
        for hold in [0u64, 64, 1024] {
            let lock: LockHandle = match kind {
                "spin" => Arc::new(force_machdep::spin::SpinLock::new(
                    LockState::Unlocked,
                    Arc::clone(&stats),
                )),
                "syscall" => Arc::new(force_machdep::syscall_lock::SyscallLock::new(
                    LockState::Unlocked,
                    Arc::clone(&stats),
                )),
                "combined" => Arc::new(force_machdep::combined::CombinedLock::new(
                    LockState::Unlocked,
                    Arc::clone(&stats),
                )),
                _ => Arc::new(force_machdep::fullempty::HepLock::new(
                    LockState::Unlocked,
                    Arc::clone(&stats),
                )),
            };
            let t = median_time(3, || {
                std::thread::scope(|s| {
                    for _ in 0..nthreads {
                        let lock = Arc::clone(&lock);
                        s.spawn(move || {
                            for _ in 0..acquisitions {
                                lock.lock();
                                busy_work(hold);
                                lock.unlock();
                            }
                        });
                    }
                });
            });
            cols.push(fmt_dur(t));
        }
        println!(
            "{:<12} {:>14} {:>14} {:>14}",
            kind, cols[0], cols[1], cols[2]
        );
    }
    println!("(expected shape: spin cheapest for short holds, syscall locks");
    println!(" amortize for long holds, combined tracks the better of the two)");
}

// ---------------------------------------------------------------- EXP-6

fn exp6() {
    header("EXP-6", "Produce/Consume: hardware full/empty vs two locks");
    let transfers = 5_000u64;
    println!(
        "{:<18} {:<26} {:>14} {:>16}",
        "machine", "mechanism", "time", "lock ops/transfer"
    );
    for id in [
        MachineId::Hep,
        MachineId::EncoreMultimax,
        MachineId::Flex32,
        MachineId::Cray2,
    ] {
        let machine = Machine::new(id);
        let before = machine.stats().snapshot();
        let t = median_time(3, || {
            let chan: Async<u64> = Async::new(&machine);
            std::thread::scope(|s| {
                s.spawn(|| {
                    for i in 0..transfers {
                        chan.produce(i);
                    }
                });
                s.spawn(|| {
                    for _ in 0..transfers {
                        std::hint::black_box(chan.consume());
                    }
                });
            });
        });
        let after = machine.stats().snapshot().since(&before);
        let mech = if machine.spec().hardware_fullempty {
            "hardware full/empty"
        } else {
            "two-lock emulation (§4.2)"
        };
        let ops =
            (after.lock_acquires + after.lock_releases + after.fe_produces + after.fe_consumes)
                as f64
                / (4.0 * transfers as f64); // 4 timed runs incl warmup
        println!(
            "{:<18} {:<26} {:>14} {:>16.2}",
            id.name(),
            mech,
            fmt_dur(t),
            ops
        );
    }
    println!("(expected shape: 1 produce + 1 consume = 2 hardware ops on the");
    println!(" HEP vs 2 lock + 2 unlock operations on every other machine)");
}

// ---------------------------------------------------------------- EXP-7

fn exp7() {
    header("EXP-7", "speedup and nproc-independence (matmul 64x64)");
    let n = 64;
    let machine = Machine::new(MachineId::AlliantFx8);
    let base = matmul_checksum(n, 1, Arc::clone(&machine));
    println!(
        "{:<8} {:>14} {:>10} {:>10}",
        "nproc", "time", "speedup", "result"
    );
    let t1 = median_time(3, || {
        matmul_checksum(n, 1, Arc::clone(&machine));
    });
    for nproc in [1usize, 2, 4, 8] {
        let mut ok = true;
        let t = median_time(3, || {
            ok &= matmul_checksum(n, nproc, Arc::clone(&machine)) == base;
        });
        println!(
            "{:<8} {:>14} {:>10.2} {:>10}",
            nproc,
            fmt_dur(t),
            t1.as_secs_f64() / t.as_secs_f64(),
            if ok { "exact" } else { "DIFFERS" }
        );
    }
    println!(
        "(expected shape: near-linear speedup on a multi-core host — this host has {} core(s) —",
        host_cores()
    );
    println!(" and an identical checksum at every force size, unconditionally)");
}

// ---------------------------------------------------------------- EXP-8

fn exp8() {
    header(
        "EXP-8",
        "Askfor vs static distribution on a run-time work tree",
    );
    let force = Force::new(4);
    println!("{:<10} {:>14} {:>14}", "tree size", "askfor", "static");
    for seed in [128u64, 1024] {
        let ta = median_time(3, || {
            assert_eq!(askfor_split(&force, seed, 64), seed);
        });
        let ts = median_time(3, || {
            assert_eq!(static_split(&force, seed, 64), seed);
        });
        println!("{:<10} {:>14} {:>14}", seed, fmt_dur(ta), fmt_dur(ts));
    }
    println!("(static needs the tree size in advance — available here only");
    println!(" because the workload is synthetic; Askfor discovers it at run");
    println!(" time for the same order of cost)");
}

// ---------------------------------------------------------------- EXP-9

fn exp9() {
    header("EXP-9", "Pcase presched vs selfsched, skewed section costs");
    let force = Force::new(4);
    let uniform: Vec<u64> = vec![500; 12];
    let mut skewed: Vec<u64> = vec![100; 12];
    skewed[0] = 5_000;
    println!("{:<12} {:>14} {:>14}", "pcase", "uniform", "skewed");
    for (name, selfsched) in [("presched", false), ("selfsched", true)] {
        let mut cols = Vec::new();
        for costs in [&uniform, &skewed] {
            let t = median_time(3, || {
                force.run(|p| {
                    let mut pc = p.pcase();
                    for &cost in costs.iter() {
                        pc = pc.sect(move || {
                            busy_work(cost);
                        });
                    }
                    if selfsched {
                        pc.selfsched();
                    } else {
                        pc.presched();
                    }
                });
            });
            cols.push(fmt_dur(t));
        }
        println!("{:<12} {:>14} {:>14}", name, cols[0], cols[1]);
    }
    println!("(expected shape: equal on uniform sections; selfsched wins when");
    println!(" one section dominates, because the owner of the big section");
    println!(" is not also forced to take a fixed share of the rest)");
}

// ---------------------------------------------------------------- EXP-10

fn exp10() {
    header(
        "EXP-10",
        "Encore page padding (§4.1.2): false-sharing ablation",
    );
    use force_machdep::CachePadded;
    let nthreads = 4;
    let increments = 200_000u64;
    let unpadded: Vec<AtomicU64> = (0..nthreads).map(|_| AtomicU64::new(0)).collect();
    let tu = median_time(3, || {
        std::thread::scope(|s| {
            for c in unpadded.iter() {
                s.spawn(move || {
                    for _ in 0..increments {
                        c.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
    });
    let padded: Vec<CachePadded<AtomicU64>> = (0..nthreads)
        .map(|_| CachePadded::new(AtomicU64::new(0)))
        .collect();
    let tp = median_time(3, || {
        std::thread::scope(|s| {
            for c in padded.iter() {
                s.spawn(move || {
                    for _ in 0..increments {
                        c.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
    });
    println!("{:<24} {:>14}", "layout", "time");
    println!("{:<24} {:>14}", "adjacent words", fmt_dur(tu));
    println!("{:<24} {:>14}", "padded (Force layout)", fmt_dur(tp));
    // And the layout arithmetic itself, per machine:
    println!("\nper-machine layout of 3 shared blocks of 5 words each:");
    for id in MachineId::all() {
        let m = Machine::new(id);
        let blocks = vec![
            force_machdep::BlockRequest::new("A", 5),
            force_machdep::BlockRequest::new("B", 5),
            force_machdep::BlockRequest::new("C", 5),
        ];
        let l = m.sharing_model().layout(&blocks);
        match l {
            Ok(l) => println!(
                "  {:<18} total {:>5} words, padding {:>5} words",
                id.name(),
                l.total_words,
                l.padding_words
            ),
            Err(e) => println!("  {:<18} ({e})", id.name()),
        }
    }
    println!("(expected shape: padding removes false sharing on multi-core");
    println!(" hosts; Encore pads front+back, Alliant aligns every block,");
    println!(" Sequent refuses layout before its link pass)");
}

// ---------------------------------------------------------------- EXP-11

fn exp11() {
    header(
        "EXP-11",
        "scarce locks (Cray-2): K logical locks on an 8-slot pool",
    );
    use force_machdep::lockpool::{LockFactory, LockPool};
    let nthreads = 4;
    let rounds = 1_000u64;
    let capacity = 8;
    println!(
        "{:<12} {:>10} {:>14} {:>12}",
        "K logical", "aliased", "time", "contended"
    );
    for logical in [8usize, 16, 32, 64] {
        let stats = Arc::new(OpStats::new());
        let st = Arc::clone(&stats);
        let factory: LockFactory = Arc::new(move |init| {
            Arc::new(force_machdep::syscall_lock::SyscallLock::new(
                init,
                Arc::clone(&st),
            )) as LockHandle
        });
        let pool = LockPool::new(capacity, factory, Arc::clone(&stats));
        let locks: Vec<LockHandle> = (0..logical)
            .map(|_| pool.allocate(LockState::Unlocked))
            .collect();
        let before = stats.snapshot();
        let t = median_time(3, || {
            std::thread::scope(|s| {
                for t in 0..nthreads {
                    let locks = &locks;
                    s.spawn(move || {
                        for r in 0..rounds {
                            let l = &locks[(t + r as usize * nthreads) % logical];
                            l.lock();
                            std::hint::black_box(r);
                            l.unlock();
                        }
                    });
                }
            });
        });
        let after = stats.snapshot().since(&before);
        println!(
            "{:<12} {:>10} {:>14} {:>12}",
            logical,
            before.locks_aliased,
            fmt_dur(t),
            after.lock_contended
        );
    }
    println!("(expected shape: once K exceeds the pool, logically disjoint");
    println!(" locks contend — \"some parallel programs may not execute as");
    println!(" efficiently as others if a large number of asynchronous");
    println!(" variables are needed\")");
}

// ---------------------------------------------------------------- EXP-12

fn exp12() {
    header(
        "EXP-12",
        "Resolve (the paper's future-work construct), ablation",
    );
    let nproc = 4;
    let rounds = 300usize;
    // Partitioned: one I/O-ish process, three compute processes with a
    // component-local barrier per round.
    let machine = Machine::new(MachineId::Flex32);
    let force = Force::with_machine(nproc, Arc::clone(&machine));
    let before = machine.stats().snapshot();
    let tr = median_time(3, || {
        force.run(|p| {
            p.resolve(&[1, 3], |c| {
                if c.index() == 1 {
                    for _ in 0..rounds {
                        busy_work(32);
                        c.barrier();
                    }
                } else {
                    busy_work(32 * rounds as u64);
                }
            });
        });
    });
    let mid = machine.stats().snapshot();
    // Whole force: everyone meets at the full barrier each round.
    let tw = median_time(3, || {
        force.run(|p| {
            for _ in 0..rounds {
                busy_work(32);
                p.barrier();
            }
        });
    });
    let after = machine.stats().snapshot();
    let resolve_eps = mid.since(&before).barrier_episodes;
    let whole_eps = after.since(&mid).barrier_episodes;
    println!(
        "{:<28} {:>14} {:>20}",
        "structure", "time", "barrier episodes"
    );
    println!(
        "{:<28} {:>14} {:>20}",
        "resolve [1,3] (local bar.)",
        fmt_dur(tr),
        resolve_eps
    );
    println!(
        "{:<28} {:>14} {:>20}",
        "whole force (full barrier)",
        fmt_dur(tw),
        whole_eps
    );
    println!("(expected shape: the component barrier synchronizes 3 processes");
    println!(" instead of 4 and never blocks on the unrelated component)");
}

// ---------------------------------------------------------------- EXP-13

fn exp13() {
    header(
        "EXP-13",
        "fault containment: cancellation, watchdog, injection",
    );
    use std::time::{Duration, Instant};
    // The deliberate panics below are the experiment; keep the default
    // hook from spraying backtraces over the table.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    println!(
        "{:<18} {:<22} {:<10} {:>10}   {:>8} {:>8} {:>8} {:>8}",
        "machine", "scenario", "construct", "contained", "inj", "det", "cancel", "wdog"
    );
    for id in MachineId::all() {
        let machine = Machine::new(id);
        let row = |scenario: &str, fault: Option<(ProcessFault, Duration)>| {
            let s = machine.stats().snapshot();
            match fault {
                Some((f, dt)) => println!(
                    "{:<18} {:<22} {:<10} {:>10}   {:>8} {:>8} {:>8} {:>8}",
                    id.name(),
                    scenario,
                    f.construct,
                    fmt_dur(dt),
                    s.faults_injected,
                    s.faults_detected,
                    s.cancellations_observed,
                    s.watchdog_trips
                ),
                None => println!(
                    "{:<18} {:<22} {:<10} {:>10}   {:>8} {:>8} {:>8} {:>8}",
                    id.name(),
                    scenario,
                    "-",
                    "no fault",
                    s.faults_injected,
                    s.faults_detected,
                    s.cancellations_observed,
                    s.watchdog_trips
                ),
            }
        };

        // 1. A panic while peers park at a barrier: cancellation must
        //    unblock them well inside the watchdog bound.
        let force =
            Force::with_machine(4, Arc::clone(&machine)).with_watchdog(Duration::from_secs(5));
        let t0 = Instant::now();
        let f = force
            .try_run(|p| {
                if p.pid() == 0 {
                    panic!("exp13: deliberate panic");
                }
                p.barrier();
            })
            .expect_err("must fault");
        row("panic at barrier", Some((f, t0.elapsed())));

        // 2. A true deadlock (consume, no producer): only the watchdog
        //    can report this one.
        let force =
            Force::with_machine(2, Arc::clone(&machine)).with_watchdog(Duration::from_millis(100));
        let chan: Async<i64> = Async::new(&machine);
        let t0 = Instant::now();
        let f = force
            .try_run(|_p| {
                let _ = chan.consume();
            })
            .expect_err("must trip");
        row("consume, no producer", Some((f, t0.elapsed())));

        // 3. Deterministic injection at construct boundaries.
        let force =
            Force::with_machine(4, Arc::clone(&machine)).with_fault_injection(FaultInjection {
                seed: 0xF0CE,
                panic_per_mille: 250,
                delay_per_mille: 0,
                spurious_per_mille: 250,
            });
        let t0 = Instant::now();
        let f = force.try_run(|p| {
            for _ in 0..8 {
                p.barrier();
            }
        });
        row("injected faults", f.err().map(|f| (f, t0.elapsed())));
    }
    std::panic::set_hook(prev_hook);
    println!("(expected shape: every fault is contained — a structured error,");
    println!(" never a hang; counters are cumulative per machine instance:");
    println!(" inj=faults injected, det=faults detected, cancel=cancellations");
    println!(" observed by parked peers, wdog=watchdog trips)");
}

// ---------------------------------------------------------------- EXP-14

fn exp14() {
    header(
        "EXP-14",
        "resident pool throughput: one-shot vs pooled sessions",
    );
    use std::time::Instant;
    let jobs: usize = std::env::var("EXP14_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let nproc = 4;
    // A deliberately minimal job: pool amortization is a fixed per-job
    // saving (process creation, plane/env/barrier construction), so the
    // job body must not swamp it — construct costs inside a job are
    // identical on both paths and EXP-3..EXP-6 already measure them.
    let job = |p: &Player| {
        busy_work(16 + p.pid() as u64);
    };
    println!(
        "{:<18} {:>7} {:>12} {:>12} {:>8}   {:>14}",
        "machine", "jobs", "one-shot/s", "pooled/s", "ratio", "procs created"
    );
    let mut rows = Vec::new();
    for id in MachineId::all() {
        // One-shot: a fresh Force (plane, environment, barrier, scoped
        // threads) constructed and torn down per job.
        let machine = Machine::new(id);
        let t0 = Instant::now();
        for _ in 0..jobs {
            let force = Force::with_machine(nproc, Arc::clone(&machine));
            force.run(job);
        }
        let one_shot = jobs as f64 / t0.elapsed().as_secs_f64();
        let one_shot_procs = machine.stats().snapshot().processes_created;

        // Pooled: one resident session dispatching every job onto the
        // same worker threads, state reset in place between jobs.
        let machine = Machine::new(id);
        let pool = Arc::new(ForcePool::new(nproc, machine.stats()));
        let session = Force::with_machine(nproc, Arc::clone(&machine)).with_pool(pool);
        let t0 = Instant::now();
        for _ in 0..jobs {
            session.run(job);
        }
        let pooled = jobs as f64 / t0.elapsed().as_secs_f64();
        let pooled_procs = machine.stats().snapshot().processes_created;

        let ratio = pooled / one_shot;
        println!(
            "{:<18} {:>7} {:>12.0} {:>12.0} {:>7.1}x   {:>6} -> {:>5}",
            id.name(),
            jobs,
            one_shot,
            pooled,
            ratio,
            one_shot_procs,
            pooled_procs
        );
        rows.push((id, one_shot, pooled, ratio, one_shot_procs, pooled_procs));
    }

    // The expansion cache plays the same role for the language pipeline:
    // porting one source across all six personalities preprocesses each
    // once, and every re-run afterwards is free.
    let (h0, m0) = the_force::prep::expansion_cache_stats();
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER R
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 1, 16
      Critical L
      R = R + K
      End critical
100   End selfsched DO
      Join
";
    for _ in 0..2 {
        for id in MachineId::all() {
            run_force_source(src, id, 2).expect("run");
        }
    }
    let (h1, m1) = the_force::prep::expansion_cache_stats();
    println!(
        "\nexpansion cache over 2 x 6 ports of one source: {} hits, {} misses",
        h1 - h0,
        m1 - m0
    );

    // Machine-readable artifact for the acceptance gate.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"jobs\": {jobs},\n  \"nproc\": {nproc},\n"));
    json.push_str(&format!("  \"host_cores\": {},\n", host_cores()));
    json.push_str(&format!(
        "  \"cache\": {{ \"hits\": {}, \"misses\": {} }},\n",
        h1 - h0,
        m1 - m0
    ));
    json.push_str("  \"machines\": [\n");
    for (i, (id, one_shot, pooled, ratio, op, pp)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"machine\": \"{}\", \"one_shot_jobs_per_sec\": {:.1}, \
             \"pooled_jobs_per_sec\": {:.1}, \"ratio\": {:.2}, \
             \"one_shot_processes_created\": {}, \"pooled_processes_created\": {} }}{}\n",
            id.name(),
            one_shot,
            pooled,
            ratio,
            op,
            pp,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_pool.json", &json).expect("write BENCH_pool.json");
    println!("wrote BENCH_pool.json");
    println!("(expected shape: pooled >= 2x one-shot jobs/sec for this small");
    println!(" job on a multi-core host — the pool charges process creation");
    println!(" once, and sessions reset state in place instead of allocating)");
}

// ---------------------------------------------------------------- EXP-15

/// Structural check of a Chrome `trace_event` JSON: braces and brackets
/// balance outside string literals, escapes are sane, and the document
/// closes at depth zero.  Returns the number of objects in the
/// `traceEvents` array.  Hand-rolled on purpose — the harness has no
/// JSON dependency, and this is exactly the scan a loader does first.
fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    let mut events = 0usize;
    for (i, c) in json.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                // An object opening directly inside the top-level array
                // is one trace event.
                if depth_arr == 1 && depth_obj == 1 {
                    events += 1;
                }
                depth_obj += 1;
            }
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return Err(format!("unbalanced at byte {i}"));
        }
    }
    if in_string || depth_obj != 0 || depth_arr != 0 {
        return Err("document does not close at depth zero".into());
    }
    if !json.contains("\"traceEvents\"") {
        return Err("missing traceEvents key".into());
    }
    let b = json.matches("\"ph\":\"B\"").count();
    let e = json.matches("\"ph\":\"E\"").count();
    if b != e {
        return Err(format!("unbalanced duration events: {b} B vs {e} E"));
    }
    Ok(events)
}

fn exp15() {
    header(
        "EXP-15",
        "tracing overhead (EXP-14 workloads) and the merged six-machine Chrome trace",
    );
    let jobs: usize = std::env::var("EXP15_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    let nproc = 4;
    // The EXP-14 pooled-session job (pure body work — tracing records
    // almost nothing, so its overhead bounds the cost of the armed
    // hooks), plus a construct-rich variant that exercises every hook:
    // an uneven prescheduled DOALL, a hot named critical section, and a
    // barrier.
    let plain_job = |p: &Player| {
        busy_work(16 + p.pid() as u64);
    };
    let rich_job = |p: &Player| {
        p.presched_do(ForceRange::to(1, 64), |i| {
            busy_work(4 + (i as u64 & 7));
        });
        p.critical("HOT", || {
            busy_work(8);
        });
        p.barrier();
    };
    let traced = RunOptions {
        trace: Some(TraceConfig::default()),
        ..RunOptions::default()
    };
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}   {:>8} {:>10} {:>9}",
        "machine", "plain off", "plain on", "rich off", "rich on", "imbal", "hold p50", "events"
    );
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}",
        "", "(jobs/s)", "(% over)", "(jobs/s)", "(% over)"
    );
    let mut rows = Vec::new();
    let mut merged = String::new();
    for (mi, id) in MachineId::all().into_iter().enumerate() {
        let machine = Machine::new(id);
        let pool = Arc::new(ForcePool::new(nproc, machine.stats()));
        let session = Force::with_machine(nproc, Arc::clone(&machine)).with_pool(pool);
        // Interleave off/on batches and take per-configuration medians:
        // on a shared host, drift between two back-to-back measurement
        // blocks easily exceeds the effect being measured.
        let batch = |options: RunOptions, job: &(dyn Fn(&Player) + Sync)| {
            let t0 = std::time::Instant::now();
            for _ in 0..jobs {
                session.try_execute_with(options, job).expect("job");
            }
            t0.elapsed()
        };
        let measure = |job: &(dyn Fn(&Player) + Sync)| {
            batch(RunOptions::default(), job); // warmup
            batch(traced, job); // warmup (arms the sink)
            let mut offs = Vec::new();
            let mut ons = Vec::new();
            for _ in 0..5 {
                offs.push(batch(RunOptions::default(), job));
                ons.push(batch(traced, job));
            }
            offs.sort();
            ons.sort();
            (
                jobs as f64 / offs[2].as_secs_f64(),
                jobs as f64 / ons[2].as_secs_f64(),
            )
        };
        let (plain_off, plain_on) = measure(&plain_job);
        let (rich_off, rich_on) = measure(&rich_job);
        let over = |off: f64, on: f64| (off / on - 1.0) * 100.0;
        let profile = session
            .last_job_profile()
            .expect("the last rich job was traced");
        let hold_p50 = profile
            .named_lock("HOT")
            .map(|l| l.hold.percentile(0.50))
            .unwrap_or(0);
        println!(
            "{:<18} {:>9.0} {:>8.1}% {:>9.0} {:>8.1}%   {:>8.2} {:>10} {:>9}",
            id.name(),
            plain_off,
            over(plain_off, plain_on),
            rich_off,
            over(rich_off, rich_on),
            profile.doall_imbalance(),
            fmt_dur(std::time::Duration::from_nanos(hold_p50)),
            profile.events.len(),
        );
        // One process per machine in the merged trace; `tid` inside is
        // the force pid.
        profile.push_chrome_events(&mut merged, mi, id.name());
        rows.push((
            id,
            over(plain_off, plain_on),
            over(rich_off, rich_on),
            profile.doall_imbalance(),
            hold_p50,
            profile.events.len(),
            profile.dropped_events,
        ));
    }

    // Machine-readable artifact: a Chrome trace_event object (loadable
    // in chrome://tracing / Perfetto, which ignore the extra keys) that
    // also carries the overhead table.
    let mut json = String::from("{\n\"traceEvents\":[");
    json.push_str(&merged);
    json.push_str("],\n\"otherData\":{\"experiment\":\"EXP-15\",");
    json.push_str(&format!("\"jobs\":{jobs},\"nproc\":{nproc},"));
    json.push_str(&format!("\"host_cores\":{},", host_cores()));
    json.push_str("\"machines\":[");
    for (i, (id, plain, rich, imbal, hold, events, dropped)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "{{\"machine\":\"{}\",\"plain_overhead_pct\":{plain:.2},\
             \"rich_overhead_pct\":{rich:.2},\"doall_imbalance\":{imbal:.3},\
             \"critical_hold_p50_ns\":{hold},\"events\":{events},\
             \"dropped_events\":{dropped}}}{}",
            id.name(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("]}\n}\n");
    let events = validate_chrome_trace(&json).expect("trace JSON validates");
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");
    println!("\nwrote BENCH_trace.json ({events} trace events across 6 machines; validated)");
    println!("(expected shape: overhead well under 5% on the plain EXP-14 job and");
    println!(" within 5% on the construct-rich job; the merged trace attributes");
    println!(" spans per construct, with barrier imbalance and critical-section");
    println!(" hold times visible per machine personality)");
}

// ---------------------------------------------------------------- EXP-16

/// Structural check of `BENCH_sched.json`: braces/brackets balance
/// outside strings, exactly one block per machine personality, and every
/// policy measured on both workloads everywhere.  Hand-rolled like the
/// EXP-15 trace validator — the harness has no JSON dependency.
fn validate_sched_json(json: &str) -> Result<(), String> {
    let mut depth = 0i64;
    let (mut in_str, mut esc) = (false, false);
    for c in json.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return Err("closing brace below depth zero".into());
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err(format!("document ends at depth {depth} (in_str={in_str})"));
    }
    let machines = json.matches("\"machine\":").count();
    let want_machines = MachineId::all().len();
    if machines != want_machines {
        return Err(format!("{machines} machine blocks, want {want_machines}"));
    }
    for s in Schedule::all() {
        let key = format!("\"policy\": \"{}\"", s.policy().name());
        let count = json.matches(&key).count();
        let want = want_machines * 2; // uniform + skewed
        if count != want {
            return Err(format!("{key} appears {count} times, want {want}"));
        }
    }
    Ok(())
}

fn exp16() {
    header(
        "EXP-16",
        "unified scheduling plane: six policies on uniform and skewed DOALLs",
    );
    let env = |k: &str, d: u64| {
        std::env::var(k)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d)
    };
    let trips = env("EXP16_TRIPS", 2048) as i64;
    let scale = env("EXP16_SCALE", 48);
    let nproc = env("EXP16_NPROC", 4) as usize;
    let reps = env("EXP16_REPS", 3) as usize;
    let schedules = Schedule::all();
    println!("trips={trips} scale={scale} nproc={nproc} reps={reps}\n");
    print!("{:<18} {:<8}", "machine", "workload");
    for s in &schedules {
        print!(" {:>14}", s.policy().name());
    }
    println!();

    struct SchedRow {
        id: MachineId,
        steals: u64,
        steal_attempts_failed: u64,
        /// Per-workload policy times, in `Schedule::all()` order.
        workloads: Vec<(String, Vec<u128>)>,
        skewed_speedup: f64,
    }
    let mut rows: Vec<SchedRow> = Vec::new();
    let mut winners = 0usize;
    for id in MachineId::all() {
        let machine = Machine::new(id);
        let force = Force::with_machine(nproc, Arc::clone(&machine));
        let mut workloads: Vec<(String, Vec<u128>)> = Vec::new();
        let mut skew_selfsched = 0u128;
        let mut skew_dynamic_best = u128::MAX;
        for (wname, cost) in [
            ("uniform", uniform_cost as fn(i64, u64) -> u64),
            ("skewed", triangular_cost as fn(i64, u64) -> u64),
        ] {
            print!("{:<18} {:<8}", id.name(), wname);
            let mut times = Vec::new();
            let mut checksum = None;
            for s in &schedules {
                let got = run_doall(&force, trips, cost, scale, *s);
                match checksum {
                    None => checksum = Some(got),
                    Some(want) => assert_eq!(
                        got,
                        want,
                        "{}: {wname} checksum diverges under {}",
                        id.name(),
                        s.name()
                    ),
                }
                let t = median_time(reps, || {
                    run_doall(&force, trips, cost, scale, *s);
                })
                .as_nanos();
                if wname == "skewed" {
                    match s {
                        Schedule::SelfSched => skew_selfsched = t,
                        Schedule::Guided(_) | Schedule::Steal => {
                            skew_dynamic_best = skew_dynamic_best.min(t)
                        }
                        _ => {}
                    }
                }
                print!(
                    " {:>14}",
                    fmt_dur(std::time::Duration::from_nanos(t as u64))
                );
                times.push(t);
            }
            println!();
            workloads.push((wname.into(), times));
        }
        let snap = machine.stats().snapshot();
        let speedup = skew_selfsched as f64 / skew_dynamic_best as f64;
        if speedup > 1.0 {
            winners += 1;
        }
        rows.push(SchedRow {
            id,
            steals: snap.steals,
            steal_attempts_failed: snap.steal_attempts_failed,
            workloads,
            skewed_speedup: speedup,
        });
    }
    println!(
        "\nguided/steal beats one-trip selfsched on the skewed loop on {winners} of {} machines",
        rows.len()
    );

    // Machine-readable artifact for the acceptance gate.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"trips\": {trips},\n  \"scale\": {scale},\n  \"nproc\": {nproc},\n  \"reps\": {reps},\n"
    ));
    json.push_str(&format!("  \"host_cores\": {},\n", host_cores()));
    json.push_str(&format!(
        "  \"machines_where_guided_or_steal_wins_skewed\": {winners},\n"
    ));
    json.push_str("  \"machines\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"machine\": \"{}\", \"steals\": {}, \
             \"steal_attempts_failed\": {}, \
             \"skewed_speedup_vs_selfsched\": {:.3},\n",
            row.id.name(),
            row.steals,
            row.steal_attempts_failed,
            row.skewed_speedup
        ));
        json.push_str("      \"workloads\": [\n");
        for (wi, (wname, times)) in row.workloads.iter().enumerate() {
            json.push_str(&format!(
                "        {{ \"workload\": \"{wname}\", \"policies\": ["
            ));
            for (si, (s, t)) in schedules.iter().zip(times).enumerate() {
                json.push_str(&format!(
                    "{}{{ \"policy\": \"{}\", \"ns\": {t} }}",
                    if si > 0 { ", " } else { "" },
                    s.policy().name()
                ));
            }
            json.push_str(&format!(
                "] }}{}\n",
                if wi + 1 < row.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        json.push_str(&format!(
            "      ] }}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    validate_sched_json(&json).expect("sched JSON validates");
    std::fs::write("BENCH_sched.json", &json).expect("write BENCH_sched.json");
    println!("wrote BENCH_sched.json (validated)");
    println!("(expected shape: on the uniform loop the static policies win on");
    println!(" locking cost; on the skewed loop guided or steal beats one-trip");
    println!(" selfscheduling by amortizing claims without losing balance)");
}

// ---------------------------------------------------------------- EXP-17

/// Structural check of `BENCH_vm.json`: braces/brackets balance outside
/// strings, one block per machine personality, and both workloads
/// measured everywhere.  Hand-rolled like the EXP-16 validator.
fn validate_vm_json(json: &str) -> Result<(), String> {
    let mut depth = 0i64;
    let (mut in_str, mut esc) = (false, false);
    for c in json.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return Err("closing brace below depth zero".into());
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err(format!("document ends at depth {depth} (in_str={in_str})"));
    }
    let machines = json.matches("\"machine\":").count();
    let want_machines = MachineId::all().len();
    if machines != want_machines {
        return Err(format!("{machines} machine blocks, want {want_machines}"));
    }
    for w in ["pooled-small", "skewed-loop"] {
        let key = format!("\"workload\": \"{w}\"");
        let count = json.matches(&key).count();
        if count != want_machines {
            return Err(format!("{key} appears {count} times, want {want_machines}"));
        }
    }
    if !json.contains("\"machines_where_bytecode_2x_skewed\":") {
        return Err("missing bytecode-2x summary counter".into());
    }
    Ok(())
}

fn exp17() {
    header(
        "EXP-17",
        "bytecode VM vs tree-walking interpreter: language-pipeline throughput",
    );
    use std::time::Instant;
    use the_force::machdep::{ExecutorChoice, RunOptions};
    let env = |k: &str, d: u64| {
        std::env::var(k)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d)
    };
    let jobs = env("EXP17_JOBS", 200) as usize;
    let trips = env("EXP17_TRIPS", 96);
    let skew_jobs = env("EXP17_SKEW_JOBS", 8) as usize;
    let nproc = 4;

    // Workload 1 — the EXP-14 pooled-session language job: a minimal
    // self-scheduled sum whose per-job cost is dominated by dispatch and
    // statement execution, run on one resident session per executor.
    let small_src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER R
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 1, 16
      Critical L
      R = R + K
      End critical
100   End selfsched DO
      Join
"
    .to_string();

    // Workload 2 — the EXP-16 skewed loop in the language: trip K does
    // K units of inner work, so statement-execution speed (not construct
    // cost) dominates.  This is the acceptance workload: the bytecode VM
    // must reach >= 2x tree-walk jobs/sec on at least five machines.
    let skew_src = format!(
        "\
      Force FMAIN of NP ident ME
      Shared INTEGER CHK
      Private INTEGER K, J, T
      End declarations
      Selfsched DO 100 K = 1, {trips}
      T = 0
      DO 10 J = 1, K
      T = T + J * J - K
10    CONTINUE
      Critical L
      CHK = CHK + MOD(T, 1000)
      End critical
100   End selfsched DO
      Join
"
    );

    println!("jobs={jobs} trips={trips} skew_jobs={skew_jobs} nproc={nproc}\n");
    println!(
        "{:<18} {:<13} {:>12} {:>12} {:>8}",
        "machine", "workload", "tree/s", "bytecode/s", "speedup"
    );

    // Jobs/sec for one (source, machine, executor) cell: a fresh engine
    // with a resident pool, one warm-up job (charges compilation, shared
    // allocation and process creation), then `n` timed jobs.
    let measure = |src: &str, id: MachineId, n: usize, executor: ExecutorChoice| -> (f64, i64) {
        let (_expanded, engine) = compile_force_source(src, id).expect("front end");
        engine.set_pool(Arc::new(ForcePool::new(nproc, engine.machine().stats())));
        let opts = RunOptions {
            executor,
            ..RunOptions::default()
        };
        let warm = engine.run_with(nproc, opts).expect("warm-up job");
        // Deterministic digest of the final shared memory (HashMap order
        // is random, so fold over sorted names).
        let mut names: Vec<_> = warm.shared_values.keys().collect();
        names.sort();
        let check = names
            .iter()
            .flat_map(|n| warm.shared_values[*n].iter())
            .map(|v| v.as_int(0).unwrap_or(0))
            .fold(0i64, i64::wrapping_add);
        let t0 = Instant::now();
        for _ in 0..n {
            engine.run_with(nproc, opts).expect("job");
        }
        (n as f64 / t0.elapsed().as_secs_f64(), check)
    };

    struct VmRow {
        id: MachineId,
        /// (workload, tree jobs/sec, bytecode jobs/sec, speedup)
        workloads: Vec<(&'static str, f64, f64, f64)>,
    }
    let mut rows: Vec<VmRow> = Vec::new();
    let mut winners = 0usize;
    for id in MachineId::all() {
        let mut workloads = Vec::new();
        for (wname, src, n) in [
            ("pooled-small", small_src.as_str(), jobs),
            ("skewed-loop", skew_src.as_str(), skew_jobs),
        ] {
            let (tree, tree_check) = measure(src, id, n, ExecutorChoice::TreeWalk);
            let (vm, vm_check) = measure(src, id, n, ExecutorChoice::Bytecode);
            assert_eq!(
                tree_check,
                vm_check,
                "{}: {wname} result diverges between executors",
                id.name()
            );
            let speedup = vm / tree;
            println!(
                "{:<18} {:<13} {:>12.1} {:>12.1} {:>7.2}x",
                id.name(),
                wname,
                tree,
                vm,
                speedup
            );
            if wname == "skewed-loop" && speedup >= 2.0 {
                winners += 1;
            }
            workloads.push((wname, tree, vm, speedup));
        }
        rows.push(VmRow { id, workloads });
    }
    println!(
        "\nbytecode reaches >= 2x tree-walk on the skewed loop on {winners} of {} machines",
        rows.len()
    );

    // Machine-readable artifact for the acceptance gate.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"jobs\": {jobs},\n  \"trips\": {trips},\n  \"skew_jobs\": {skew_jobs},\n  \"nproc\": {nproc},\n"
    ));
    json.push_str(&format!("  \"host_cores\": {},\n", host_cores()));
    json.push_str(&format!(
        "  \"machines_where_bytecode_2x_skewed\": {winners},\n"
    ));
    json.push_str("  \"machines\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!("    {{ \"machine\": \"{}\",\n", row.id.name()));
        json.push_str("      \"workloads\": [\n");
        for (wi, (wname, tree, vm, speedup)) in row.workloads.iter().enumerate() {
            json.push_str(&format!(
                "        {{ \"workload\": \"{wname}\", \"tree_jobs_per_sec\": {tree:.1}, \
                 \"bytecode_jobs_per_sec\": {vm:.1}, \"speedup\": {speedup:.3} }}{}\n",
                if wi + 1 < row.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        json.push_str(&format!(
            "      ] }}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    validate_vm_json(&json).expect("vm JSON validates");
    std::fs::write("BENCH_vm.json", &json).expect("write BENCH_vm.json");
    println!("wrote BENCH_vm.json (validated)");
    println!("(expected shape: compiled execution wins most where statement");
    println!(" dispatch dominates — the skewed loop — and less on the tiny");
    println!(" pooled job, whose cost is session dispatch and lock traffic)");
}

// ---------------------------------------------------------------- EXP-18

/// Structural check of `BENCH_serve.json`: balanced braces outside
/// strings, one block per machine personality, per-machine steady and
/// burst sections, and the no-collapse marker (`"watchdog_trips": 0`)
/// on every machine.  Hand-rolled like the EXP-16/EXP-17 validators —
/// the harness has no JSON dependency.
fn validate_serve_json(json: &str) -> Result<(), String> {
    let mut depth = 0i64;
    let (mut in_str, mut esc) = (false, false);
    for c in json.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return Err("closing brace below depth zero".into());
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err(format!("document ends at depth {depth} (in_str={in_str})"));
    }
    let want = MachineId::all().len();
    let machines = json.matches("\"machine\":").count();
    if machines != want {
        return Err(format!("{machines} machine blocks, want {want}"));
    }
    for key in [
        "\"steady\":",
        "\"burst\":",
        "\"jobs_per_sec\":",
        "\"p50_ns\":",
        "\"p99_ns\":",
        "\"peak_backlog\":",
        "\"shed\":",
        "\"deadline_exceeded\":",
    ] {
        let count = json.matches(key).count();
        if count < want {
            return Err(format!("{key} appears {count} times, want >= {want}"));
        }
    }
    let calm = json.matches("\"watchdog_trips\": 0").count();
    if calm != want {
        return Err(format!(
            "\"watchdog_trips\": 0 appears {calm} times, want {want} (a machine collapsed)"
        ));
    }
    Ok(())
}

fn exp18() {
    header(
        "EXP-18",
        "force-as-a-service: open-loop serving, overload shed/deadline-kill",
    );
    use std::time::{Duration, Instant};
    use the_force::machdep::{
        ForceServer, JobSpec, Priority, RunOptions, ServerConfig, StatsSnapshot, Submit,
    };
    let env = |k: &str, d: u64| {
        std::env::var(k)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d)
    };
    let jobs = env("EXP18_JOBS", 240) as usize;
    let burst = env("EXP18_BURST", 160) as usize;
    let watermark = env("EXP18_WATERMARK", 24) as usize;
    let nproc = 4usize;

    let lang_src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      End declarations
      Critical L
      N = N + 1
      End critical
      Join
";

    println!("jobs={jobs} burst={burst} watermark={watermark} nproc={nproc}\n");
    println!(
        "{:<18} {:>9} {:>10} {:>10} | {:>6} {:>5} {:>5} {:>5} {:>5}",
        "machine", "steady/s", "p50", "p99", "done", "shed", "dl", "rej", "peak"
    );

    struct ServeRow {
        id: MachineId,
        steady_rate: f64,
        p50_ns: u64,
        p99_ns: u64,
        steady_completed: u64,
        steady_retries: u64,
        b_admitted: u64,
        b_completed: u64,
        b_shed: u64,
        b_deadline: u64,
        b_rejected: u64,
        b_peak: usize,
        watchdog: u64,
    }
    let mut rows: Vec<ServeRow> = Vec::new();

    for id in MachineId::all() {
        let machine = Machine::new(id);
        let base: StatsSnapshot = machine.stats().snapshot();
        let pool = Arc::new(ForcePool::new(nproc, machine.stats()));
        let force =
            Arc::new(Force::with_machine(nproc, Arc::clone(&machine)).with_pool(Arc::clone(&pool)));
        let (_expanded, engine) = compile_force_source(lang_src, id).expect("front end");
        let engine = Arc::new(engine);
        engine.set_pool(Arc::clone(&pool));
        let sink = Arc::new(AtomicU64::new(0));

        // Calibrate the per-job service time closed-loop; the open-loop
        // arrival rates below are relative to it, so the harness applies
        // the same *relative* load on every host.
        const CAL: usize = 12;
        let t0 = Instant::now();
        for _ in 0..CAL {
            let s = Arc::clone(&sink);
            force
                .try_run(move |p| {
                    p.barrier();
                    s.fetch_add(busy_work(64), Ordering::Relaxed);
                    p.barrier();
                })
                .expect("calibration job");
            engine.run(nproc).expect("calibration job");
        }
        let svc = (t0.elapsed() / (2 * CAL as u32)).max(Duration::from_micros(20));

        // Steady phase: open-loop arrivals at half the measured service
        // rate, alternating native and language jobs.  Nothing may be
        // shed or killed here.
        let server = ForceServer::new(
            ServerConfig {
                tenant_queue_capacity: jobs.max(64),
                shed_watermark: jobs.max(64) * 2,
                retry_base: Duration::from_micros(200),
                ..ServerConfig::default()
            },
            machine.stats(),
        );
        let arrival = svc * 2;
        let mut handles = Vec::with_capacity(jobs);
        let t0 = Instant::now();
        let mut next_at = t0;
        for j in 0..jobs {
            let (spec, runner) = if j % 2 == 0 {
                let s = Arc::clone(&sink);
                (
                    JobSpec::for_tenant("native"),
                    force.serve_runner(RunOptions::default(), move |p| {
                        p.barrier();
                        s.fetch_add(busy_work(64), Ordering::Relaxed);
                        p.barrier();
                    }),
                )
            } else {
                (
                    JobSpec::for_tenant("lang"),
                    engine.serve_runner(nproc, RunOptions::default(), |_| ()),
                )
            };
            match server.submit(spec, runner) {
                Submit::Admitted(h) => handles.push(h),
                Submit::Rejected { reason } => panic!("steady phase rejected a job: {reason}"),
            }
            next_at += arrival;
            let now = Instant::now();
            if next_at > now {
                std::thread::sleep(next_at - now);
            }
        }
        for h in &handles {
            assert!(h.wait().is_success(), "steady job failed on {}", id.name());
        }
        let steady_elapsed = t0.elapsed();
        let steady = server.server_report();
        assert_eq!(steady.shed, 0, "{}: steady phase shed work", id.name());
        assert_eq!(steady.deadline_exceeded, 0);
        let steady_rate = steady.completed as f64 / steady_elapsed.as_secs_f64();
        server.shutdown();

        // Burst phase: arrivals at 4x the service rate — overload by
        // construction.  The server must hold the backlog near the
        // watermark by shedding and deadline-killing, never collapse.
        let server = ForceServer::new(
            ServerConfig {
                tenant_queue_capacity: watermark * 4,
                shed_watermark: watermark,
                retry_base: Duration::from_micros(200),
                ..ServerConfig::default()
            },
            machine.stats(),
        );
        let arrival = svc / 4;
        let deadline = svc * 8;
        let mut handles = Vec::with_capacity(burst);
        let mut next_at = Instant::now();
        for j in 0..burst {
            let s = Arc::clone(&sink);
            let runner = force.serve_runner(RunOptions::default(), move |p| {
                p.barrier();
                s.fetch_add(busy_work(64), Ordering::Relaxed);
                p.barrier();
            });
            let mut spec = JobSpec::for_tenant("burst").with_priority(if j % 8 == 0 {
                Priority::High
            } else {
                Priority::Normal
            });
            if j % 4 == 0 {
                spec = spec.with_deadline(deadline);
            }
            match server.submit(spec, runner) {
                Submit::Admitted(h) => handles.push(h),
                Submit::Rejected { .. } => {}
            }
            next_at += arrival;
            let now = Instant::now();
            if next_at > now {
                std::thread::sleep(next_at - now);
            }
        }
        // Every admitted job reaches a terminal outcome.
        for h in &handles {
            let _ = h.wait();
        }
        // The server stays responsive through the overload: a fresh
        // high-priority job completes promptly afterwards.
        let s = Arc::clone(&sink);
        let probe = server.submit(
            JobSpec::for_tenant("probe").with_priority(Priority::High),
            force.serve_runner(RunOptions::default(), move |p| {
                p.barrier();
                s.fetch_add(busy_work(64), Ordering::Relaxed);
                p.barrier();
            }),
        );
        match probe {
            Submit::Admitted(h) => assert!(h.wait().is_success(), "post-burst probe failed"),
            Submit::Rejected { reason } => panic!("post-burst probe rejected: {reason}"),
        }
        let b = server.server_report();
        assert!(
            b.shed + b.deadline_exceeded > 0,
            "{}: 4x overload was absorbed without shedding or deadline kills",
            id.name()
        );
        assert!(
            b.peak_backlog <= watermark + 64,
            "{}: queue depth {} not bounded near watermark {}",
            id.name(),
            b.peak_backlog,
            watermark
        );
        server.shutdown();

        let delta = machine.stats().snapshot().delta(&base);
        assert_eq!(delta.watchdog_trips, 0, "{}: watchdog tripped", id.name());

        println!(
            "{:<18} {:>9.1} {:>10} {:>10} | {:>6} {:>5} {:>5} {:>5} {:>5}",
            id.name(),
            steady_rate,
            fmt_dur(Duration::from_nanos(steady.latency.percentile(0.50))),
            fmt_dur(Duration::from_nanos(steady.latency.percentile(0.99))),
            b.completed,
            b.shed,
            b.deadline_exceeded,
            b.rejected,
            b.peak_backlog
        );
        rows.push(ServeRow {
            id,
            steady_rate,
            p50_ns: steady.latency.percentile(0.50),
            p99_ns: steady.latency.percentile(0.99),
            steady_completed: steady.completed,
            steady_retries: steady.retries,
            b_admitted: b.admitted,
            b_completed: b.completed,
            b_shed: b.shed,
            b_deadline: b.deadline_exceeded,
            b_rejected: b.rejected,
            b_peak: b.peak_backlog,
            watchdog: delta.watchdog_trips,
        });
    }

    // Machine-readable artifact for the acceptance gate.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"jobs\": {jobs},\n  \"burst\": {burst},\n  \"watermark\": {watermark},\n  \"nproc\": {nproc},\n"
    ));
    json.push_str(&format!("  \"host_cores\": {},\n", host_cores()));
    json.push_str("  \"machines\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!("    {{ \"machine\": \"{}\",\n", r.id.name()));
        json.push_str(&format!(
            "      \"steady\": {{ \"jobs_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"completed\": {}, \"retries\": {} }},\n",
            r.steady_rate, r.p50_ns, r.p99_ns, r.steady_completed, r.steady_retries
        ));
        json.push_str(&format!(
            "      \"burst\": {{ \"admitted\": {}, \"completed\": {}, \"shed\": {}, \
             \"deadline_exceeded\": {}, \"rejected\": {}, \"peak_backlog\": {}, \
             \"watchdog_trips\": {} }} }}{}\n",
            r.b_admitted,
            r.b_completed,
            r.b_shed,
            r.b_deadline,
            r.b_rejected,
            r.b_peak,
            r.watchdog,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    validate_serve_json(&json).expect("serve JSON validates");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json (validated)");
    println!("(expected shape: steady-phase latency tracks the calibrated service");
    println!(" time on every personality; the 4x burst is absorbed by shedding and");
    println!(" deadline kills with the backlog pinned near the watermark, and the");
    println!(" post-burst probe proves the server never wedged)");
}
