//! Workload generators shared by the benches and the `reproduce` harness.

use std::sync::atomic::{AtomicU64, Ordering};

use force_core::prelude::*;

/// Spin for roughly `units` of deterministic work (calibration-free; a
/// unit is one rounds of a small integer hash).
#[inline]
pub fn busy_work(units: u64) -> u64 {
    let mut x = 0x9E3779B97F4A7C15u64.wrapping_add(units);
    for _ in 0..units {
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51AFD7ED558CCD);
        x ^= x >> 29;
    }
    std::hint::black_box(x)
}

/// Per-iteration cost of a *uniform* loop body.
pub fn uniform_cost(_i: i64, scale: u64) -> u64 {
    scale
}

/// Per-iteration cost of a *triangular* (skewed) loop body: iteration `i`
/// of `n` costs proportionally to `i` — the classic load-imbalance shape
/// where prescheduled distribution loses to selfscheduled.
pub fn triangular_cost(i: i64, scale: u64) -> u64 {
    (i as u64) * scale / 8
}

/// Run a DOALL over `n` iterations with per-iteration `cost(i)`, using
/// the chosen schedule, and return the checksum (foils dead-code
/// elimination, doubles as a correctness check).
pub fn run_doall(
    force: &Force,
    n: i64,
    cost: impl Fn(i64, u64) -> u64 + Sync,
    scale: u64,
    schedule: Schedule,
) -> u64 {
    let acc = AtomicU64::new(0);
    force.run(|p| {
        p.doall_with(schedule.policy(), ForceRange::to(1, n), |i| {
            acc.fetch_add(busy_work(cost(i, scale)) & 0xFF, Ordering::Relaxed);
        });
    });
    acc.load(Ordering::Relaxed)
}

/// DOALL scheduling flavours under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Cyclic prescheduled.
    Presched,
    /// Block prescheduled.
    PreschedBlock,
    /// Selfscheduled, one trip at a time.
    SelfSched,
    /// Selfscheduled in chunks.
    SelfSchedChunk(u64),
    /// Guided selfscheduling with a minimum chunk.
    Guided(u64),
    /// Block-seeded work stealing.
    Steal,
}

impl Schedule {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Schedule::Presched => "presched (cyclic)".into(),
            Schedule::PreschedBlock => "presched (block)".into(),
            Schedule::SelfSched => "selfsched".into(),
            Schedule::SelfSchedChunk(c) => format!("selfsched chunk={c}"),
            Schedule::Guided(m) => format!("guided min={m}"),
            Schedule::Steal => "steal".into(),
        }
    }

    /// The core scheduling policy this flavour maps to.
    pub fn policy(&self) -> SchedulePolicy {
        match *self {
            Schedule::Presched => SchedulePolicy::Cyclic,
            Schedule::PreschedBlock => SchedulePolicy::Block,
            Schedule::SelfSched => SchedulePolicy::Selfsched { chunk: 1 },
            Schedule::SelfSchedChunk(c) => SchedulePolicy::Selfsched { chunk: c },
            Schedule::Guided(m) => SchedulePolicy::Guided { min_chunk: m },
            Schedule::Steal => SchedulePolicy::Steal,
        }
    }

    /// Every flavour the scheduling experiment compares, in report order.
    pub fn all() -> Vec<Schedule> {
        vec![
            Schedule::Presched,
            Schedule::PreschedBlock,
            Schedule::SelfSched,
            Schedule::SelfSchedChunk(16),
            Schedule::Guided(1),
            Schedule::Steal,
        ]
    }
}

/// The matrix-multiply kernel used by the speedup experiment: returns the
/// checksum of `C = A*B` for deterministic pseudo-random `A`, `B`.
pub fn matmul_checksum(n: usize, nproc: usize, machine: std::sync::Arc<Machine>) -> u64 {
    let a: Vec<f64> = (0..n * n).map(|k| ((k % 13) as f64) - 6.0).collect();
    let b: Vec<f64> = (0..n * n).map(|k| ((k % 7) as f64) * 0.5 - 1.5).collect();
    let c = SharedF64Array::zeroed(n * n);
    let force = Force::with_machine(nproc, machine);
    force.run(|p| {
        p.selfsched_do(ForceRange::to(0, n as i64 - 1), |row| {
            let i = row as usize;
            for k in 0..n {
                let aik = a[i * n + k];
                for j in 0..n {
                    c.set(i * n + j, c.get(i * n + j) + aik * b[k * n + j]);
                }
            }
        });
    });
    (0..n * n)
        .map(|k| c.get(k).to_bits() >> 32)
        .fold(0u64, |acc, x| acc.wrapping_add(x))
}

/// The adaptive-split workload for the Askfor experiment: splitting `seed`
/// down to unit leaves with `grain` busy-work per node.
pub fn askfor_split(force: &Force, seed: u64, grain: u64) -> u64 {
    let leaves = AtomicU64::new(0);
    force.run(|p| {
        p.askfor(
            || vec![seed],
            |n, pot| {
                busy_work(grain);
                if n > 1 {
                    pot.post(n / 2);
                    pot.post(n - n / 2);
                } else {
                    leaves.fetch_add(1, Ordering::Relaxed);
                }
            },
        );
    });
    leaves.load(Ordering::Relaxed)
}

/// Equivalent static version: presched over the leaves (the work shape is
/// known here only because the workload is synthetic — the point of
/// Askfor is that in general it is not).
pub fn static_split(force: &Force, seed: u64, grain: u64) -> u64 {
    let leaves = AtomicU64::new(0);
    force.run(|p| {
        // The split tree of `seed` has exactly `seed` leaves and
        // `seed - 1` internal nodes; do the same total busy work.
        p.presched_do(ForceRange::to(1, (2 * seed - 1) as i64), |_| {
            busy_work(grain);
        });
        p.barrier_section(|| {
            leaves.store(seed, Ordering::Relaxed);
        });
    });
    leaves.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_work_is_deterministic() {
        assert_eq!(busy_work(100), busy_work(100));
        assert_ne!(busy_work(100), busy_work(101));
    }

    #[test]
    fn doall_checksums_are_schedule_independent() {
        let force = Force::new(3);
        let base = run_doall(&force, 50, uniform_cost, 4, Schedule::Presched);
        for s in [
            Schedule::PreschedBlock,
            Schedule::SelfSched,
            Schedule::SelfSchedChunk(4),
            Schedule::Guided(1),
            Schedule::Steal,
        ] {
            assert_eq!(
                run_doall(&force, 50, uniform_cost, 4, s),
                base,
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn matmul_checksum_is_nproc_independent() {
        let m = Machine::new(MachineId::Flex32);
        let c1 = matmul_checksum(16, 1, std::sync::Arc::clone(&m));
        let c2 = matmul_checksum(16, 3, m);
        assert_eq!(c1, c2);
    }

    #[test]
    fn askfor_split_counts_leaves() {
        let force = Force::new(2);
        assert_eq!(askfor_split(&force, 17, 1), 17);
        assert_eq!(static_split(&force, 17, 1), 17);
    }
}
