//! EXP-3 — barrier algorithm comparison (\[AJ87\]).
//!
//! Time per barrier episode for the Force's two-lock barrier and the
//! classic alternatives, swept over the force size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use force_core::barrier_algs::all_algorithms;
use force_machdep::{spawn_force, Machine, MachineId};

fn bench_barriers(c: &mut Criterion) {
    let mut g = c.benchmark_group("barriers");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    let episodes = 200u64;
    for n in [1usize, 2, 4] {
        let machine = Machine::new(MachineId::EncoreMultimax);
        for alg in all_algorithms(&machine, n) {
            g.bench_with_input(
                BenchmarkId::new(alg.name().replace(' ', "_"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        spawn_force(n, machine.stats(), |pid| {
                            for _ in 0..episodes {
                                alg.wait(pid);
                            }
                        });
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_barriers);
criterion_main!(benches);
