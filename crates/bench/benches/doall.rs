//! EXP-4 — prescheduled vs selfscheduled DOALL under uniform and skewed
//! (triangular) per-iteration costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use force_bench::workloads::{run_doall, triangular_cost, uniform_cost, Schedule};
use force_core::prelude::*;

fn bench_doall(c: &mut Criterion) {
    let mut g = c.benchmark_group("doall");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    let n = 2_000i64;
    let nproc = 4;
    let force = Force::new(nproc);
    for (wname, cost) in [
        ("uniform", uniform_cost as fn(i64, u64) -> u64),
        ("triangular", triangular_cost as fn(i64, u64) -> u64),
    ] {
        for sched in [
            Schedule::Presched,
            Schedule::PreschedBlock,
            Schedule::SelfSched,
            Schedule::SelfSchedChunk(16),
        ] {
            g.bench_with_input(
                BenchmarkId::new(sched.name().replace(' ', "_"), wname),
                &sched,
                |b, &sched| {
                    b.iter(|| run_doall(&force, n, cost, 16, sched));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_doall);
criterion_main!(benches);
