//! EXP-9 — Pcase prescheduled vs selfscheduled with heterogeneous
//! section costs: static cyclic allocation strands the expensive sections
//! on whichever processes happen to own them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use force_bench::workloads::busy_work;
use force_core::prelude::*;

fn run_pcase(force: &Force, costs: &[u64], selfsched: bool) {
    force.run(|p| {
        let mut pc = p.pcase();
        for &cost in costs {
            pc = pc.sect(move || {
                busy_work(cost);
            });
        }
        if selfsched {
            pc.selfsched();
        } else {
            pc.presched();
        }
    });
}

fn bench_pcase(c: &mut Criterion) {
    let mut g = c.benchmark_group("pcase");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    let force = Force::new(4);
    // 12 sections: uniform vs one-heavy (skewed) cost vectors.
    let uniform: Vec<u64> = vec![500; 12];
    let mut skewed: Vec<u64> = vec![100; 12];
    skewed[0] = 5_000;
    for (wname, costs) in [("uniform", &uniform), ("skewed", &skewed)] {
        for (sname, selfsched) in [("presched", false), ("selfsched", true)] {
            g.bench_with_input(
                BenchmarkId::new(sname, wname),
                &selfsched,
                |b, &selfsched| {
                    b.iter(|| run_pcase(&force, costs, selfsched));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_pcase);
criterion_main!(benches);
