//! EXP-5 — the §4.1.3 lock taxonomy: spin vs system-call vs combined
//! locks under varying hold times (the Flex/32 combined-lock rationale).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use force_bench::workloads::busy_work;
use force_machdep::{
    combined::CombinedLock, fullempty::HepLock, lock::RawLock, spin::SpinLock,
    syscall_lock::SyscallLock, LockState, OpStats,
};

fn lock_of(kind: &str, stats: &Arc<OpStats>) -> Arc<dyn RawLock> {
    match kind {
        "spin" => Arc::new(SpinLock::new(LockState::Unlocked, Arc::clone(stats))),
        "syscall" => Arc::new(SyscallLock::new(LockState::Unlocked, Arc::clone(stats))),
        "combined" => Arc::new(CombinedLock::new(LockState::Unlocked, Arc::clone(stats))),
        "fullempty" => Arc::new(HepLock::new(LockState::Unlocked, Arc::clone(stats))),
        _ => unreachable!(),
    }
}

fn bench_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    let stats = Arc::new(OpStats::new());
    let nthreads = 4;
    let acquisitions = 300u64;
    for hold in [0u64, 32, 512] {
        for kind in ["spin", "syscall", "combined", "fullempty"] {
            let lock = lock_of(kind, &stats);
            g.bench_with_input(
                BenchmarkId::new(kind, format!("hold{hold}")),
                &hold,
                |b, &hold| {
                    b.iter(|| {
                        std::thread::scope(|s| {
                            for _ in 0..nthreads {
                                let lock = Arc::clone(&lock);
                                s.spawn(move || {
                                    for _ in 0..acquisitions {
                                        lock.lock();
                                        busy_work(hold);
                                        lock.unlock();
                                    }
                                });
                            }
                        });
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_locks);
criterion_main!(benches);
