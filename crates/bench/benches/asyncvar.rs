//! EXP-6 — Produce/Consume: HEP hardware full/empty vs the two-lock
//! emulation of §4.2, as transfer throughput through one async variable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use force_core::prelude::*;
use force_machdep::MachineId;

fn bench_asyncvar(c: &mut Criterion) {
    let mut g = c.benchmark_group("asyncvar");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    let transfers = 2_000u64;
    for id in [
        MachineId::Hep,
        MachineId::EncoreMultimax,
        MachineId::Flex32,
        MachineId::Cray2,
    ] {
        let machine = Machine::new(id);
        g.bench_with_input(BenchmarkId::new("spsc", id.tag()), &id, |b, _| {
            b.iter(|| {
                let chan: Async<u64> = Async::new(&machine);
                std::thread::scope(|s| {
                    s.spawn(|| {
                        for i in 0..transfers {
                            chan.produce(i);
                        }
                    });
                    s.spawn(|| {
                        let mut acc = 0u64;
                        for _ in 0..transfers {
                            acc = acc.wrapping_add(chan.consume());
                        }
                        std::hint::black_box(acc);
                    });
                });
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_asyncvar);
criterion_main!(benches);
