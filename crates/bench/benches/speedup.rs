//! EXP-7 — speedup scaling of a tightly coupled kernel (matrix multiply)
//! over the force size.  On a multi-core host the curve approaches
//! linear; the invariant checked everywhere is that the *result* is
//! independent of the force size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use force_bench::workloads::matmul_checksum;
use force_machdep::{Machine, MachineId};

fn bench_speedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("speedup");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    let n = 48;
    for nproc in [1usize, 2, 4] {
        let machine = Machine::new(MachineId::AlliantFx8);
        g.bench_with_input(BenchmarkId::new("matmul48", nproc), &nproc, |b, &nproc| {
            b.iter(|| matmul_checksum(n, nproc, std::sync::Arc::clone(&machine)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
