//! EXP-11 — scarce locks (§4.1.3, Cray-2): K logical locks multiplexed
//! onto a pool of L physical locks; false contention grows with K/L.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use force_machdep::lockpool::{LockFactory, LockPool};
use force_machdep::syscall_lock::SyscallLock;
use force_machdep::{LockHandle, LockState, OpStats};

fn bench_lockpool(c: &mut Criterion) {
    let mut g = c.benchmark_group("lockpool");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    let nthreads = 4;
    let rounds = 400u64;
    let capacity = 8;
    for logical in [8usize, 16, 64] {
        let stats = Arc::new(OpStats::new());
        let st = Arc::clone(&stats);
        let factory: LockFactory =
            Arc::new(move |init| Arc::new(SyscallLock::new(init, Arc::clone(&st))) as LockHandle);
        let pool = LockPool::new(capacity, factory, Arc::clone(&stats));
        let locks: Vec<LockHandle> = (0..logical)
            .map(|_| pool.allocate(LockState::Unlocked))
            .collect();
        g.bench_with_input(
            BenchmarkId::new(format!("pool{capacity}"), logical),
            &logical,
            |b, &logical| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for t in 0..nthreads {
                            let locks = &locks;
                            s.spawn(move || {
                                // Each thread cycles over a disjoint set of
                                // *logical* locks; physical aliasing makes
                                // them contend anyway.
                                for r in 0..rounds {
                                    let l = &locks[(t + r as usize * nthreads) % logical];
                                    l.lock();
                                    std::hint::black_box(r);
                                    l.unlock();
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_lockpool);
criterion_main!(benches);
