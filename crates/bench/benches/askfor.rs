//! EXP-8 — Askfor (run-time requested work) vs static distribution on a
//! recursively splitting workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use force_bench::workloads::{askfor_split, static_split};
use force_core::prelude::*;

fn bench_askfor(c: &mut Criterion) {
    let mut g = c.benchmark_group("askfor");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    let force = Force::new(4);
    for seed in [64u64, 512] {
        g.bench_with_input(BenchmarkId::new("askfor", seed), &seed, |b, &seed| {
            b.iter(|| askfor_split(&force, seed, 64))
        });
        g.bench_with_input(BenchmarkId::new("static", seed), &seed, |b, &seed| {
            b.iter(|| static_split(&force, seed, 64))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_askfor);
criterion_main!(benches);
