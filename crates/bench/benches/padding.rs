//! EXP-10 — the Encore page-padding ablation (§4.1.2): when shared and
//! "private" words cohabit a cache line/page, independent per-process
//! counters false-share; the Force's padded layout separates them.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use force_machdep::CachePadded;

fn bench_padding(c: &mut Criterion) {
    let mut g = c.benchmark_group("padding");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    let nthreads = 4;
    let increments = 50_000u64;

    // Unpadded: four counters in adjacent words (one line).
    let unpadded: Vec<AtomicU64> = (0..nthreads).map(|_| AtomicU64::new(0)).collect();
    g.bench_function(BenchmarkId::new("unpadded", nthreads), |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for t in 0..nthreads {
                    let c = &unpadded[t];
                    s.spawn(move || {
                        for _ in 0..increments {
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
        })
    });

    // Padded: same counters, one per cache line (the Force layout).
    let padded: Vec<CachePadded<AtomicU64>> = (0..nthreads)
        .map(|_| CachePadded::new(AtomicU64::new(0)))
        .collect();
    g.bench_function(BenchmarkId::new("padded", nthreads), |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for t in 0..nthreads {
                    let c = &padded[t];
                    s.spawn(move || {
                        for _ in 0..increments {
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
        })
    });
    g.finish();
}

criterion_group!(benches, bench_padding);
criterion_main!(benches);
