//! Barrier algorithm suite — the \[AJ87\] companion study.
//!
//! The paper's `Barrier` macro cites Arenstorf & Jordan, *Comparing
//! Barrier Algorithms* (ECE Tech. Rept. 87-1-2), as the quantitative basis
//! for its barrier implementation.  This module reconstructs that
//! comparison: the Force's own two-lock barrier next to the classic
//! alternatives, all behind one [`BarrierAlg`] interface so EXP-3 can
//! sweep them uniformly.
//!
//! All algorithms are re-enterable (usable repeatedly in a loop) and all
//! per-process mutable state is held in cache-padded per-pid slots owned
//! exclusively by that pid.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use force_machdep::fault;
use force_machdep::{Backoff, CachePadded, Construct, Machine};

use crate::barrier::TwoLockBarrier;

/// A reusable N-process barrier algorithm.
pub trait BarrierAlg: Send + Sync {
    /// Block until all `n` processes have called `wait` for this episode.
    /// `pid` must be in `0..n` and each pid must be used by exactly one
    /// process.
    fn wait(&self, pid: usize);

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Number of processes.
    fn nproc(&self) -> usize;
}

/// The Force's own two-lock barrier (§4.2), adapted to the suite.
pub struct TwoLockAlg {
    inner: TwoLockBarrier,
}

impl TwoLockAlg {
    /// Wrap a fresh two-lock barrier for `n` processes.
    pub fn new(machine: &Machine, n: usize) -> Self {
        TwoLockAlg {
            inner: TwoLockBarrier::new(machine, n),
        }
    }
}

impl BarrierAlg for TwoLockAlg {
    fn wait(&self, _pid: usize) {
        self.inner.wait();
    }

    fn name(&self) -> &'static str {
        "two-lock (Force)"
    }

    fn nproc(&self) -> usize {
        self.inner.nproc()
    }
}

/// Central counter with sense reversal: one atomic counter, one global
/// sense flag, per-pid local sense.
pub struct SenseReversalBarrier {
    n: usize,
    count: CachePadded<AtomicUsize>,
    sense: CachePadded<AtomicBool>,
    local_sense: Vec<CachePadded<AtomicBool>>,
}

impl SenseReversalBarrier {
    /// A sense-reversal barrier for `n` processes.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        SenseReversalBarrier {
            n,
            count: CachePadded::new(AtomicUsize::new(0)),
            sense: CachePadded::new(AtomicBool::new(false)),
            local_sense: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
        }
    }
}

impl BarrierAlg for SenseReversalBarrier {
    fn wait(&self, pid: usize) {
        // Flip this process's sense; the episode completes when the global
        // sense matches it.
        let mine = !self.local_sense[pid].load(Ordering::Relaxed);
        self.local_sense[pid].store(mine, Ordering::Relaxed);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(mine, Ordering::Release);
        } else {
            let backoff = Backoff::new();
            let _park = fault::parked(Construct::Barrier);
            while self.sense.load(Ordering::Acquire) != mine {
                fault::check_cancel();
                backoff.snooze();
            }
        }
    }

    fn name(&self) -> &'static str {
        "central counter (sense reversal)"
    }

    fn nproc(&self) -> usize {
        self.n
    }
}

/// Dissemination (butterfly) barrier: ⌈log₂ n⌉ rounds, each process
/// signals a partner at distance 2^k and waits for the symmetric signal.
///
/// Signals are monotone epoch counters, which makes every episode
/// self-identifying and the structure trivially re-enterable.
pub struct DisseminationBarrier {
    n: usize,
    rounds: usize,
    /// `flags[pid][round]`: epoch counter incremented by the process at
    /// distance `-2^round` from `pid`.
    flags: Vec<Vec<CachePadded<AtomicU64>>>,
    /// Per-pid episode number; written only by its owner.
    episode: Vec<CachePadded<AtomicU64>>,
}

impl DisseminationBarrier {
    /// A dissemination barrier for `n` processes.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        let rounds = usize::BITS as usize - (n - 1).leading_zeros() as usize; // ceil(log2 n), 0 for n=1
        DisseminationBarrier {
            n,
            rounds,
            flags: (0..n)
                .map(|_| {
                    (0..rounds)
                        .map(|_| CachePadded::new(AtomicU64::new(0)))
                        .collect()
                })
                .collect(),
            episode: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }
}

impl BarrierAlg for DisseminationBarrier {
    fn wait(&self, pid: usize) {
        let e = self.episode[pid].load(Ordering::Relaxed) + 1;
        self.episode[pid].store(e, Ordering::Relaxed);
        for k in 0..self.rounds {
            let partner = (pid + (1 << k)) % self.n;
            self.flags[partner][k].fetch_add(1, Ordering::AcqRel);
            let backoff = Backoff::new();
            let _park = fault::parked(Construct::Barrier);
            while self.flags[pid][k].load(Ordering::Acquire) < e {
                fault::check_cancel();
                backoff.snooze();
            }
        }
    }

    fn name(&self) -> &'static str {
        "dissemination"
    }

    fn nproc(&self) -> usize {
        self.n
    }
}

/// Tournament barrier: statically paired elimination rounds; the champion
/// releases its defeated partners down the same tree.
pub struct TournamentBarrier {
    n: usize,
    rounds: usize,
    /// `arrive[pid][round]`: epoch counter bumped by the round's loser.
    arrive: Vec<Vec<CachePadded<AtomicU64>>>,
    /// `release[pid]`: epoch counter bumped by the process that defeated
    /// `pid`.
    release: Vec<CachePadded<AtomicU64>>,
    episode: Vec<CachePadded<AtomicU64>>,
}

impl TournamentBarrier {
    /// A tournament barrier for `n` processes.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        let rounds = if n == 1 {
            0
        } else {
            usize::BITS as usize - (n - 1).leading_zeros() as usize
        };
        TournamentBarrier {
            n,
            rounds,
            arrive: (0..n)
                .map(|_| {
                    (0..rounds)
                        .map(|_| CachePadded::new(AtomicU64::new(0)))
                        .collect()
                })
                .collect(),
            release: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            episode: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Release, in reverse round order, every partner this process
    /// defeated in rounds `0..upto`.
    fn release_defeated(&self, pid: usize, upto: usize, _e: u64) {
        for k in (0..upto).rev() {
            let partner = pid + (1 << k);
            if partner < self.n {
                self.release[partner].fetch_add(1, Ordering::AcqRel);
            }
        }
    }
}

impl BarrierAlg for TournamentBarrier {
    fn wait(&self, pid: usize) {
        let e = self.episode[pid].load(Ordering::Relaxed) + 1;
        self.episode[pid].store(e, Ordering::Relaxed);
        let backoff = Backoff::new();
        for k in 0..self.rounds {
            if pid.is_multiple_of(1 << (k + 1)) {
                // Winner of round k: wait for the loser (if one exists).
                let partner = pid + (1 << k);
                if partner < self.n {
                    let _park = fault::parked(Construct::Barrier);
                    while self.arrive[pid][k].load(Ordering::Acquire) < e {
                        fault::check_cancel();
                        backoff.snooze();
                    }
                }
            } else {
                // Loser: report to the winner, wait to be released, then
                // release everyone *we* defeated in earlier rounds.
                let winner = pid - (1 << k);
                self.arrive[winner][k].fetch_add(1, Ordering::AcqRel);
                let _park = fault::parked(Construct::Barrier);
                while self.release[pid].load(Ordering::Acquire) < e {
                    fault::check_cancel();
                    backoff.snooze();
                }
                self.release_defeated(pid, k, e);
                return;
            }
        }
        // Champion: all rounds won; start the release cascade.
        self.release_defeated(pid, self.rounds, e);
    }

    fn name(&self) -> &'static str {
        "tournament"
    }

    fn nproc(&self) -> usize {
        self.n
    }
}

/// Software combining tree barrier: arrivals combine up a tree of arity
/// `arity`; the root completion publishes a global episode that releases
/// everyone.
pub struct CombiningTreeBarrier {
    n: usize,
    /// One counter per tree node, leaves first.  Node i's children are
    /// processes (leaf layer) or lower nodes; we store cumulative arrival
    /// counts per node per episode via monotone counters.
    nodes: Vec<CachePadded<AtomicU64>>,
    /// Children count of each node.
    fanin: Vec<usize>,
    /// Parent index of each node (root = usize::MAX).
    parent: Vec<usize>,
    /// Leaf node index of each pid.
    leaf_of: Vec<usize>,
    done: CachePadded<AtomicU64>,
    episode: Vec<CachePadded<AtomicU64>>,
}

impl CombiningTreeBarrier {
    /// A combining-tree barrier for `n` processes with node fan-in `arity`.
    pub fn new(n: usize, arity: usize) -> Self {
        assert!(n > 0 && arity >= 2);
        // Build the tree bottom-up: level 0 groups processes by `arity`.
        let mut level_sizes = Vec::new();
        let mut width = n.div_ceil(arity);
        loop {
            level_sizes.push(width);
            if width == 1 {
                break;
            }
            width = width.div_ceil(arity);
        }
        let total: usize = level_sizes.iter().sum();
        let mut fanin = vec![0usize; total];
        let mut parent = vec![usize::MAX; total];
        // Node indices: level 0 first, then level 1, ...
        let mut level_base = vec![0usize; level_sizes.len()];
        for l in 1..level_sizes.len() {
            level_base[l] = level_base[l - 1] + level_sizes[l - 1];
        }
        let mut leaf_of = vec![0usize; n];
        for (pid, slot) in leaf_of.iter_mut().enumerate() {
            let leaf = pid / arity;
            *slot = leaf;
            fanin[leaf] += 1;
        }
        for l in 0..level_sizes.len() - 1 {
            for i in 0..level_sizes[l] {
                let node = level_base[l] + i;
                let p = level_base[l + 1] + i / arity;
                parent[node] = p;
                fanin[p] += 1;
            }
        }
        CombiningTreeBarrier {
            n,
            nodes: (0..total)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            fanin,
            parent,
            leaf_of,
            done: CachePadded::new(AtomicU64::new(0)),
            episode: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    fn arrive_at(&self, node: usize, e: u64) {
        let arrivals = self.nodes[node].fetch_add(1, Ordering::AcqRel) + 1;
        // Episode e at this node completes at e * fanin arrivals.
        if arrivals == e * self.fanin[node] as u64 {
            let p = self.parent[node];
            if p == usize::MAX {
                self.done.fetch_add(1, Ordering::AcqRel);
            } else {
                self.arrive_at(p, e);
            }
        }
    }
}

impl BarrierAlg for CombiningTreeBarrier {
    fn wait(&self, pid: usize) {
        let e = self.episode[pid].load(Ordering::Relaxed) + 1;
        self.episode[pid].store(e, Ordering::Relaxed);
        self.arrive_at(self.leaf_of[pid], e);
        let backoff = Backoff::new();
        let _park = fault::parked(Construct::Barrier);
        while self.done.load(Ordering::Acquire) < e {
            fault::check_cancel();
            backoff.snooze();
        }
    }

    fn name(&self) -> &'static str {
        "combining tree"
    }

    fn nproc(&self) -> usize {
        self.n
    }
}

/// MCS static tree barrier (Mellor-Crummey & Scott): each process has a
/// fixed parent in a 4-ary *arrival* tree and signals it when its own
/// subtree has arrived; wakeup flows down a binary tree.  All waiting is
/// on process-local (cache-padded) words.
pub struct McsTreeBarrier {
    n: usize,
    /// `child_arrived[p]`: epoch counters bumped by `p`'s arrival
    /// children (combined into one counter per parent; a parent with k
    /// children waits for k increments per episode).
    arrivals: Vec<CachePadded<AtomicU64>>,
    arrival_children: Vec<usize>,
    /// `wakeup[p]`: epoch counter bumped by `p`'s wakeup parent.
    wakeup: Vec<CachePadded<AtomicU64>>,
    episode: Vec<CachePadded<AtomicU64>>,
}

impl McsTreeBarrier {
    /// An MCS tree barrier for `n` processes (4-ary arrival, binary
    /// wakeup, as in the original paper).
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        let mut arrival_children = vec![0usize; n];
        for p in 1..n {
            let parent = (p - 1) / 4;
            arrival_children[parent] += 1;
        }
        McsTreeBarrier {
            n,
            arrivals: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            arrival_children,
            wakeup: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            episode: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }
}

impl BarrierAlg for McsTreeBarrier {
    fn wait(&self, pid: usize) {
        let e = self.episode[pid].load(Ordering::Relaxed) + 1;
        self.episode[pid].store(e, Ordering::Relaxed);
        let backoff = Backoff::new();
        // Arrival: wait for my subtree, then report to my arrival parent.
        let need = self.arrival_children[pid] as u64 * e;
        {
            let _park = fault::parked(Construct::Barrier);
            while self.arrivals[pid].load(Ordering::Acquire) < need {
                fault::check_cancel();
                backoff.snooze();
            }
        }
        if pid != 0 {
            let parent = (pid - 1) / 4;
            self.arrivals[parent].fetch_add(1, Ordering::AcqRel);
            // Wait for wakeup from the binary wakeup tree.
            let _park = fault::parked(Construct::Barrier);
            while self.wakeup[pid].load(Ordering::Acquire) < e {
                fault::check_cancel();
                backoff.snooze();
            }
        }
        // Wake my binary-tree children.
        for c in [2 * pid + 1, 2 * pid + 2] {
            if c < self.n {
                self.wakeup[c].fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    fn name(&self) -> &'static str {
        "MCS tree"
    }

    fn nproc(&self) -> usize {
        self.n
    }
}

/// Build the whole \[AJ87\]-style suite for `n` processes.
pub fn all_algorithms(machine: &Machine, n: usize) -> Vec<Box<dyn BarrierAlg>> {
    vec![
        Box::new(TwoLockAlg::new(machine, n)),
        Box::new(SenseReversalBarrier::new(n)),
        Box::new(DisseminationBarrier::new(n)),
        Box::new(TournamentBarrier::new(n)),
        Box::new(CombiningTreeBarrier::new(n, 4)),
        Box::new(McsTreeBarrier::new(n)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use force_machdep::{spawn_force, MachineId};
    use std::sync::atomic::AtomicUsize as Counter;
    use std::sync::Arc;

    /// The canonical barrier correctness check: every process increments a
    /// shared counter each round, crosses the barrier, and must observe
    /// all `n` increments of the round.
    fn check(alg: &dyn BarrierAlg, rounds: usize) {
        let n = alg.nproc();
        let m = Machine::new(MachineId::EncoreMultimax);
        let counter = Counter::new(0);
        spawn_force(n, m.stats(), |pid| {
            for r in 0..rounds {
                counter.fetch_add(1, Ordering::SeqCst);
                alg.wait(pid);
                let seen = counter.load(Ordering::SeqCst);
                assert!(
                    seen >= (r + 1) * n,
                    "{}: round {r}: saw {seen} < {}",
                    alg.name(),
                    (r + 1) * n
                );
                alg.wait(pid);
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), rounds * n);
    }

    #[test]
    fn sense_reversal_synchronizes() {
        for n in [1, 2, 3, 4, 7, 8] {
            check(&SenseReversalBarrier::new(n), 30);
        }
    }

    #[test]
    fn dissemination_synchronizes() {
        for n in [1, 2, 3, 4, 5, 8, 9] {
            check(&DisseminationBarrier::new(n), 30);
        }
    }

    #[test]
    fn tournament_synchronizes() {
        for n in [1, 2, 3, 4, 5, 6, 7, 8, 11] {
            check(&TournamentBarrier::new(n), 30);
        }
    }

    #[test]
    fn combining_tree_synchronizes() {
        for n in [1, 2, 3, 4, 5, 8, 13, 16] {
            check(&CombiningTreeBarrier::new(n, 4), 30);
        }
        check(&CombiningTreeBarrier::new(9, 2), 30);
        check(&CombiningTreeBarrier::new(9, 3), 30);
    }

    #[test]
    fn two_lock_adapter_synchronizes() {
        let m = Machine::new(MachineId::Flex32);
        for n in [1, 2, 4, 6] {
            check(&TwoLockAlg::new(&m, n), 30);
        }
    }

    #[test]
    fn suite_contains_six_algorithms() {
        let m = Machine::new(MachineId::Hep);
        let algs = all_algorithms(&m, 4);
        assert_eq!(algs.len(), 6);
        let names: Vec<_> = algs.iter().map(|a| a.name()).collect();
        assert!(names.contains(&"two-lock (Force)"));
        assert!(names.contains(&"dissemination"));
        assert!(names.contains(&"MCS tree"));
    }

    #[test]
    fn mcs_tree_synchronizes() {
        for n in [1, 2, 3, 4, 5, 8, 13, 16] {
            check(&McsTreeBarrier::new(n), 30);
        }
    }

    #[test]
    fn heavy_reentry_stress() {
        // Many episodes back-to-back with no separating work: the classic
        // way to catch a non-re-enterable barrier.
        let n = 8;
        let algs: Vec<Arc<dyn BarrierAlg>> = vec![
            Arc::new(SenseReversalBarrier::new(n)),
            Arc::new(DisseminationBarrier::new(n)),
            Arc::new(TournamentBarrier::new(n)),
            Arc::new(CombiningTreeBarrier::new(n, 4)),
            Arc::new(McsTreeBarrier::new(n)),
        ];
        let m = Machine::new(MachineId::EncoreMultimax);
        for alg in algs {
            spawn_force(n, m.stats(), |pid| {
                for _ in 0..500 {
                    alg.wait(pid);
                }
            });
        }
    }
}
