//! DOALL work distribution — §3.3 / §4.2.
//!
//! "Segments of code that can be executed concurrently, in any order, can
//! be distributed.  In case of singly (doubly) nested loops, the loop
//! indices (index pairs) specify concurrently executable sequential
//! streams of code, which are split up in an unspecified way for
//! concurrent execution (DOALL loops)."
//!
//! The paper's two flavours:
//!
//! * **prescheduled** (`Presched DO`) — "completely machine independent,
//!   since only the number of executing processes is needed to distribute
//!   the index values among processes": process `p` takes trips
//!   `p, p+nproc, p+2·nproc, …` (cyclic) or a contiguous block.
//! * **selfscheduled** (`Selfsched DO`) — "requires a shared variable as
//!   the loop index which must be updated by processes looking for more
//!   work": trips are claimed dynamically, one (or a chunk) at a time.
//!
//! Both are instances of a [`SchedulePolicy`], executed by one internal
//! driver (`dispatch_trips`) over the linearized trip space `0..n`; the
//! guided (tapering-chunk) and work-stealing policies are extensions on
//! the same driver.  The named methods (`presched_do`,
//! `selfsched_do`, …) are thin wrappers fixing the policy; the `doall*`
//! methods take an explicit policy or inherit the run's default.
//!
//! Every DOALL ends with the barrier exit protocol of the §4.2 expansion,
//! so the loop is complete (and re-enterable) when any process passes
//! `End … DO`.  The native selfscheduled implementation claims trip
//! numbers with one atomic fetch-add rather than the expansion's
//! lock/read/increment/unlock sequence — observationally identical (each
//! trip claimed exactly once, in increment order) and tested as such; the
//! interpreter path (`force-fortran`) executes the paper's literal
//! lock-based idiom.

use std::sync::atomic::{AtomicU64, Ordering};

use force_machdep::fault;
use force_machdep::trace::{self, EventKind};
use force_machdep::{Construct, WorkQueues};

use crate::player::Player;
use crate::schedule::{ForceRange, SchedulePolicy};

/// Shared state of one selfscheduled or guided loop occurrence: the next
/// unclaimed trip number (the `K_shared` cell plus `LOOP100` lock, fused
/// into one atomic).
struct SelfSchedState {
    next: AtomicU64,
}

/// Distribute the linearized trip space `0..n` over the force according
/// to `policy`, invoking `body` once per claimed trip.  Returns the
/// number of trips this process executed.
///
/// Pure distribution: construct entry, fault injection, trip tracing,
/// and the end barrier belong to the callers (the DOALL wrappers here
/// and the selfscheduled Pcase), which is what lets every scheduling
/// construct share one driver without double-counting its own construct.
pub(crate) fn dispatch_trips(
    player: &Player,
    policy: SchedulePolicy,
    n: u64,
    body: &mut dyn FnMut(u64),
) -> u64 {
    match policy {
        SchedulePolicy::Cyclic => {
            let mut executed = 0u64;
            let mut trip = player.pid() as u64;
            while trip < n {
                body(trip);
                executed += 1;
                trip += player.nproc() as u64;
            }
            executed
        }
        SchedulePolicy::Block => {
            let (lo, hi) = block_share(n, player.pid() as u64, player.nproc() as u64);
            for trip in lo..hi {
                body(trip);
            }
            hi - lo
        }
        SchedulePolicy::Selfsched { chunk } => {
            assert!(chunk > 0, "selfscheduling chunk must be positive");
            let state = player.collective(|| SelfSchedState {
                next: AtomicU64::new(0),
            });
            let mut executed = 0u64;
            loop {
                let lo = state.next.fetch_add(chunk, Ordering::Relaxed);
                if lo >= n {
                    break;
                }
                let hi = (lo + chunk).min(n);
                for trip in lo..hi {
                    body(trip);
                }
                executed += hi - lo;
            }
            executed
        }
        SchedulePolicy::Guided { min_chunk } => {
            // Tapering chunks: each claim takes half of what an even
            // split of the remaining trips would give this force, never
            // less than `min_chunk`.  Large early chunks amortize the
            // shared-counter traffic; small late chunks absorb imbalance.
            let min_chunk = min_chunk.max(1);
            let nproc = player.nproc() as u64;
            let state = player.collective(|| SelfSchedState {
                next: AtomicU64::new(0),
            });
            let mut executed = 0u64;
            let mut cur = state.next.load(Ordering::Relaxed);
            while cur < n {
                let remaining = n - cur;
                let chunk = (remaining / (2 * nproc)).max(min_chunk).min(remaining);
                match state.next.compare_exchange_weak(
                    cur,
                    cur + chunk,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        for trip in cur..cur + chunk {
                            body(trip);
                        }
                        executed += chunk;
                        cur = state.next.load(Ordering::Relaxed);
                    }
                    Err(actual) => cur = actual,
                }
            }
            executed
        }
        SchedulePolicy::Steal => {
            let queues = player.collective(|| seed_steal_queues(n, player.nproc()));
            let pid = player.pid();
            let mut executed = 0u64;
            loop {
                let (lo, hi) = if let Some(part) = queues.pop(pid) {
                    part
                } else {
                    let out = queues.steal(pid);
                    fault::count_steal(out.taken.is_some(), out.failed_probes);
                    match out.taken {
                        Some((victim, part)) => {
                            trace::event(EventKind::Steal, victim as u32);
                            part
                        }
                        // Local deque dry and a full sweep found every
                        // victim empty: any remaining parts are already
                        // held by their executors.
                        None => break,
                    }
                };
                for trip in lo..hi {
                    body(trip);
                }
                executed += hi - lo;
            }
            executed
        }
    }
}

/// The contiguous block of trips process `p` owns under block
/// distribution: the first `n mod nproc` processes take one extra trip.
fn block_share(n: u64, p: u64, nproc: u64) -> (u64, u64) {
    let base = n / nproc;
    let extra = n % nproc;
    if p < extra {
        (p * (base + 1), p * (base + 1) + base + 1)
    } else {
        let lo = extra * (base + 1) + (p - extra) * base;
        (lo, lo + base)
    }
}

/// Seed the steal deques: each process's block share of `0..n`, split
/// into stealable parts of roughly an eighth of a share each, pushed in
/// reverse so the owner's LIFO pops run in ascending trip order.
fn seed_steal_queues(n: u64, nproc: usize) -> WorkQueues<(u64, u64)> {
    let queues = WorkQueues::new(nproc);
    let part = (n / (nproc as u64 * 8)).max(1);
    for p in 0..nproc {
        let (lo, hi) = block_share(n, p as u64, nproc as u64);
        let mut parts = Vec::new();
        let mut at = lo;
        while at < hi {
            let end = (at + part).min(hi);
            parts.push((at, end));
            at = end;
        }
        for piece in parts.into_iter().rev() {
            queues.push(p, piece);
        }
    }
    queues
}

/// The shared DOALL frame: construct entry, fault injection, the policy
/// dispatch, trip-count tracing, and the §4.2 end barrier.
fn run_doall(player: &Player, policy: SchedulePolicy, n: u64, body: &mut dyn FnMut(u64)) {
    let _c = fault::enter(Construct::Doall);
    fault::inject(Construct::Doall);
    let executed = dispatch_trips(player, policy, n, body);
    trace::doall_trips(executed);
    player.barrier();
}

impl Player {
    /// A singly nested DOALL under an explicit [`SchedulePolicy`],
    /// ending with the DOALL barrier.
    ///
    /// # Panics
    /// Panics if the policy is `Selfsched { chunk: 0 }`.
    pub fn doall_with(
        &self,
        policy: SchedulePolicy,
        range: impl Into<ForceRange>,
        mut body: impl FnMut(i64),
    ) {
        let range = range.into();
        let n = range.count();
        run_doall(self, policy, n, &mut |trip| body(range.nth(trip)));
    }

    /// A singly nested DOALL under the run's default policy
    /// (`Force::with_default_schedule` / `RunOptions::default_schedule`;
    /// the paper's one-trip selfscheduling when unset).
    pub fn doall(&self, range: impl Into<ForceRange>, body: impl FnMut(i64)) {
        self.doall_with(fault::current_default_schedule(), range, body)
    }

    /// A doubly nested DOALL under an explicit [`SchedulePolicy`]: the
    /// policy distributes the linearized pair space, so every flavour —
    /// block and guided included — covers each index pair exactly once.
    pub fn doall2_with(
        &self,
        policy: SchedulePolicy,
        outer: impl Into<ForceRange>,
        inner: impl Into<ForceRange>,
        mut body: impl FnMut(i64, i64),
    ) {
        let outer = outer.into();
        let inner = inner.into();
        let ni = inner.count();
        let n = outer.count() * ni;
        run_doall(self, policy, n, &mut |trip| {
            body(outer.nth(trip / ni), inner.nth(trip % ni))
        });
    }

    /// A doubly nested DOALL under the run's default policy.
    pub fn doall2(
        &self,
        outer: impl Into<ForceRange>,
        inner: impl Into<ForceRange>,
        body: impl FnMut(i64, i64),
    ) {
        self.doall2_with(fault::current_default_schedule(), outer, inner, body)
    }

    /// `Presched DO` over a singly nested loop: cyclic (round-robin)
    /// distribution of index values, then the DOALL-end barrier.
    pub fn presched_do(&self, range: impl Into<ForceRange>, body: impl FnMut(i64)) {
        self.doall_with(SchedulePolicy::Cyclic, range, body)
    }

    /// `Presched DO` with *block* distribution: process `p` takes one
    /// contiguous chunk of trips.  An extension (the paper's presched is
    /// cyclic); useful when the body has spatial locality.
    pub fn presched_do_block(&self, range: impl Into<ForceRange>, body: impl FnMut(i64)) {
        self.doall_with(SchedulePolicy::Block, range, body)
    }

    /// `Selfsched DO`: dynamic one-trip-at-a-time distribution, then the
    /// DOALL-end barrier.
    pub fn selfsched_do(&self, range: impl Into<ForceRange>, body: impl FnMut(i64)) {
        self.doall_with(SchedulePolicy::Selfsched { chunk: 1 }, range, body)
    }

    /// Chunked selfscheduling: claim `chunk` consecutive trips per visit
    /// to the shared index — the natural generalization of the §4.2 loop
    /// (chunk = 1 is the paper's construct).
    ///
    /// # Panics
    /// Panics if `chunk` is zero.
    pub fn selfsched_do_chunked(
        &self,
        range: impl Into<ForceRange>,
        chunk: u64,
        body: impl FnMut(i64),
    ) {
        self.doall_with(SchedulePolicy::Selfsched { chunk }, range, body)
    }

    /// Doubly nested `Presched DO`: cyclic distribution of index *pairs*
    /// `(i, j)` over the linearized pair space, then the end barrier.
    pub fn presched_do2(
        &self,
        outer: impl Into<ForceRange>,
        inner: impl Into<ForceRange>,
        body: impl FnMut(i64, i64),
    ) {
        self.doall2_with(SchedulePolicy::Cyclic, outer, inner, body)
    }

    /// Doubly nested `Selfsched DO`: dynamic distribution of index pairs.
    pub fn selfsched_do2(
        &self,
        outer: impl Into<ForceRange>,
        inner: impl Into<ForceRange>,
        body: impl FnMut(i64, i64),
    ) {
        self.doall2_with(SchedulePolicy::Selfsched { chunk: 1 }, outer, inner, body)
    }
}

#[cfg(test)]
mod tests {
    use crate::force::Force;
    use crate::schedule::{ForceRange, SchedulePolicy};
    use force_machdep::Mutex;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    /// Run a DOALL flavour and assert every index executes exactly once.
    fn coverage(
        nproc: usize,
        range: ForceRange,
        run: impl Fn(&crate::player::Player, &dyn Fn(i64)) + Sync,
    ) {
        let force = Force::new(nproc);
        let hits: Mutex<HashMap<i64, usize>> = Mutex::new(HashMap::new());
        force.run(|p| {
            run(p, &|i| {
                *hits.lock().entry(i).or_insert(0) += 1;
            });
        });
        let hits = hits.into_inner();
        let expected: Vec<i64> = range.iter().collect();
        assert_eq!(
            hits.len(),
            expected.len(),
            "wrong number of distinct indices"
        );
        for i in expected {
            assert_eq!(
                hits.get(&i),
                Some(&1),
                "index {i} not executed exactly once"
            );
        }
    }

    #[test]
    fn presched_covers_every_index_once() {
        for nproc in [1, 2, 3, 7] {
            coverage(nproc, ForceRange::to(1, 50), |p, f| {
                p.presched_do(ForceRange::to(1, 50), f);
            });
        }
    }

    #[test]
    fn presched_block_covers_every_index_once() {
        for nproc in [1, 2, 3, 7, 11] {
            coverage(nproc, ForceRange::to(0, 49), |p, f| {
                p.presched_do_block(ForceRange::to(0, 49), f);
            });
        }
    }

    #[test]
    fn selfsched_covers_every_index_once() {
        for nproc in [1, 2, 4, 8] {
            coverage(nproc, ForceRange::new(10, 100, 5), |p, f| {
                p.selfsched_do(ForceRange::new(10, 100, 5), f);
            });
        }
    }

    #[test]
    fn chunked_selfsched_covers_every_index_once() {
        for chunk in [1, 3, 7, 100] {
            coverage(4, ForceRange::to(0, 99), move |p, f| {
                p.selfsched_do_chunked(ForceRange::to(0, 99), chunk, f);
            });
        }
    }

    #[test]
    fn every_policy_covers_every_index_once() {
        // The unified driver's coverage guarantee, policy by policy,
        // including the strided-range mapping.
        for policy in SchedulePolicy::all() {
            for nproc in [1, 3, 8] {
                coverage(nproc, ForceRange::new(3, 61, 2), move |p, f| {
                    p.doall_with(policy, ForceRange::new(3, 61, 2), f);
                });
            }
        }
    }

    #[test]
    fn every_policy_covers_every_pair_once() {
        // DO2 parity: every policy covers the cross product of a doubly
        // nested loop exactly once, negative inner stride included.
        for policy in SchedulePolicy::all() {
            let force = Force::new(5);
            let hits = Mutex::new(HashMap::new());
            force.run(|p| {
                p.doall2_with(
                    policy,
                    ForceRange::to(1, 6),
                    ForceRange::new(10, 2, -2),
                    |i, j| {
                        *hits.lock().entry((i, j)).or_insert(0usize) += 1;
                    },
                );
            });
            let hits = hits.into_inner();
            assert_eq!(hits.len(), 30, "{}", policy.name());
            assert!(hits.values().all(|&c| c == 1), "{}", policy.name());
        }
    }

    #[test]
    fn every_policy_completes_empty_loops() {
        let force = Force::new(4);
        let count = AtomicUsize::new(0);
        force.run(|p| {
            for policy in SchedulePolicy::all() {
                p.doall_with(policy, ForceRange::to(5, 4), |_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn steal_doall_steals_from_a_stalled_peer() {
        // Two processes, sixteen one-trip parts (eight seeded per deque).
        // Process 0 stalls inside its first trip until everything else is
        // done, so process 1 must drain process 0's deque by stealing.
        let force = Force::new(2);
        let executed = AtomicU64::new(0);
        force.run(|p| {
            let mut stalled = false;
            p.doall_with(SchedulePolicy::Steal, ForceRange::to(0, 15), |_i| {
                executed.fetch_add(1, Ordering::SeqCst);
                if p.pid() == 0 && !stalled {
                    stalled = true;
                    while executed.load(Ordering::SeqCst) < 16 {
                        std::thread::yield_now();
                    }
                }
            });
        });
        assert_eq!(executed.load(Ordering::SeqCst), 16);
        let stats = force.last_job_stats().expect("clean run has stats");
        assert!(
            (7..=8).contains(&stats.steals),
            "peer must have drained the stalled process's deque: {} steals",
            stats.steals
        );
        assert!(
            stats.steal_attempts_failed >= 2,
            "every exit sweep finds only empty victims"
        );
    }

    #[test]
    fn negative_stride_loops_work() {
        coverage(3, ForceRange::new(20, 2, -3), |p, f| {
            p.selfsched_do(ForceRange::new(20, 2, -3), f);
        });
        coverage(3, ForceRange::new(20, 2, -3), |p, f| {
            p.presched_do(ForceRange::new(20, 2, -3), f);
        });
    }

    #[test]
    fn empty_loops_complete() {
        let force = Force::new(4);
        let count = AtomicUsize::new(0);
        force.run(|p| {
            p.presched_do(ForceRange::to(5, 4), |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            p.selfsched_do(ForceRange::to(5, 4), |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn doall_is_a_barrier() {
        // After the DOALL, every process must observe all iterations done.
        let force = Force::new(6);
        let done = AtomicUsize::new(0);
        force.run(|p| {
            p.selfsched_do(ForceRange::to(1, 100), |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(done.load(Ordering::SeqCst), 100);
        });
    }

    #[test]
    fn consecutive_doalls_do_not_interfere() {
        let force = Force::new(4);
        let a = AtomicUsize::new(0);
        let b = AtomicUsize::new(0);
        force.run(|p| {
            for _ in 0..10 {
                p.selfsched_do(ForceRange::to(1, 20), |_| {
                    a.fetch_add(1, Ordering::Relaxed);
                });
                p.selfsched_do(ForceRange::to(1, 30), |_| {
                    b.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(a.load(Ordering::Relaxed), 200);
        assert_eq!(b.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn doubly_nested_pairs_cover_the_cross_product() {
        let force = Force::new(5);
        let hits = Mutex::new(HashMap::new());
        force.run(|p| {
            p.selfsched_do2(ForceRange::to(1, 6), ForceRange::to(1, 9), |i, j| {
                *hits.lock().entry((i, j)).or_insert(0usize) += 1;
            });
        });
        let hits = hits.into_inner();
        assert_eq!(hits.len(), 54);
        assert!(hits.values().all(|&c| c == 1));

        let hits = Mutex::new(HashMap::new());
        force.run(|p| {
            p.presched_do2(ForceRange::to(1, 4), ForceRange::to(1, 7), |i, j| {
                *hits.lock().entry((i, j)).or_insert(0usize) += 1;
            });
        });
        let hits = hits.into_inner();
        assert_eq!(hits.len(), 28);
        assert!(hits.values().all(|&c| c == 1));
    }

    #[test]
    fn presched_is_deterministic_per_process() {
        // Cyclic distribution: process p gets trips p, p+nproc, ...
        let force = Force::new(4);
        let per: Mutex<HashMap<usize, Vec<i64>>> = Mutex::new(HashMap::new());
        force.run(|p| {
            let mut mine = Vec::new();
            p.presched_do(ForceRange::to(0, 11), |i| mine.push(i));
            per.lock().insert(p.pid(), mine);
        });
        let per = per.into_inner();
        assert_eq!(per[&0], vec![0, 4, 8]);
        assert_eq!(per[&1], vec![1, 5, 9]);
        assert_eq!(per[&3], vec![3, 7, 11]);
    }

    #[test]
    fn doall_follows_the_sessions_default_schedule() {
        // With a cyclic session default, the bare `doall` distributes
        // exactly like `presched_do`.
        let force = Force::new(4).with_default_schedule(SchedulePolicy::Cyclic);
        let per: Mutex<HashMap<usize, Vec<i64>>> = Mutex::new(HashMap::new());
        force.run(|p| {
            let mut mine = Vec::new();
            p.doall(ForceRange::to(0, 11), |i| mine.push(i));
            per.lock().insert(p.pid(), mine);
        });
        let per = per.into_inner();
        assert_eq!(per[&0], vec![0, 4, 8]);
        assert_eq!(per[&2], vec![2, 6, 10]);
    }

    #[test]
    fn guided_chunks_taper_but_respect_the_floor() {
        // One process: the claim sequence is deterministic — half the
        // remainder each visit, never below min_chunk.  Recorded via the
        // trip values each claim starts at.
        let force = Force::new(1);
        let seen = Mutex::new(Vec::new());
        force.run(|p| {
            p.doall_with(
                SchedulePolicy::Guided { min_chunk: 3 },
                ForceRange::to(0, 99),
                |i| seen.lock().push(i),
            );
        });
        let seen = seen.into_inner();
        assert_eq!(seen, (0..=99).collect::<Vec<_>>(), "in-order on one proc");
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_rejected() {
        let force = Force::new(1);
        force.run(|p| p.selfsched_do_chunked(ForceRange::to(1, 5), 0, |_| {}));
    }
}
