//! DOALL work distribution — §3.3 / §4.2.
//!
//! "Segments of code that can be executed concurrently, in any order, can
//! be distributed.  In case of singly (doubly) nested loops, the loop
//! indices (index pairs) specify concurrently executable sequential
//! streams of code, which are split up in an unspecified way for
//! concurrent execution (DOALL loops)."
//!
//! Two flavours, as in the paper:
//!
//! * **prescheduled** (`Presched DO`) — "completely machine independent,
//!   since only the number of executing processes is needed to distribute
//!   the index values among processes": process `p` takes trips
//!   `p, p+nproc, p+2·nproc, …` (cyclic) or a contiguous block.
//! * **selfscheduled** (`Selfsched DO`) — "requires a shared variable as
//!   the loop index which must be updated by processes looking for more
//!   work": trips are claimed dynamically, one (or a chunk) at a time.
//!
//! Every DOALL ends with the barrier exit protocol of the §4.2 expansion,
//! so the loop is complete (and re-enterable) when any process passes
//! `End … DO`.  The native selfscheduled implementation claims trip
//! numbers with one atomic fetch-add rather than the expansion's
//! lock/read/increment/unlock sequence — observationally identical (each
//! trip claimed exactly once, in increment order) and tested as such; the
//! interpreter path (`force-fortran`) executes the paper's literal
//! lock-based idiom.

use std::sync::atomic::{AtomicU64, Ordering};

use force_machdep::fault;
use force_machdep::{trace, Construct};

use crate::player::Player;
use crate::schedule::ForceRange;

/// Shared state of one selfscheduled loop occurrence: the next unclaimed
/// trip number (the `K_shared` cell plus `LOOP100` lock, fused into one
/// atomic).
struct SelfSchedState {
    next: AtomicU64,
}

impl Player {
    /// `Presched DO` over a singly nested loop: cyclic (round-robin)
    /// distribution of index values, then the DOALL-end barrier.
    pub fn presched_do(&self, range: impl Into<ForceRange>, mut body: impl FnMut(i64)) {
        let _c = fault::enter(Construct::Doall);
        fault::inject(Construct::Doall);
        let range = range.into();
        let n = range.count();
        let mut trip = self.pid() as u64;
        let mut executed = 0u64;
        while trip < n {
            body(range.nth(trip));
            executed += 1;
            trip += self.nproc() as u64;
        }
        trace::doall_trips(executed);
        self.barrier();
    }

    /// `Presched DO` with *block* distribution: process `p` takes one
    /// contiguous chunk of trips.  An extension (the paper's presched is
    /// cyclic); useful when the body has spatial locality.
    pub fn presched_do_block(&self, range: impl Into<ForceRange>, mut body: impl FnMut(i64)) {
        let _c = fault::enter(Construct::Doall);
        fault::inject(Construct::Doall);
        let range = range.into();
        let n = range.count();
        let p = self.pid() as u64;
        let nproc = self.nproc() as u64;
        let base = n / nproc;
        let extra = n % nproc;
        // First `extra` processes take base+1 trips.
        let (lo, hi) = if p < extra {
            (p * (base + 1), p * (base + 1) + base + 1)
        } else {
            let lo = extra * (base + 1) + (p - extra) * base;
            (lo, lo + base)
        };
        for trip in lo..hi {
            body(range.nth(trip));
        }
        trace::doall_trips(hi - lo);
        self.barrier();
    }

    /// `Selfsched DO`: dynamic one-trip-at-a-time distribution, then the
    /// DOALL-end barrier.
    pub fn selfsched_do(&self, range: impl Into<ForceRange>, body: impl FnMut(i64)) {
        self.selfsched_do_chunked(range, 1, body)
    }

    /// Chunked selfscheduling: claim `chunk` consecutive trips per visit
    /// to the shared index — the natural generalization of the §4.2 loop
    /// (chunk = 1 is the paper's construct).
    ///
    /// # Panics
    /// Panics if `chunk` is zero.
    pub fn selfsched_do_chunked(
        &self,
        range: impl Into<ForceRange>,
        chunk: u64,
        mut body: impl FnMut(i64),
    ) {
        assert!(chunk > 0, "selfscheduling chunk must be positive");
        let _c = fault::enter(Construct::Doall);
        fault::inject(Construct::Doall);
        let range = range.into();
        let n = range.count();
        let state = self.collective(|| SelfSchedState {
            next: AtomicU64::new(0),
        });
        let mut executed = 0u64;
        loop {
            let lo = state.next.fetch_add(chunk, Ordering::Relaxed);
            if lo >= n {
                break;
            }
            let hi = (lo + chunk).min(n);
            for trip in lo..hi {
                body(range.nth(trip));
            }
            executed += hi - lo;
        }
        trace::doall_trips(executed);
        self.barrier();
    }

    /// Doubly nested `Presched DO`: cyclic distribution of index *pairs*
    /// `(i, j)` over the linearized pair space, then the end barrier.
    pub fn presched_do2(
        &self,
        outer: impl Into<ForceRange>,
        inner: impl Into<ForceRange>,
        mut body: impl FnMut(i64, i64),
    ) {
        let _c = fault::enter(Construct::Doall);
        fault::inject(Construct::Doall);
        let outer = outer.into();
        let inner = inner.into();
        let ni = inner.count();
        let n = outer.count() * ni;
        let mut trip = self.pid() as u64;
        let mut executed = 0u64;
        while trip < n {
            body(outer.nth(trip / ni), inner.nth(trip % ni));
            executed += 1;
            trip += self.nproc() as u64;
        }
        trace::doall_trips(executed);
        self.barrier();
    }

    /// Doubly nested `Selfsched DO`: dynamic distribution of index pairs.
    pub fn selfsched_do2(
        &self,
        outer: impl Into<ForceRange>,
        inner: impl Into<ForceRange>,
        mut body: impl FnMut(i64, i64),
    ) {
        let _c = fault::enter(Construct::Doall);
        fault::inject(Construct::Doall);
        let outer = outer.into();
        let inner = inner.into();
        let ni = inner.count();
        let n = outer.count() * ni;
        let state = self.collective(|| SelfSchedState {
            next: AtomicU64::new(0),
        });
        let mut executed = 0u64;
        loop {
            let trip = state.next.fetch_add(1, Ordering::Relaxed);
            if trip >= n {
                break;
            }
            body(outer.nth(trip / ni), inner.nth(trip % ni));
            executed += 1;
        }
        trace::doall_trips(executed);
        self.barrier();
    }
}

#[cfg(test)]
mod tests {
    use crate::force::Force;
    use crate::schedule::ForceRange;
    use force_machdep::Mutex;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Run a DOALL flavour and assert every index executes exactly once.
    fn coverage(
        nproc: usize,
        range: ForceRange,
        run: impl Fn(&crate::player::Player, &dyn Fn(i64)) + Sync,
    ) {
        let force = Force::new(nproc);
        let hits: Mutex<HashMap<i64, usize>> = Mutex::new(HashMap::new());
        force.run(|p| {
            run(p, &|i| {
                *hits.lock().entry(i).or_insert(0) += 1;
            });
        });
        let hits = hits.into_inner();
        let expected: Vec<i64> = range.iter().collect();
        assert_eq!(
            hits.len(),
            expected.len(),
            "wrong number of distinct indices"
        );
        for i in expected {
            assert_eq!(
                hits.get(&i),
                Some(&1),
                "index {i} not executed exactly once"
            );
        }
    }

    #[test]
    fn presched_covers_every_index_once() {
        for nproc in [1, 2, 3, 7] {
            coverage(nproc, ForceRange::to(1, 50), |p, f| {
                p.presched_do(ForceRange::to(1, 50), f);
            });
        }
    }

    #[test]
    fn presched_block_covers_every_index_once() {
        for nproc in [1, 2, 3, 7, 11] {
            coverage(nproc, ForceRange::to(0, 49), |p, f| {
                p.presched_do_block(ForceRange::to(0, 49), f);
            });
        }
    }

    #[test]
    fn selfsched_covers_every_index_once() {
        for nproc in [1, 2, 4, 8] {
            coverage(nproc, ForceRange::new(10, 100, 5), |p, f| {
                p.selfsched_do(ForceRange::new(10, 100, 5), f);
            });
        }
    }

    #[test]
    fn chunked_selfsched_covers_every_index_once() {
        for chunk in [1, 3, 7, 100] {
            coverage(4, ForceRange::to(0, 99), move |p, f| {
                p.selfsched_do_chunked(ForceRange::to(0, 99), chunk, f);
            });
        }
    }

    #[test]
    fn negative_stride_loops_work() {
        coverage(3, ForceRange::new(20, 2, -3), |p, f| {
            p.selfsched_do(ForceRange::new(20, 2, -3), f);
        });
        coverage(3, ForceRange::new(20, 2, -3), |p, f| {
            p.presched_do(ForceRange::new(20, 2, -3), f);
        });
    }

    #[test]
    fn empty_loops_complete() {
        let force = Force::new(4);
        let count = AtomicUsize::new(0);
        force.run(|p| {
            p.presched_do(ForceRange::to(5, 4), |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            p.selfsched_do(ForceRange::to(5, 4), |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn doall_is_a_barrier() {
        // After the DOALL, every process must observe all iterations done.
        let force = Force::new(6);
        let done = AtomicUsize::new(0);
        force.run(|p| {
            p.selfsched_do(ForceRange::to(1, 100), |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(done.load(Ordering::SeqCst), 100);
        });
    }

    #[test]
    fn consecutive_doalls_do_not_interfere() {
        let force = Force::new(4);
        let a = AtomicUsize::new(0);
        let b = AtomicUsize::new(0);
        force.run(|p| {
            for _ in 0..10 {
                p.selfsched_do(ForceRange::to(1, 20), |_| {
                    a.fetch_add(1, Ordering::Relaxed);
                });
                p.selfsched_do(ForceRange::to(1, 30), |_| {
                    b.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(a.load(Ordering::Relaxed), 200);
        assert_eq!(b.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn doubly_nested_pairs_cover_the_cross_product() {
        let force = Force::new(5);
        let hits = Mutex::new(HashMap::new());
        force.run(|p| {
            p.selfsched_do2(ForceRange::to(1, 6), ForceRange::to(1, 9), |i, j| {
                *hits.lock().entry((i, j)).or_insert(0usize) += 1;
            });
        });
        let hits = hits.into_inner();
        assert_eq!(hits.len(), 54);
        assert!(hits.values().all(|&c| c == 1));

        let hits = Mutex::new(HashMap::new());
        force.run(|p| {
            p.presched_do2(ForceRange::to(1, 4), ForceRange::to(1, 7), |i, j| {
                *hits.lock().entry((i, j)).or_insert(0usize) += 1;
            });
        });
        let hits = hits.into_inner();
        assert_eq!(hits.len(), 28);
        assert!(hits.values().all(|&c| c == 1));
    }

    #[test]
    fn presched_is_deterministic_per_process() {
        // Cyclic distribution: process p gets trips p, p+nproc, ...
        let force = Force::new(4);
        let per: Mutex<HashMap<usize, Vec<i64>>> = Mutex::new(HashMap::new());
        force.run(|p| {
            let mut mine = Vec::new();
            p.presched_do(ForceRange::to(0, 11), |i| mine.push(i));
            per.lock().insert(p.pid(), mine);
        });
        let per = per.into_inner();
        assert_eq!(per[&0], vec![0, 4, 8]);
        assert_eq!(per[&1], vec![1, 5, 9]);
        assert_eq!(per[&3], vec![3, 7, 11]);
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_rejected() {
        let force = Force::new(1);
        force.run(|p| p.selfsched_do_chunked(ForceRange::to(1, 5), 0, |_| {}));
    }
}
