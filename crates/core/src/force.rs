//! The force of processes — the Force's global-parallelism execution model.
//!
//! "A Force program is written with the assumption of the existence of a
//! force of processes to execute the program" (§4.1.1).  Work is never
//! assigned to named processes; it is distributed over the whole force by
//! the parallel constructs, and a correct Force program runs with *any*
//! number of processes.
//!
//! [`Force`] is the driver the preprocessor would generate: it creates the
//! processes, hands each a [`Player`] context, runs
//! the program body in all of them, and performs the final `Join`.
//!
//! A `Force` is a reusable **session**: its per-occurrence construct
//! state (the two-lock barrier, the collective registry behind
//! selfscheduled loops, Pcase and Askfor, the named-lock and
//! shared-index tables) and its fault plane live for the session's
//! lifetime and are *reset in place* at the start of every
//! [`execute`](Force::execute) instead of being reallocated.  Attach a
//! resident [`ForcePool`] with [`with_pool`](Force::with_pool) and
//! successive executes reuse the pool's worker threads too — no per-run
//! process creation at all.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use force_machdep::{
    spawn_force_plane, FaultConfig, FaultInjection, FaultPlane, ForceEnvironment, ForcePool,
    JobError, JobRunner, JobYield, Machine, MachineId, Mutex, ProcessFault, ProfileReport,
    RunOptions, SchedulePolicy, StatsSnapshot, TraceConfig,
};

use crate::barrier::TwoLockBarrier;
use crate::player::Player;
use crate::registry::CollectiveRegistry;

/// A configured force session: a process count bound to a machine
/// personality, resident construct state that is reset between runs,
/// optional dispatch onto a resident [`ForcePool`], and the session's
/// default fault-containment options (deadlock watchdog, fault
/// injection), both off by default and overridable per run with
/// [`try_execute_with`](Force::try_execute_with).
pub struct Force {
    nproc: usize,
    machine: Arc<Machine>,
    watchdog: Option<Duration>,
    injection: Option<FaultInjection>,
    trace: Option<TraceConfig>,
    default_schedule: SchedulePolicy,
    /// Resident workers to dispatch onto; `None` runs each job on fresh
    /// scoped threads (the one-shot path).
    pool: Option<Arc<ForcePool>>,
    /// The session's fault plane, re-armed before every run.
    plane: Arc<FaultPlane>,
    /// The session's parallel environment (named locks, shared indices).
    env: Arc<ForceEnvironment>,
    /// The session's two-lock barrier.
    barrier: Arc<TwoLockBarrier>,
    /// Per-occurrence collective state (selfsched counters, askfor
    /// queues, Pcase slots), cleared between runs.
    registry: Arc<CollectiveRegistry>,
    /// Serializes runs on this session: the resident state is per-run
    /// exclusive, so overlapping executes take turns.
    run_lock: Mutex<()>,
    /// Operation counts of the most recent run (per-job delta); `None`
    /// until a run completes cleanly, and reset to `None` by a faulted
    /// run so a caller can never mistake a dead job's partial counts (or
    /// a previous job's counts) for results.
    last_job_stats: Mutex<Option<StatsSnapshot>>,
    /// Whether the most recent run faulted; gates
    /// [`last_job_profile`](Force::last_job_profile) the same way.
    last_run_faulted: AtomicBool,
}

impl Force {
    /// A force of `nproc` processes on the default machine personality
    /// (Flex/32: combined locks behave well whether or not the host is
    /// oversubscribed).
    ///
    /// # Panics
    /// Panics if `nproc` is zero.
    pub fn new(nproc: usize) -> Self {
        Self::with_machine(nproc, Machine::new(MachineId::Flex32))
    }

    /// A force of `nproc` processes on an explicit machine personality.
    ///
    /// # Panics
    /// Panics if `nproc` is zero.
    pub fn with_machine(nproc: usize, machine: Arc<Machine>) -> Self {
        assert!(nproc > 0, "a force needs at least one process");
        let plane = FaultPlane::new(nproc, Arc::clone(machine.stats()), FaultConfig::default());
        let env = Arc::new(ForceEnvironment::with_fault_plane(
            Arc::clone(&machine),
            nproc,
            Arc::clone(&plane),
        ));
        let barrier = Arc::new(TwoLockBarrier::new(&machine, nproc));
        Force {
            nproc,
            machine,
            watchdog: None,
            injection: None,
            trace: None,
            default_schedule: SchedulePolicy::default(),
            pool: None,
            plane,
            env,
            barrier,
            registry: Arc::new(CollectiveRegistry::new()),
            run_lock: Mutex::new(()),
            last_job_stats: Mutex::new(None),
            last_run_faulted: AtomicBool::new(false),
        }
    }

    /// Enable the deadlock watchdog: if every live process of the force
    /// stays parked with no progress for `bound`, the force is cancelled
    /// and [`try_execute`](Self::try_execute) returns a structured
    /// [`ProcessFault`] naming a parked process and its construct.
    pub fn with_watchdog(mut self, bound: Duration) -> Self {
        self.watchdog = Some(bound);
        self
    }

    /// Enable deterministic fault injection (panics, delays, spurious
    /// lock failures at construct boundaries) for robustness testing.
    pub fn with_fault_injection(mut self, injection: FaultInjection) -> Self {
        self.injection = Some(injection);
        self
    }

    /// Set the session's default work-distribution policy: the policy
    /// the bare [`Player::doall`](crate::player::Player)/`doall2`
    /// methods use when no per-loop override is given.  Defaults to the
    /// paper's one-trip selfscheduling.  Overridable per run through
    /// [`RunOptions::default_schedule`].
    pub fn with_default_schedule(mut self, policy: SchedulePolicy) -> Self {
        self.default_schedule = policy;
        self
    }

    /// Enable construct-level tracing for this session's runs: every run
    /// records construct enter/exit, lock and full/empty events, barrier
    /// arrival spread, and DOALL trip distribution, surfaced afterwards
    /// by [`last_job_profile`](Self::last_job_profile).
    pub fn with_tracing(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Dispatch this session's runs onto a resident [`ForcePool`]
    /// instead of spawning scoped threads per run.  The pool must be at
    /// least as large as the force; pools may be shared by several
    /// sessions (jobs serialize at the pool's mailbox).
    ///
    /// # Panics
    /// Panics if the pool has fewer workers than the force has processes.
    pub fn with_pool(mut self, pool: Arc<ForcePool>) -> Self {
        assert!(
            pool.size() >= self.nproc,
            "pool of {} workers cannot host a force of {} processes",
            pool.size(),
            self.nproc
        );
        self.pool = Some(pool);
        self
    }

    /// A force sized to the host's available parallelism.
    pub fn natural() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(n)
    }

    /// Number of processes in the force.
    pub fn nproc(&self) -> usize {
        self.nproc
    }

    /// The machine the force runs on.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Execute `body` on every process of the force and `Join`: the call
    /// returns when all processes have finished, with each process's
    /// result in pid order.
    ///
    /// `body` is the Force *main program*: it runs `nproc` times
    /// concurrently, each time with a distinct [`Player`].  Anything the
    /// closure captures by shared reference is a *shared* variable in the
    /// Force classification; the closure's locals are *private*.
    pub fn execute<R, F>(&self, body: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Player) -> R + Sync,
    {
        match self.try_execute(body) {
            Ok(results) => results,
            // Re-raise the first faulting process's original panic payload
            // so callers (and `should_panic` tests) see it verbatim.
            Err(fault) => match self.plane.take_payload() {
                Some(payload) => std::panic::resume_unwind(payload),
                None => panic!("{fault}"),
            },
        }
    }

    /// Like [`execute`](Self::execute), but returning a structured
    /// [`ProcessFault`] instead of panicking when a process of the force
    /// panics or the watchdog declares a deadlock.
    pub fn try_execute<R, F>(&self, body: F) -> Result<Vec<R>, ProcessFault>
    where
        R: Send,
        F: Fn(&Player) -> R + Sync,
    {
        self.try_execute_with(
            RunOptions {
                watchdog: self.watchdog,
                injection: self.injection,
                trace: self.trace,
                default_schedule: self.default_schedule,
                ..RunOptions::default()
            },
            body,
        )
    }

    /// Run one job with explicit per-run [`RunOptions`] (watchdog bound,
    /// fault injection), overriding the session defaults for this run
    /// only.  This is how a *shared* session — e.g. one pooled force
    /// serving many callers — is configured per job without `&mut`
    /// access.
    pub fn try_execute_with<R, F>(
        &self,
        options: RunOptions,
        body: F,
    ) -> Result<Vec<R>, ProcessFault>
    where
        R: Send,
        F: Fn(&Player) -> R + Sync,
    {
        // One run at a time per session: the resident construct state is
        // exclusive to the running job.
        let _run = self.run_lock.lock();
        self.reset_session(options);
        let before = self.machine.stats().snapshot();
        let run_body = |pid: usize| {
            let player = Player::new(
                pid,
                self.nproc,
                Arc::clone(&self.machine),
                Arc::clone(&self.env),
                Arc::clone(&self.barrier),
                Arc::clone(&self.registry),
            );
            body(&player)
        };
        let result = match &self.pool {
            Some(pool) => pool.run_plane(&self.plane, run_body),
            None => spawn_force_plane(&self.plane, run_body),
        };
        // A faulted run leaves no per-job results: its delta covers only
        // the operations that happened to land before the teardown, and
        // surfacing it (or worse, leaving the previous job's delta in
        // place) would hand callers another job's numbers as this job's.
        *self.last_job_stats.lock() = match &result {
            Ok(_) => Some(self.machine.stats().snapshot().delta(&before)),
            Err(_) => None,
        };
        self.last_run_faulted
            .store(result.is_err(), Ordering::Release);
        result
    }

    /// Reset the resident session state in place for a new run: re-arm
    /// the fault plane with this run's options, clear the collective
    /// registry, and restore the barrier and environment to their
    /// initial states (a fault may have stranded locks mid-episode).
    fn reset_session(&self, options: RunOptions) {
        self.plane.reset_for_job(options);
        self.registry.reset();
        self.barrier.reset();
        self.env.reset();
    }

    /// Primitive-operation counts of the most recent run — the per-job
    /// delta, not the machine's cumulative totals (which, on a resident
    /// session or shared pool, span every job since creation).  `None`
    /// before the first run and after a run that faulted: a torn-down
    /// job has no meaningful per-job counts, and returning the previous
    /// job's delta would be a cross-job leak.
    pub fn last_job_stats(&self) -> Option<StatsSnapshot> {
        *self.last_job_stats.lock()
    }

    /// Construct-level profile of the most recent run: per-construct
    /// wait/hold histograms, named-lock contention, barrier arrival
    /// spread, DOALL trip distribution, and the retained event trace
    /// (exportable with [`ProfileReport::chrome_trace_json`]).  `None`
    /// when the most recent run did not enable tracing (via
    /// [`with_tracing`](Self::with_tracing) or `RunOptions::trace`).
    ///
    /// Summarization happens *here*, not per job: a traced run only pays
    /// for recording, and this call drains the resident sink into a
    /// plain-data report.  It takes the session's run lock (the sink is
    /// only readable at job quiescence), so call it between runs, never
    /// from inside a job body.
    ///
    /// Also `None` after a run that faulted: a torn-down job's sink
    /// holds a partial, mid-flight event stream, not a profile of
    /// completed work.
    pub fn last_job_profile(&self) -> Option<ProfileReport> {
        let _run = self.run_lock.lock();
        if self.last_run_faulted.load(Ordering::Acquire) {
            return None;
        }
        self.plane.profile_report()
    }

    /// The session's resident fault plane.  The serving layer binds this
    /// to a job context ([`force_machdep::serve::JobCx::bind_plane`]) so
    /// deadline watchers can cancel a running job through the plane's
    /// trip token.
    pub fn fault_plane(&self) -> &Arc<FaultPlane> {
        &self.plane
    }

    /// Package a native force program as a [`JobRunner`] for a
    /// [`ForceServer`](force_machdep::serve::ForceServer): each attempt
    /// binds this session's fault plane to the job (so deadlines can
    /// cancel it), runs `body` under `options` via
    /// [`try_execute_with`](Self::try_execute_with), and reports the
    /// run's trace profile (if any) back to the server's per-tenant
    /// rollup.
    ///
    /// Per-process results are discarded — a served job returns data by
    /// writing through what `body` captures.  When `options` carries
    /// fault injection, each retry re-derives the injection seed from
    /// the attempt number, so a retried job re-rolls the injection
    /// stream instead of deterministically replaying the same injected
    /// fault (which would make retries useless by construction).
    pub fn serve_runner<F>(self: &Arc<Self>, options: RunOptions, body: F) -> JobRunner
    where
        F: Fn(&Player) + Send + Sync + 'static,
    {
        let force = Arc::clone(self);
        Box::new(move |cx| {
            cx.bind_plane(force.fault_plane());
            let mut opts = options;
            if let Some(inj) = opts.injection.as_mut() {
                inj.seed ^= u64::from(cx.attempt()).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
            match force.try_execute_with(opts, |p| body(p)) {
                Ok(_) => Ok(JobYield {
                    profile: force.last_job_profile(),
                }),
                Err(fault) => Err(JobError::Fault(fault)),
            }
        })
    }

    /// Like [`execute`](Self::execute) but discarding per-process results.
    pub fn run<F>(&self, body: F)
    where
        F: Fn(&Player) + Sync,
    {
        self.execute(body);
    }

    /// Like [`run`](Self::run), but returning a structured
    /// [`ProcessFault`] instead of panicking on a faulting process.
    pub fn try_run<F>(&self, body: F) -> Result<(), ProcessFault>
    where
        F: Fn(&Player) + Sync,
    {
        self.try_execute(body).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_process_runs_once_with_its_pid() {
        let force = Force::new(6);
        let results = force.execute(|p| (p.pid(), p.nproc()));
        assert_eq!(results, (0..6).map(|i| (i, 6)).collect::<Vec<_>>());
    }

    #[test]
    fn shared_captures_are_shared_private_locals_are_private() {
        let force = Force::new(4);
        let shared = AtomicUsize::new(0);
        let privates = force.execute(|_p| {
            let mut private = 0usize; // private variable
            for _ in 0..100 {
                private += 1;
                shared.fetch_add(1, Ordering::Relaxed); // shared variable
            }
            private
        });
        assert_eq!(shared.load(Ordering::Relaxed), 400);
        assert!(privates.iter().all(|&p| p == 100));
    }

    #[test]
    fn execute_can_be_called_repeatedly() {
        let force = Force::new(3);
        for round in 0..5 {
            let r = force.execute(move |p| p.pid() + round);
            assert_eq!(r, vec![round, 1 + round, 2 + round]);
        }
    }

    #[test]
    fn runs_on_every_machine_personality() {
        for id in MachineId::all() {
            let force = Force::with_machine(4, Machine::new(id));
            let total: usize = force.execute(|p| p.pid()).into_iter().sum();
            assert_eq!(total, 6, "{}", id.name());
        }
    }

    #[test]
    fn independence_of_process_count() {
        // The same program must compute the same result for any nproc —
        // the paper's central claim about the programming model.
        let expected: usize = (0..1000).sum();
        for nproc in [1, 2, 3, 5, 8] {
            let force = Force::new(nproc);
            let shared = AtomicUsize::new(0);
            force.run(|p| {
                p.selfsched_do(crate::schedule::ForceRange::to(0, 999), |i| {
                    shared.fetch_add(i as usize, Ordering::Relaxed);
                });
            });
            assert_eq!(shared.load(Ordering::Relaxed), expected, "nproc={nproc}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_process_force_rejected() {
        let _ = Force::new(0);
    }

    #[test]
    fn try_execute_returns_ok_results() {
        let force = Force::new(3);
        let r = force.try_execute(|p| p.pid()).expect("no faults");
        assert_eq!(r, vec![0, 1, 2]);
    }

    #[test]
    fn try_execute_reports_a_structured_fault() {
        let force = Force::new(4);
        let err = force
            .try_execute(|p| {
                if p.pid() == 3 {
                    panic!("process three exploded");
                }
                p.barrier(); // peers park here until cancellation
            })
            .expect_err("the panic must surface as a fault");
        assert_eq!(err.pid, 3);
        assert_eq!(err.construct, "body");
        assert_eq!(err.payload, "process three exploded");
    }

    #[test]
    fn execute_still_panics_with_the_original_payload() {
        let force = Force::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            force.run(|p| {
                if p.pid() == 0 {
                    panic!("original payload text");
                }
                p.barrier();
            });
        }));
        let payload = caught.expect_err("must propagate");
        let msg = payload.downcast_ref::<&str>().expect("&str payload");
        assert_eq!(*msg, "original payload text");
    }

    #[test]
    fn watchdog_reports_a_wedged_force() {
        use std::time::Duration;
        // Every process consumes from an async variable nobody produces:
        // a guaranteed deadlock, reported by the watchdog.
        let force = Force::new(2).with_watchdog(Duration::from_millis(100));
        let chan: crate::asyncvar::Async<u64> = crate::asyncvar::Async::new(force.machine());
        let err = force
            .try_execute(|_p| chan.consume())
            .expect_err("the watchdog must trip");
        assert_eq!(err.construct, "consume");
        assert!(err.payload.contains("deadlock watchdog"), "{}", err.payload);
    }

    #[test]
    fn injected_panics_surface_as_faults() {
        use force_machdep::FaultInjection;
        let inj = FaultInjection {
            seed: 0xF0CE,
            panic_per_mille: 1000,
            delay_per_mille: 0,
            spurious_per_mille: 0,
        };
        let force = Force::new(2).with_fault_injection(inj);
        let err = force
            .try_run(|p| p.barrier())
            .expect_err("a certain injection must fault the force");
        assert!(err.payload.contains("injected fault"), "{}", err.payload);
    }

    #[test]
    fn pooled_force_matches_scoped_results() {
        let machine = Machine::new(MachineId::EncoreMultimax);
        let pool = Arc::new(ForcePool::new(4, machine.stats()));
        let pooled = Force::with_machine(4, Arc::clone(&machine)).with_pool(pool);
        let scoped = Force::with_machine(4, machine);
        for _ in 0..5 {
            let shared_p = AtomicUsize::new(0);
            let shared_s = AtomicUsize::new(0);
            pooled.run(|p| {
                p.selfsched_do(crate::schedule::ForceRange::to(1, 100), |i| {
                    shared_p.fetch_add(i as usize, Ordering::Relaxed);
                });
            });
            scoped.run(|p| {
                p.selfsched_do(crate::schedule::ForceRange::to(1, 100), |i| {
                    shared_s.fetch_add(i as usize, Ordering::Relaxed);
                });
            });
            assert_eq!(
                shared_p.load(Ordering::Relaxed),
                shared_s.load(Ordering::Relaxed)
            );
            assert_eq!(shared_p.load(Ordering::Relaxed), 5050);
        }
    }

    #[test]
    fn pooled_session_creates_no_processes_per_run() {
        let machine = Machine::new(MachineId::SequentBalance);
        let pool = Arc::new(ForcePool::new(3, machine.stats()));
        let force = Force::with_machine(3, Arc::clone(&machine)).with_pool(pool);
        let created_before = machine.stats().snapshot().processes_created;
        for _ in 0..10 {
            force.run(|p| p.barrier());
        }
        let created_after = machine.stats().snapshot().processes_created;
        assert_eq!(
            created_after, created_before,
            "a resident pool amortizes process creation across jobs"
        );
    }

    #[test]
    fn last_job_stats_reports_per_job_deltas() {
        let force = Force::new(2);
        assert!(
            force.last_job_stats().is_none(),
            "no stats before the first run"
        );
        force.run(|p| {
            for _ in 0..3 {
                p.barrier();
            }
        });
        assert_eq!(force.last_job_stats().unwrap().barrier_episodes, 3);
        force.run(|p| p.barrier());
        assert_eq!(
            force.last_job_stats().unwrap().barrier_episodes,
            1,
            "per-job delta, not cumulative"
        );
    }

    /// The stale-result hazard: after a faulted run, `last_job_stats`
    /// and `last_job_profile` must return `None` — not the *previous*
    /// job's results — on both dispatch paths.
    fn assert_no_stale_results_after_fault(force: &Force) {
        // Run 1: clean, traced — leaves real results behind.
        force
            .try_execute_with(
                RunOptions {
                    trace: Some(force_machdep::TraceConfig::default()),
                    ..RunOptions::default()
                },
                |p| p.barrier(),
            )
            .expect("clean run");
        assert_eq!(force.last_job_stats().unwrap().barrier_episodes, 1);
        assert!(force.last_job_profile().is_some());
        // Run 2: faults mid-flight.  Reading job 2's results must not
        // surface job 1's.
        let err = force
            .try_execute_with(
                RunOptions {
                    trace: Some(force_machdep::TraceConfig::default()),
                    ..RunOptions::default()
                },
                |p| {
                    if p.pid() == 0 {
                        panic!("casualty");
                    }
                    p.barrier();
                },
            )
            .expect_err("the panic must fault the force");
        assert_eq!(err.pid, 0);
        assert!(
            force.last_job_stats().is_none(),
            "faulted run must clear last_job_stats"
        );
        assert!(
            force.last_job_profile().is_none(),
            "faulted run must clear last_job_profile"
        );
        // Run 3: clean again — results come back.
        force.try_run(|p| p.barrier()).expect("clean run");
        assert_eq!(force.last_job_stats().unwrap().barrier_episodes, 1);
    }

    #[test]
    fn faulted_run_clears_results_scoped_path() {
        assert_no_stale_results_after_fault(&Force::new(2));
    }

    #[test]
    fn faulted_run_clears_results_pooled_path() {
        let machine = Machine::new(MachineId::Flex32);
        let pool = Arc::new(ForcePool::new(2, machine.stats()));
        let force = Force::with_machine(2, machine).with_pool(pool);
        assert_no_stale_results_after_fault(&force);
    }

    #[test]
    fn construct_state_resets_between_runs_with_different_sequences() {
        // Run 1's collective #0 is a selfsched loop; run 2's collective #0
        // is a Pcase-style barrier section.  Without the registry reset the
        // second run would either panic as divergent or inherit a spent
        // loop counter and skip every iteration.
        let force = Force::new(3);
        let sum = AtomicUsize::new(0);
        force.run(|p| {
            p.selfsched_do(crate::schedule::ForceRange::to(1, 10), |i| {
                sum.fetch_add(i as usize, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
        let sections = AtomicUsize::new(0);
        force.run(|p| {
            p.barrier_section(|| {
                sections.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(sections.load(Ordering::Relaxed), 1);
        // And the same loop again must re-run all iterations from scratch.
        sum.store(0, Ordering::Relaxed);
        force.run(|p| {
            p.selfsched_do(crate::schedule::ForceRange::to(1, 10), |i| {
                sum.fetch_add(i as usize, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn session_recovers_after_a_fault() {
        // A fault strands the barrier mid-episode; the next run on the
        // same session must start from a clean slate.
        let force = Force::new(3);
        let err = force
            .try_run(|p| {
                if p.pid() == 1 {
                    panic!("mid-barrier casualty");
                }
                p.barrier();
                p.barrier();
            })
            .expect_err("the panic must fault the force");
        assert_eq!(err.pid, 1);
        let r = force.try_execute(|p| {
            p.barrier();
            p.pid()
        });
        assert_eq!(
            r.expect("session must be reusable after a fault"),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn per_run_options_override_session_defaults() {
        use std::time::Duration;
        // Session default: no watchdog.  Per-run: a tight watchdog that
        // must catch the deadlock; then a default run works again.
        let force = Force::new(2);
        let chan: crate::asyncvar::Async<u64> = crate::asyncvar::Async::new(force.machine());
        let err = force
            .try_execute_with(
                RunOptions {
                    watchdog: Some(Duration::from_millis(100)),
                    ..RunOptions::default()
                },
                |_p| chan.consume(),
            )
            .expect_err("per-run watchdog must trip");
        assert!(err.payload.contains("deadlock watchdog"), "{}", err.payload);
        assert_eq!(
            force.try_execute(|p| p.pid()).expect("clean run"),
            vec![0, 1]
        );
    }

    #[test]
    fn per_run_default_schedule_overrides_the_session() {
        // Session default: selfsched.  Per-run: cyclic, observable as
        // presched's deterministic per-process trip assignment.
        let force = Force::new(4);
        let r = force
            .try_execute_with(
                RunOptions {
                    default_schedule: SchedulePolicy::Cyclic,
                    ..RunOptions::default()
                },
                |p| {
                    let mut mine = Vec::new();
                    p.doall(crate::schedule::ForceRange::to(0, 11), |i| mine.push(i));
                    mine
                },
            )
            .expect("clean run");
        assert_eq!(r[0], vec![0, 4, 8]);
        assert_eq!(r[3], vec![3, 7, 11]);
        // The next default run reverts to the session default; coverage
        // stays exact.
        let sum = AtomicUsize::new(0);
        force.run(|p| {
            p.doall(crate::schedule::ForceRange::to(1, 10), |i| {
                sum.fetch_add(i as usize, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn traced_run_surfaces_a_profile() {
        let force = Force::new(3).with_tracing(TraceConfig::default());
        force.run(|p| {
            p.presched_do(crate::schedule::ForceRange::to(1, 30), |_| {});
            p.critical("HOT", || {});
            p.barrier();
        });
        let r = force.last_job_profile().expect("traced run has a profile");
        assert_eq!(r.nproc, 3);
        assert!(r.construct("doall").is_some(), "doall attributed");
        assert!(r.construct("barrier").is_some(), "barrier attributed");
        assert!(r.construct("critical").is_some(), "critical attributed");
        let l = r.named_lock("HOT").expect("named lock profiled");
        assert_eq!(l.acquires, 3);
        assert_eq!(l.wait.count(), 3);
        assert_eq!(l.hold.count(), 3);
        assert_eq!(r.doall_trips.iter().sum::<u64>(), 30, "30 trips traced");
        assert!(
            r.barrier_spread.count() >= 2,
            "doall end + explicit barrier"
        );
        let json = r.chrome_trace_json();
        assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
    }

    #[test]
    fn per_run_tracing_overrides_session_default() {
        let force = Force::new(2);
        force
            .try_execute_with(
                RunOptions {
                    trace: Some(TraceConfig::default()),
                    ..RunOptions::default()
                },
                |p| p.barrier(),
            )
            .expect("clean run");
        let r = force.last_job_profile().expect("per-run tracing");
        assert!(r.construct("barrier").is_some());
        // The next default run does not trace.
        force.run(|p| p.barrier());
        assert!(force.last_job_profile().is_none());
    }

    #[test]
    fn spurious_injection_perturbs_but_preserves_results() {
        use force_machdep::FaultInjection;
        let inj = FaultInjection {
            seed: 7,
            panic_per_mille: 0,
            delay_per_mille: 0,
            spurious_per_mille: 300,
        };
        let force = Force::new(4).with_fault_injection(inj);
        let before = force.machine().stats().snapshot().faults_injected;
        let shared = AtomicUsize::new(0);
        force.run(|p| {
            for _ in 0..20 {
                p.critical("S", || {
                    let v = shared.load(Ordering::Relaxed);
                    shared.store(v + 1, Ordering::Relaxed);
                });
                p.barrier();
            }
        });
        assert_eq!(shared.load(Ordering::Relaxed), 80);
        let after = force.machine().stats().snapshot().faults_injected;
        assert!(after > before, "a 30% spurious rate must have fired");
    }
}
