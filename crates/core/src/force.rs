//! The force of processes — the Force's global-parallelism execution model.
//!
//! "A Force program is written with the assumption of the existence of a
//! force of processes to execute the program" (§4.1.1).  Work is never
//! assigned to named processes; it is distributed over the whole force by
//! the parallel constructs, and a correct Force program runs with *any*
//! number of processes.
//!
//! [`Force`] is the driver the preprocessor would generate: it creates the
//! processes, hands each a [`Player`] context, runs
//! the program body in all of them, and performs the final `Join`.

use std::sync::Arc;

use force_machdep::{spawn_force, ForceEnvironment, Machine, MachineId};

use crate::barrier::TwoLockBarrier;
use crate::player::Player;
use crate::registry::CollectiveRegistry;

/// A configured force: a process count bound to a machine personality.
pub struct Force {
    nproc: usize,
    machine: Arc<Machine>,
}

impl Force {
    /// A force of `nproc` processes on the default machine personality
    /// (Flex/32: combined locks behave well whether or not the host is
    /// oversubscribed).
    ///
    /// # Panics
    /// Panics if `nproc` is zero.
    pub fn new(nproc: usize) -> Self {
        Self::with_machine(nproc, Machine::new(MachineId::Flex32))
    }

    /// A force of `nproc` processes on an explicit machine personality.
    ///
    /// # Panics
    /// Panics if `nproc` is zero.
    pub fn with_machine(nproc: usize, machine: Arc<Machine>) -> Self {
        assert!(nproc > 0, "a force needs at least one process");
        Force { nproc, machine }
    }

    /// A force sized to the host's available parallelism.
    pub fn natural() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(n)
    }

    /// Number of processes in the force.
    pub fn nproc(&self) -> usize {
        self.nproc
    }

    /// The machine the force runs on.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Execute `body` on every process of the force and `Join`: the call
    /// returns when all processes have finished, with each process's
    /// result in pid order.
    ///
    /// `body` is the Force *main program*: it runs `nproc` times
    /// concurrently, each time with a distinct [`Player`].  Anything the
    /// closure captures by shared reference is a *shared* variable in the
    /// Force classification; the closure's locals are *private*.
    pub fn execute<R, F>(&self, body: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Player) -> R + Sync,
    {
        let env = Arc::new(ForceEnvironment::new(Arc::clone(&self.machine), self.nproc));
        let barrier = Arc::new(TwoLockBarrier::new(&self.machine, self.nproc));
        let registry = Arc::new(CollectiveRegistry::new());
        spawn_force(self.nproc, self.machine.stats(), |pid| {
            let player = Player::new(
                pid,
                self.nproc,
                Arc::clone(&self.machine),
                Arc::clone(&env),
                Arc::clone(&barrier),
                Arc::clone(&registry),
            );
            body(&player)
        })
    }

    /// Like [`execute`](Self::execute) but discarding per-process results.
    pub fn run<F>(&self, body: F)
    where
        F: Fn(&Player) + Sync,
    {
        self.execute(body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_process_runs_once_with_its_pid() {
        let force = Force::new(6);
        let results = force.execute(|p| (p.pid(), p.nproc()));
        assert_eq!(
            results,
            (0..6).map(|i| (i, 6)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shared_captures_are_shared_private_locals_are_private() {
        let force = Force::new(4);
        let shared = AtomicUsize::new(0);
        let privates = force.execute(|_p| {
            let mut private = 0usize; // private variable
            for _ in 0..100 {
                private += 1;
                shared.fetch_add(1, Ordering::Relaxed); // shared variable
            }
            private
        });
        assert_eq!(shared.load(Ordering::Relaxed), 400);
        assert!(privates.iter().all(|&p| p == 100));
    }

    #[test]
    fn execute_can_be_called_repeatedly() {
        let force = Force::new(3);
        for round in 0..5 {
            let r = force.execute(move |p| p.pid() + round);
            assert_eq!(r, vec![round, 1 + round, 2 + round]);
        }
    }

    #[test]
    fn runs_on_every_machine_personality() {
        for id in MachineId::all() {
            let force = Force::with_machine(4, Machine::new(id));
            let total: usize = force.execute(|p| p.pid()).into_iter().sum();
            assert_eq!(total, 6, "{}", id.name());
        }
    }

    #[test]
    fn independence_of_process_count() {
        // The same program must compute the same result for any nproc —
        // the paper's central claim about the programming model.
        let expected: usize = (0..1000).sum();
        for nproc in [1, 2, 3, 5, 8] {
            let force = Force::new(nproc);
            let shared = AtomicUsize::new(0);
            force.run(|p| {
                p.selfsched_do(crate::schedule::ForceRange::to(0, 999), |i| {
                    shared.fetch_add(i as usize, Ordering::Relaxed);
                });
            });
            assert_eq!(shared.load(Ordering::Relaxed), expected, "nproc={nproc}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_process_force_rejected() {
        let _ = Force::new(0);
    }
}
