//! Shared variable classification (§3.2).
//!
//! "The variables on which work is performed are either uniformly shared
//! among all of the processes or strictly private to a single process."
//! In the native Rust embedding, *private* variables are simply the
//! body-closure's locals; *shared* variables are what the closure captures
//! by reference.  This module provides shared numeric storage whose
//! element-wise access is always race-free at the memory-model level
//! (word atomics, `Relaxed`): a Force program with a logic race sees value
//! races — as it would on the original machines — never UB.
//!
//! For shared data of arbitrary type there is [`SharedCell`], a small
//! lock-protected cell.

use std::sync::atomic::{AtomicU64, Ordering};

use force_machdep::{with_lock, LockHandle, LockState, Machine};

/// A shared 1-D array of `f64`, word-atomic per element.
pub struct SharedF64Array {
    words: Box<[AtomicU64]>,
}

impl SharedF64Array {
    /// A zero-filled shared array of length `n`.
    pub fn zeroed(n: usize) -> Self {
        SharedF64Array {
            words: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Build from a slice.
    pub fn from_slice(data: &[f64]) -> Self {
        SharedF64Array {
            words: data.iter().map(|v| AtomicU64::new(v.to_bits())).collect(),
        }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.words[i].load(Ordering::Relaxed))
    }

    /// Write element `i`.
    #[inline]
    pub fn set(&self, i: usize, v: f64) {
        self.words[i].store(v.to_bits(), Ordering::Relaxed)
    }

    /// Atomically add `delta` to element `i` (CAS loop).
    pub fn add(&self, i: usize, delta: f64) {
        let cell = &self.words[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Copy out to a `Vec` (for verification).
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

/// A shared 2-D matrix of `f64` in row-major order.
pub struct SharedF64Matrix {
    data: SharedF64Array,
    rows: usize,
    cols: usize,
}

impl SharedF64Matrix {
    /// A zero-filled `rows × cols` matrix.
    pub fn zeroed(rows: usize, cols: usize) -> Self {
        SharedF64Matrix {
            data: SharedF64Array::zeroed(rows * cols),
            rows,
            cols,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        r * self.cols + c
    }

    /// Read element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data.get(self.idx(r, c))
    }

    /// Write element `(r, c)`.
    #[inline]
    pub fn set(&self, r: usize, c: usize, v: f64) {
        self.data.set(self.idx(r, c), v)
    }
}

/// A shared 1-D array of `i64`, word-atomic per element.
pub struct SharedI64Array {
    words: Box<[AtomicU64]>,
}

impl SharedI64Array {
    /// A zero-filled shared array of length `n`.
    pub fn zeroed(n: usize) -> Self {
        SharedI64Array {
            words: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        self.words[i].load(Ordering::Relaxed) as i64
    }

    /// Write element `i`.
    #[inline]
    pub fn set(&self, i: usize, v: i64) {
        self.words[i].store(v as u64, Ordering::Relaxed)
    }

    /// Atomic add; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, i: usize, delta: i64) -> i64 {
        self.words[i].fetch_add(delta as u64, Ordering::AcqRel) as i64
    }
}

/// A lock-protected shared cell for arbitrary `T` — the general shared
/// scalar, guarded by a machine vendor lock rather than a host mutex so
/// its cost follows the machine personality.
pub struct SharedCell<T> {
    lock: LockHandle,
    value: std::cell::UnsafeCell<T>,
}

// SAFETY: all access to `value` goes through `with_lock` on a machine
// lock, which provides mutual exclusion and acquire/release ordering.
unsafe impl<T: Send> Sync for SharedCell<T> {}
unsafe impl<T: Send> Send for SharedCell<T> {}

impl<T> SharedCell<T> {
    /// A shared cell on `machine` holding `value`.
    pub fn new(machine: &Machine, value: T) -> Self {
        SharedCell {
            lock: machine.make_lock(LockState::Unlocked),
            value: std::cell::UnsafeCell::new(value),
        }
    }

    /// Run `f` with exclusive access to the value.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        with_lock(self.lock.as_ref(), || {
            // SAFETY: the lock gives exclusive access.
            f(unsafe { &mut *self.value.get() })
        })
    }

    /// Clone the value out.
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.update(|v| v.clone())
    }

    /// Replace the value, returning the old one.
    pub fn replace(&self, value: T) -> T {
        self.update(|v| std::mem::replace(v, value))
    }

    /// Unwrap the cell.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::Force;
    use crate::schedule::ForceRange;
    use force_machdep::MachineId;

    #[test]
    fn f64_array_roundtrip() {
        let a = SharedF64Array::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(1), 2.0);
        a.set(1, -4.5);
        assert_eq!(a.get(1), -4.5);
        assert_eq!(a.to_vec(), vec![1.0, -4.5, 3.0]);
    }

    #[test]
    fn f64_atomic_add_is_exact_under_contention() {
        let a = SharedF64Array::zeroed(1);
        let force = Force::new(8);
        force.run(|p| {
            p.selfsched_do(ForceRange::to(1, 1000), |_| {
                a.add(0, 1.0);
            });
        });
        assert_eq!(a.get(0), 1000.0);
    }

    #[test]
    fn matrix_indexing() {
        let m = SharedF64Matrix::zeroed(3, 4);
        m.set(2, 3, 9.0);
        assert_eq!(m.get(2, 3), 9.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!((m.rows(), m.cols()), (3, 4));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn matrix_bounds_checked() {
        let m = SharedF64Matrix::zeroed(2, 2);
        m.get(2, 0);
    }

    #[test]
    fn i64_array_fetch_add() {
        let a = SharedI64Array::zeroed(2);
        assert_eq!(a.fetch_add(0, 5), 0);
        assert_eq!(a.fetch_add(0, -2), 5);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn shared_cell_updates_are_exclusive() {
        let machine = Machine::new(MachineId::SequentBalance);
        let cell = SharedCell::new(&machine, Vec::<usize>::new());
        let force = Force::with_machine(6, machine);
        force.run(|p| {
            for _ in 0..100 {
                cell.update(|v| v.push(p.pid()));
            }
        });
        assert_eq!(cell.into_inner().len(), 600);
    }

    #[test]
    fn shared_cell_replace_and_get() {
        let machine = Machine::new(MachineId::Hep);
        let cell = SharedCell::new(&machine, 1u32);
        assert_eq!(cell.get(), 1);
        assert_eq!(cell.replace(5), 1);
        assert_eq!(cell.get(), 5);
    }
}
