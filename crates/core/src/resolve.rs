//! Resolve — partitioning the force into components.
//!
//! §3.3 closes: "A yet unimplemented concept is Resolve, which would
//! partition the set of processes into subsets executing different
//! parallel code sections."  This module implements that future-work
//! construct as an extension (EXP-12 measures its effect): the force
//! *resolves* into components of given sizes, each component runs the
//! body knowing its own identity, with a component-local barrier; the
//! construct ends by *unifying* the full force at a force-wide barrier.
//!
//! ```
//! # use force_core::prelude::*;
//! let force = Force::new(4);
//! force.run(|p| {
//!     p.resolve(&[1, 3], |c| {
//!         if c.index() == 0 {
//!             // the singleton component: e.g. an I/O server
//!         } else {
//!             // the 3-process compute component
//!             c.barrier();
//!         }
//!     });
//! });
//! ```

use std::sync::Arc;

use force_machdep::fault;
use force_machdep::Construct;

use crate::barrier::TwoLockBarrier;
use crate::player::Player;
use crate::schedule::ForceRange;

/// A process's view of the component it resolved into.
pub struct Component<'p> {
    player: &'p Player,
    index: usize,
    rank: usize,
    size: usize,
    barrier: Arc<TwoLockBarrier>,
}

impl Component<'_> {
    /// Which component this is (`0..sizes.len()`).
    pub fn index(&self) -> usize {
        self.index
    }

    /// This process's rank within the component (`0..size`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processes in the component.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The underlying player (pid, machine, named locks...).
    pub fn player(&self) -> &Player {
        self.player
    }

    /// Component-local barrier: waits only for this component's processes.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Component-local barrier with a one-process section.
    pub fn barrier_section<R>(&self, section: impl FnOnce() -> R) -> Option<R> {
        self.barrier.wait_section(section)
    }

    /// Prescheduled DOALL *within the component*: cyclic distribution of
    /// the range over the component's processes, ending at the component
    /// barrier.
    pub fn presched_do(&self, range: impl Into<ForceRange>, mut body: impl FnMut(i64)) {
        let range = range.into();
        let n = range.count();
        let mut trip = self.rank as u64;
        while trip < n {
            body(range.nth(trip));
            trip += self.size as u64;
        }
        self.barrier.wait();
    }
}

/// Shared state of one Resolve occurrence: a barrier per component.
struct ResolveState {
    barriers: Vec<Arc<TwoLockBarrier>>,
}

impl Player {
    /// Resolve the force into components of the given sizes, run `body`
    /// in every process with its component view, then unify the full
    /// force at a barrier.
    ///
    /// Processes `0..sizes[0]` form component 0, the next `sizes[1]`
    /// form component 1, and so on.
    ///
    /// # Panics
    /// Panics if `sizes` is empty, contains a zero, or does not sum to
    /// `nproc`.
    pub fn resolve<R>(&self, sizes: &[usize], body: impl FnOnce(&Component) -> R) -> R {
        let _c = fault::enter(Construct::Resolve);
        fault::inject(Construct::Resolve);
        assert!(!sizes.is_empty(), "resolve needs at least one component");
        assert!(
            sizes.iter().all(|&s| s > 0),
            "resolve components must be non-empty"
        );
        assert_eq!(
            sizes.iter().sum::<usize>(),
            self.nproc(),
            "resolve component sizes must sum to the force size"
        );
        let sizes_vec = sizes.to_vec();
        let machine = Arc::clone(self.machine());
        let state = self.collective(move || ResolveState {
            barriers: sizes_vec
                .iter()
                .map(|&s| Arc::new(TwoLockBarrier::new(&machine, s)))
                .collect(),
        });
        // Locate this pid's component.
        let mut base = 0usize;
        let (index, rank, size) = sizes
            .iter()
            .enumerate()
            .find_map(|(i, &s)| {
                if self.pid() < base + s {
                    Some((i, self.pid() - base, s))
                } else {
                    base += s;
                    None
                }
            })
            .expect("pid not covered by component sizes");
        let comp = Component {
            player: self,
            index,
            rank,
            size,
            barrier: Arc::clone(&state.barriers[index]),
        };
        let r = body(&comp);
        // Unify: the whole force re-synchronizes before leaving Resolve.
        self.barrier();
        r
    }
}

#[cfg(test)]
mod tests {
    use crate::force::Force;
    use crate::schedule::ForceRange;
    use force_machdep::Mutex;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn processes_are_partitioned_correctly() {
        let force = Force::new(6);
        let map = Mutex::new(Vec::new());
        force.run(|p| {
            p.resolve(&[1, 2, 3], |c| {
                map.lock().push((p.pid(), c.index(), c.rank(), c.size()));
            });
        });
        let mut m = map.into_inner();
        m.sort_unstable();
        assert_eq!(
            m,
            vec![
                (0, 0, 0, 1),
                (1, 1, 0, 2),
                (2, 1, 1, 2),
                (3, 2, 0, 3),
                (4, 2, 1, 3),
                (5, 2, 2, 3),
            ]
        );
    }

    #[test]
    fn component_barriers_are_local() {
        // Component 1 can barrier among themselves even though component 0
        // never reaches any barrier inside the body.
        let force = Force::new(4);
        let c1_rounds = AtomicUsize::new(0);
        force.run(|p| {
            p.resolve(&[1, 3], |c| {
                if c.index() == 1 {
                    for _ in 0..10 {
                        c.barrier();
                        c1_rounds.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // component 0 does unrelated work and goes straight to
                // the unify barrier
            });
        });
        assert_eq!(c1_rounds.load(Ordering::Relaxed), 30);
    }

    #[test]
    fn component_section_runs_once_per_component() {
        let force = Force::new(6);
        let per_comp: Mutex<HashMap<usize, usize>> = Mutex::new(HashMap::new());
        force.run(|p| {
            p.resolve(&[2, 4], |c| {
                c.barrier_section(|| {
                    *per_comp.lock().entry(c.index()).or_insert(0) += 1;
                });
            });
        });
        let m = per_comp.into_inner();
        assert_eq!(m.get(&0), Some(&1));
        assert_eq!(m.get(&1), Some(&1));
    }

    #[test]
    fn component_presched_covers_range() {
        let force = Force::new(5);
        let hits: Mutex<HashMap<i64, usize>> = Mutex::new(HashMap::new());
        force.run(|p| {
            p.resolve(&[2, 3], |c| {
                if c.index() == 1 {
                    c.presched_do(ForceRange::to(1, 30), |i| {
                        *hits.lock().entry(i).or_insert(0) += 1;
                    });
                }
            });
        });
        let m = hits.into_inner();
        assert_eq!(m.len(), 30);
        assert!(m.values().all(|&v| v == 1));
    }

    #[test]
    fn resolve_returns_body_result_and_unifies() {
        let force = Force::new(4);
        let results = force.execute(|p| p.resolve(&[2, 2], |c| c.index() * 10 + c.rank()));
        let mut r = results;
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 10, 11]);
    }

    #[test]
    #[should_panic(expected = "must sum to the force size")]
    fn wrong_total_rejected() {
        let force = Force::new(4);
        force.run(|p| {
            p.resolve(&[1, 2], |_| {});
        });
    }

    #[test]
    fn repeated_resolve_with_different_shapes() {
        let force = Force::new(6);
        let acc = AtomicUsize::new(0);
        force.run(|p| {
            p.resolve(&[3, 3], |c| {
                acc.fetch_add(c.index(), Ordering::Relaxed);
            });
            p.resolve(&[1, 1, 4], |c| {
                acc.fetch_add(c.index() * 10, Ordering::Relaxed);
            });
        });
        // [3,3]: indices 0,0,0,1,1,1 -> 3;  [1,1,4]: 0,10,20,20,20,20 -> 90
        assert_eq!(acc.load(Ordering::Relaxed), 93);
    }
}
