//! The Force barrier — the two-lock algorithm of §4.2.
//!
//! The paper's `Barrier` macro "uses generic lock macros to implement the
//! entry code for a barrier construct using the Force parallel environment
//! variables for barrier locks and arrival reporting", citing \[AJ87\].  The
//! §4.2 `Selfsched DO` expansion shows both halves:
//!
//! ```fortran
//! C loop entry code                      C loop exit code
//!       lock(BARWIN)                           lock(BARWOT)
//!       ZZNBAR = ZZNBAR + 1                    ZZNBAR = ZZNBAR - 1
//!       IF (ZZNBAR .EQ. nproc) THEN            IF (ZZNBAR .EQ. 0) THEN
//!          unlock(BARWOT)                         unlock(BARWIN)
//!       ELSE                                   ELSE
//!          unlock(BARWIN)                         unlock(BARWOT)
//!       END IF                                 END IF
//! ```
//!
//! `BARWIN` (initially unlocked) admits arrivals one at a time; the last
//! arrival opens `BARWOT` (initially locked) instead of re-opening
//! `BARWIN`, and departures cascade through `BARWOT`, the last one
//! re-opening `BARWIN`.  The two locks make the barrier safely
//! *re-enterable*: no process can re-enter the next barrier episode while
//! stragglers are still leaving this one.
//!
//! The same episode structure carries the Force's two one-process hooks:
//! the **first** arriver may run initialization (the `IF (ZZNBAR .EQ. 0)`
//! index setup in the expansion) and the **last** arriver runs the
//! *barrier section* — the paper's "one arbitrary process is then allowed
//! to execute the barrier section; all other processes are suspended
//! until the single process leaves".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use force_machdep::fault;
use force_machdep::{Construct, LockHandle, LockState, Machine, OpStats};

/// The Force's two-lock, re-enterable barrier.
pub struct TwoLockBarrier {
    /// `BARWIN`: admits arrivals; initially unlocked.
    barwin: LockHandle,
    /// `BARWOT`: admits departures; initially locked.
    barwot: LockHandle,
    /// `ZZNBAR`: arrival count.  Only read/written while holding one of
    /// the two locks; the atomic type satisfies Rust, the locks provide
    /// the actual mutual exclusion (as in the Fortran original).
    zznbar: AtomicUsize,
    nproc: usize,
    stats: Arc<OpStats>,
}

impl TwoLockBarrier {
    /// Build a barrier for a force of `nproc` processes on `machine`.
    ///
    /// # Panics
    /// Panics if `nproc` is zero.
    pub fn new(machine: &Machine, nproc: usize) -> Self {
        assert!(nproc > 0, "a barrier needs at least one process");
        TwoLockBarrier {
            barwin: machine.make_dedicated_lock(LockState::Unlocked),
            barwot: machine.make_dedicated_lock(LockState::Locked),
            zznbar: AtomicUsize::new(0),
            nproc,
            stats: Arc::clone(machine.stats()),
        }
    }

    /// Number of processes the barrier synchronizes.
    pub fn nproc(&self) -> usize {
        self.nproc
    }

    /// Barrier entry: report arrival.  `on_first` runs in the first
    /// arriver (under `BARWIN`, i.e. in mutual exclusion — the §4.2 loop
    /// uses it to initialize the shared index); `on_last` runs in the
    /// last arriver while every other process is still suspended — the
    /// Force *barrier section*.
    ///
    /// Returns `Some` of the section's result in the process that ran it.
    pub fn enter<R>(&self, on_first: impl FnOnce(), on_last: impl FnOnce() -> R) -> Option<R> {
        let _c = fault::enter(Construct::Barrier);
        self.barwin.lock();
        let n = self.zznbar.load(Ordering::Relaxed);
        // Under BARWIN arrivals are serialized, so first/last flags are
        // exact; the trace layer uses them to bound the episode's
        // arrival spread.
        force_machdep::trace::barrier_arrive(n == 0, n + 1 == self.nproc);
        if n == 0 {
            on_first();
        }
        self.zznbar.store(n + 1, Ordering::Relaxed);
        if n + 1 == self.nproc {
            // Everyone else is (or will be) blocked on BARWOT; this is the
            // single-process window of the barrier section.  BARWIN stays
            // locked so no one can start the next episode's entry.
            let r = on_last();
            self.barwot.unlock();
            Some(r)
        } else {
            self.barwin.unlock();
            None
        }
    }

    /// Barrier exit: report departure.  The last departer re-opens
    /// `BARWIN`, enabling the next episode.
    ///
    /// # Panics
    /// Panics if the arrival count would underflow, i.e. an exit that was
    /// never paired with an [`enter`](Self::enter).  (In the normal lock
    /// discipline a stray exit parks on `BARWOT` before it can decrement;
    /// the check is the backstop for a corrupted episode, where a wrap to
    /// `usize::MAX` would silently deadlock every later episode instead of
    /// pointing at the caller bug.)  Checked in release builds too: this
    /// runs under a lock, so the cost is noise.
    pub fn exit(&self) {
        let _c = fault::enter(Construct::Barrier);
        self.barwot.lock();
        let n = self
            .zznbar
            .load(Ordering::Relaxed)
            .checked_sub(1)
            .expect("TwoLockBarrier::exit without a matching enter");
        self.zznbar.store(n, Ordering::Relaxed);
        force_machdep::trace::barrier_release(n == 0);
        if n == 0 {
            OpStats::count(&self.stats.barrier_episodes);
            self.barwin.unlock();
        } else {
            self.barwot.unlock();
        }
    }

    /// Forcibly restore the barrier to its initial state — `BARWIN`
    /// unlocked, `BARWOT` locked, no arrivals — for a session's next
    /// run.  After a clean episode this is a no-op; after a *cancelled*
    /// episode (a fault unwound processes mid-barrier) either lock may
    /// be stranded in either state, so each is forced rather than
    /// assumed.  Must only be called while no process is using the
    /// barrier.
    pub fn reset(&self) {
        if self.barwin.is_locked() {
            self.barwin.unlock();
        }
        // try_lock: acquires BARWOT if a straggler left it open, no-op
        // if it is already in its initial (locked) state.
        let _ = self.barwot.try_lock();
        self.zznbar.store(0, Ordering::Relaxed);
    }

    /// A plain barrier: wait for the whole force.
    pub fn wait(&self) {
        self.enter(|| (), || ());
        self.exit();
    }

    /// Barrier with a section: all processes wait; exactly one executes
    /// `section` while the rest stay suspended; then all proceed.
    /// Returns `Some(result)` in the process that ran the section.
    pub fn wait_section<R>(&self, section: impl FnOnce() -> R) -> Option<R> {
        let r = self.enter(|| (), section);
        self.exit();
        r
    }

    /// Barrier whose *first* arriver runs `init` in mutual exclusion —
    /// the idiom of the selfscheduled loop's entry code.
    pub fn wait_first(&self, init: impl FnOnce()) {
        self.enter(init, || ());
        self.exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use force_machdep::{spawn_force, MachineId};
    use std::sync::atomic::AtomicUsize as Counter;

    fn machine() -> Arc<Machine> {
        Machine::new(MachineId::EncoreMultimax)
    }

    #[test]
    fn single_process_barrier_is_a_noop() {
        let m = machine();
        let b = TwoLockBarrier::new(&m, 1);
        b.wait();
        b.wait();
        assert_eq!(b.wait_section(|| 3), Some(3));
    }

    #[test]
    fn all_processes_synchronize() {
        let m = machine();
        let n = 8;
        let b = TwoLockBarrier::new(&m, n);
        let phase = Counter::new(0);
        spawn_force(n, m.stats(), |_pid| {
            for round in 0..20 {
                // Everyone increments, then the barrier, then everyone must
                // observe the full round's worth of increments.
                phase.fetch_add(1, Ordering::SeqCst);
                b.wait();
                let seen = phase.load(Ordering::SeqCst);
                assert!(
                    seen >= (round + 1) * n,
                    "round {round}: saw {seen} < {}",
                    (round + 1) * n
                );
                b.wait(); // keep rounds separated
            }
        });
        assert_eq!(phase.load(Ordering::SeqCst), 20 * n);
    }

    #[test]
    fn exactly_one_process_runs_the_section() {
        let m = machine();
        let n = 6;
        let b = TwoLockBarrier::new(&m, n);
        let ran = Counter::new(0);
        let winners = spawn_force(n, m.stats(), |_pid| {
            let mut mine = 0;
            for _ in 0..25 {
                if b.wait_section(|| ran.fetch_add(1, Ordering::SeqCst))
                    .is_some()
                {
                    mine += 1;
                }
            }
            mine
        });
        assert_eq!(ran.load(Ordering::SeqCst), 25);
        assert_eq!(winners.iter().sum::<usize>(), 25);
    }

    #[test]
    fn section_runs_while_others_are_suspended() {
        // While the section runs, no process may have passed the barrier:
        // the section sets a flag that every process checks right after.
        let m = machine();
        let n = 4;
        let b = TwoLockBarrier::new(&m, n);
        let stamp = Counter::new(0);
        spawn_force(n, m.stats(), |_pid| {
            for round in 1..=10 {
                b.wait_section(|| stamp.store(round, Ordering::SeqCst));
                // By the time anyone leaves, the section must be done.
                assert_eq!(stamp.load(Ordering::SeqCst), round);
                b.wait();
            }
        });
    }

    #[test]
    fn first_arriver_initializes() {
        let m = machine();
        let n = 5;
        let b = TwoLockBarrier::new(&m, n);
        let init_runs = Counter::new(0);
        spawn_force(n, m.stats(), |_pid| {
            for _ in 0..10 {
                b.wait_first(|| {
                    init_runs.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(init_runs.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn reentry_is_safe_under_immediate_looping() {
        // The two-lock design exists so a barrier in a loop cannot be
        // re-entered while stragglers are leaving; hammer that case.
        let m = machine();
        let n = 8;
        let b = TwoLockBarrier::new(&m, n);
        let round_counter = Counter::new(0);
        spawn_force(n, m.stats(), |_pid| {
            for r in 0..200 {
                b.wait_section(|| round_counter.fetch_add(1, Ordering::SeqCst));
                assert_eq!(round_counter.load(Ordering::SeqCst), r + 1);
            }
        });
        assert_eq!(round_counter.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn episodes_are_counted() {
        let m = machine();
        let n = 3;
        let b = TwoLockBarrier::new(&m, n);
        let before = m.stats().snapshot().barrier_episodes;
        spawn_force(n, m.stats(), |_pid| {
            for _ in 0..7 {
                b.wait();
            }
        });
        let after = m.stats().snapshot().barrier_episodes;
        assert_eq!(after - before, 7);
    }

    #[test]
    fn works_on_every_machine_personality() {
        for id in MachineId::all() {
            let m = Machine::new(id);
            let n = 4;
            let b = TwoLockBarrier::new(&m, n);
            let c = Counter::new(0);
            spawn_force(n, m.stats(), |_pid| {
                c.fetch_add(1, Ordering::SeqCst);
                b.wait();
                assert_eq!(c.load(Ordering::SeqCst), n, "{}", id.name());
            });
        }
    }
}
