//! Pcase — parallel case over independent code sections (§3.3 / §4.2).
//!
//! "Pcase is a similar construct to DOALL, which distributes different
//! single stream code blocks over the processes of the Force: Each block
//! may be associated with a condition, and any number of conditions may
//! be true simultaneously.  The prescheduled version of this macro
//! allocates the blocks sequentially to the processes and is thus
//! completely machine independent.  A selfscheduled Pcase is similar to
//! the selfscheduled do loop in that an asynchronous variable is needed
//! for work distribution."
//!
//! Usage:
//! ```
//! # use force_core::prelude::*;
//! # let force = Force::new(3);
//! force.run(|p| {
//!     p.pcase()
//!         .sect(|| { /* block 1 */ })
//!         .csect(1 + 1 == 2, || { /* conditional block 2 */ })
//!         .sect(|| { /* block 3 */ })
//!         .selfsched();
//! });
//! ```

use force_machdep::fault;
use force_machdep::{Construct, SchedulePolicy};

use crate::player::Player;

/// One section of a Pcase: an optional condition plus the block.
struct Section<'s> {
    cond: bool,
    body: Box<dyn FnOnce() + 's>,
}

/// Builder for a Pcase statement; created by [`Player::pcase`].
///
/// Every process of the force must build the *same number* of sections
/// (they execute the same program text); which process runs which section
/// is decided by the scheduling mode.
pub struct Pcase<'p, 's> {
    player: &'p Player,
    sections: Vec<Section<'s>>,
}

impl Player {
    /// Open a Pcase statement.
    pub fn pcase(&self) -> Pcase<'_, '_> {
        Pcase {
            player: self,
            sections: Vec::new(),
        }
    }
}

impl<'p, 's> Pcase<'p, 's> {
    /// An unconditional section (`Usect`).
    pub fn sect(mut self, body: impl FnOnce() + 's) -> Self {
        self.sections.push(Section {
            cond: true,
            body: Box::new(body),
        });
        self
    }

    /// A conditional section (`Csect`): executed only if `cond` is true.
    /// Any number of conditions may be true simultaneously.
    pub fn csect(mut self, cond: bool, body: impl FnOnce() + 's) -> Self {
        self.sections.push(Section {
            cond,
            body: Box::new(body),
        });
        self
    }

    /// Prescheduled execution: block `j` is allocated to process
    /// `j mod nproc`.  "Completely machine independent."  Ends with the
    /// construct barrier.
    pub fn presched(self) {
        let _c = fault::enter(Construct::Pcase);
        fault::inject(Construct::Pcase);
        let Pcase { player, sections } = self;
        let nproc = player.nproc();
        let pid = player.pid();
        for (j, s) in sections.into_iter().enumerate() {
            if j % nproc == pid && s.cond {
                (s.body)();
            }
        }
        player.barrier();
    }

    /// Selfscheduled execution: processes claim the next unexecuted block
    /// through the same one-trip selfscheduling driver as `Selfsched DO`
    /// ("a selfscheduled Pcase is similar to the selfscheduled do loop").
    /// Ends with the construct barrier.
    pub fn selfsched(self) {
        let _c = fault::enter(Construct::Pcase);
        fault::inject(Construct::Pcase);
        let Pcase { player, sections } = self;
        let n = sections.len() as u64;
        // Each player owns its *own* closures; the shared counter only
        // coordinates which ordinal each player executes.
        let mut sections: Vec<Option<Section<'s>>> = sections.into_iter().map(Some).collect();
        crate::doall::dispatch_trips(
            player,
            SchedulePolicy::Selfsched { chunk: 1 },
            n,
            &mut |j| {
                let s = sections[j as usize].take().expect("section claimed twice");
                if s.cond {
                    (s.body)();
                }
            },
        );
        player.barrier();
    }
}

#[cfg(test)]
mod tests {
    use crate::force::Force;
    use force_machdep::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_section_runs_exactly_once_presched() {
        for nproc in [1, 2, 3, 8] {
            let force = Force::new(nproc);
            let counts: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
            force.run(|p| {
                let mut pc = p.pcase();
                for c in &counts {
                    pc = pc.sect(|| {
                        c.fetch_add(1, Ordering::SeqCst);
                    });
                }
                pc.presched();
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 1, "nproc={nproc} section {i}");
            }
        }
    }

    #[test]
    fn every_section_runs_exactly_once_selfsched() {
        for nproc in [1, 2, 3, 8] {
            let force = Force::new(nproc);
            let counts: Vec<AtomicUsize> = (0..7).map(|_| AtomicUsize::new(0)).collect();
            force.run(|p| {
                let mut pc = p.pcase();
                for c in &counts {
                    pc = pc.sect(|| {
                        c.fetch_add(1, Ordering::SeqCst);
                    });
                }
                pc.selfsched();
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 1, "nproc={nproc} section {i}");
            }
        }
    }

    #[test]
    fn false_conditions_suppress_sections() {
        let force = Force::new(4);
        let ran = Mutex::new(Vec::new());
        force.run(|p| {
            p.pcase()
                .csect(true, || ran.lock().push("a"))
                .csect(false, || ran.lock().push("b"))
                .sect(|| ran.lock().push("c"))
                .csect(false, || ran.lock().push("d"))
                .selfsched();
        });
        let mut r = ran.into_inner();
        r.sort_unstable();
        assert_eq!(r, vec!["a", "c"]);
    }

    #[test]
    fn pcase_is_a_barrier() {
        let force = Force::new(6);
        let done = AtomicUsize::new(0);
        force.run(|p| {
            p.pcase()
                .sect(|| {
                    done.fetch_add(1, Ordering::SeqCst);
                })
                .sect(|| {
                    done.fetch_add(1, Ordering::SeqCst);
                })
                .sect(|| {
                    done.fetch_add(1, Ordering::SeqCst);
                })
                .presched();
            assert_eq!(done.load(Ordering::SeqCst), 3);
        });
    }

    #[test]
    fn presched_assignment_is_cyclic() {
        let force = Force::new(3);
        let who = Mutex::new(vec![usize::MAX; 7]);
        force.run(|p| {
            let pid = p.pid();
            let mut pc = p.pcase();
            for j in 0..7 {
                let who = &who;
                pc = pc.sect(move || {
                    who.lock()[j] = pid;
                });
            }
            pc.presched();
        });
        assert_eq!(who.into_inner(), vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn more_processes_than_sections() {
        let force = Force::new(8);
        let c = AtomicUsize::new(0);
        force.run(|p| {
            p.pcase()
                .sect(|| {
                    c.fetch_add(1, Ordering::SeqCst);
                })
                .selfsched();
        });
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn empty_pcase_completes() {
        let force = Force::new(4);
        force.run(|p| {
            p.pcase().presched();
            p.pcase().selfsched();
        });
    }

    #[test]
    fn sections_can_mutate_private_state() {
        let force = Force::new(4);
        let results = force.execute(|p| {
            let mut private = 0u64;
            p.pcase().sect(|| private += 1).selfsched();
            private
        });
        // Exactly one player's private variable was incremented.
        assert_eq!(results.iter().sum::<u64>(), 1);
    }
}
