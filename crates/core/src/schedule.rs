//! Fortran `DO`-loop index ranges.
//!
//! Force work distribution is expressed over Fortran DO ranges
//! `start, last, incr` with *inclusive* bounds and possibly negative
//! increments.  [`ForceRange`] reproduces the Fortran iteration-count rule
//! so both DOALL flavours distribute exactly the indices a sequential
//! `DO` would visit, in the same per-stream order.
//!
//! *How* those trips are divided among the processes of the force is a
//! [`SchedulePolicy`] (re-exported from the machine-dependent layer,
//! where the default policy of a run lives): the paper's cyclic
//! prescheduling and §4.2 selfscheduling, plus block, guided, and
//! work-stealing extensions, all executed by one driver in
//! [`crate::doall`].

pub use force_machdep::SchedulePolicy;

/// An inclusive, strided index range: `DO K = start, last, incr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ForceRange {
    /// First index value.
    pub start: i64,
    /// Inclusive bound (the loop runs while the index has not passed it).
    pub last: i64,
    /// Step; must be nonzero.
    pub incr: i64,
}

impl ForceRange {
    /// `DO K = start, last, incr`.
    ///
    /// # Panics
    /// Panics if `incr == 0` (as a Fortran compiler would reject it).
    pub fn new(start: i64, last: i64, incr: i64) -> Self {
        assert!(incr != 0, "DO-loop increment must be nonzero");
        ForceRange { start, last, incr }
    }

    /// `DO K = start, last` (unit stride).
    pub fn to(start: i64, last: i64) -> Self {
        Self::new(start, last, 1)
    }

    /// The Fortran iteration count: `max(0, (last - start + incr) / incr)`.
    ///
    /// # Panics
    /// Panics with "range arithmetic overflow" if `last - start + incr`
    /// does not fit in `i64`.  Both subtraction and addition are checked:
    /// an unchecked `last - start` would wrap in release builds (e.g.
    /// `start = i64::MIN, last = i64::MAX`) and silently return a bogus
    /// count that the DOALL schedulers would then distribute.
    pub fn count(&self) -> u64 {
        let span = self
            .last
            .checked_sub(self.start)
            .expect("range arithmetic overflow")
            .checked_add(self.incr)
            .expect("range arithmetic overflow");
        let n = span / self.incr;
        if n <= 0 {
            0
        } else {
            n as u64
        }
    }

    /// Whether the loop body would never execute.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The `i`-th index value of the loop (0-based trip number).
    ///
    /// # Panics
    /// Panics if `i >= self.count()`.
    pub fn nth(&self, i: u64) -> i64 {
        assert!(
            i < self.count(),
            "trip {i} out of range (count {})",
            self.count()
        );
        self.start + (i as i64) * self.incr
    }

    /// The §4.2 completion test:
    /// `(INCR > 0 .AND. K <= LAST) .OR. (INCR < 0 .AND. K >= LAST)`.
    pub fn in_bounds(&self, k: i64) -> bool {
        (self.incr > 0 && k <= self.last) || (self.incr < 0 && k >= self.last)
    }

    /// Iterate all index values sequentially (testing aid).
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.count()).map(move |i| self.nth(i))
    }
}

/// Convert a Rust exclusive range (`0..n`) to a unit-stride Force range.
impl From<std::ops::Range<i64>> for ForceRange {
    fn from(r: std::ops::Range<i64>) -> Self {
        ForceRange::new(r.start, r.end - 1, 1)
    }
}

/// Convert a Rust inclusive range (`0..=n`).
impl From<std::ops::RangeInclusive<i64>> for ForceRange {
    fn from(r: std::ops::RangeInclusive<i64>) -> Self {
        ForceRange::new(*r.start(), *r.end(), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_count_and_values() {
        let r = ForceRange::to(1, 5);
        assert_eq!(r.count(), 5);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn strided_count() {
        let r = ForceRange::new(1, 10, 3);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![1, 4, 7, 10]);
        let r = ForceRange::new(1, 9, 3);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![1, 4, 7]);
    }

    #[test]
    fn negative_stride() {
        let r = ForceRange::new(10, 1, -4);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![10, 6, 2]);
        assert!(r.in_bounds(2));
        assert!(!r.in_bounds(0));
    }

    #[test]
    fn empty_ranges() {
        assert!(ForceRange::to(5, 4).is_empty());
        assert!(ForceRange::new(1, 10, -1).is_empty());
        assert_eq!(ForceRange::to(5, 4).count(), 0);
    }

    #[test]
    fn single_trip() {
        let r = ForceRange::to(7, 7);
        assert_eq!(r.count(), 1);
        assert_eq!(r.nth(0), 7);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_increment_rejected() {
        let _ = ForceRange::new(1, 10, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nth_out_of_range_panics() {
        ForceRange::to(1, 3).nth(3);
    }

    #[test]
    fn from_rust_ranges() {
        let r: ForceRange = (0..4).into();
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let r: ForceRange = (0..=4).into();
        assert_eq!(r.count(), 5);
    }

    #[test]
    fn count_near_i64_extremes() {
        // Spans that fit exactly: no panic, correct trip counts.
        let r = ForceRange::new(i64::MAX - 4, i64::MAX, 1);
        assert_eq!(r.count(), 5);
        assert_eq!(r.nth(4), i64::MAX);
        let r = ForceRange::new(i64::MIN, i64::MIN + 4, 2);
        assert_eq!(r.count(), 3);
        assert_eq!(
            r.iter().collect::<Vec<_>>(),
            vec![i64::MIN, i64::MIN + 2, i64::MIN + 4]
        );
        // Empty in the backwards direction, even from an extreme start
        // (last - start = -i64::MAX still fits, giving a negative span).
        assert!(ForceRange::new(i64::MAX, 0, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "range arithmetic overflow")]
    fn count_overflowing_subtraction_panics() {
        // last - start alone overflows i64: must panic (release builds
        // would otherwise wrap and report a bogus count).  The reversed
        // extremes overflow the same way via is_empty.
        let _ = ForceRange::new(i64::MIN, i64::MAX, 1).count();
    }

    #[test]
    #[should_panic(expected = "range arithmetic overflow")]
    fn count_overflowing_addition_panics() {
        // last - start fits, but adding incr overflows.
        let _ = ForceRange::new(0, i64::MAX, 1).count();
    }

    #[test]
    fn completion_test_matches_membership() {
        // in_bounds is the paper's loop-continuation predicate: it accepts
        // any k that has not passed LAST, which for the values actually
        // generated coincides with membership.
        let r = ForceRange::new(2, 20, 3);
        for k in r.iter() {
            assert!(r.in_bounds(k));
        }
        assert!(!r.in_bounds(23));
    }
}
