//! Critical sections — control-oriented mutual exclusion (§3.4).
//!
//! "Critical sections implement the mutual exclusion condition.  Only one
//! process at a given time is allowed to execute within the critical
//! section."
//!
//! Critical sections are *named*: two `Critical name ... End critical`
//! regions with the same name exclude each other (they share one lock
//! variable), regions with different names are independent.  The name
//! table lives in the force's parallel environment, so the same name in
//! different subroutines aliases the same lock — exactly like a shared
//! Fortran lock variable.

use force_machdep::fault;
use force_machdep::{trace, with_lock, Construct, LockHandle, LockState, Machine, RawLock};

use crate::player::Player;

impl Player {
    /// Execute `body` inside the critical section `name`: at most one
    /// process of the force is inside any region with this name at a time.
    ///
    /// A panicking `body` cannot wedge its peers: the lock is released on
    /// unwind (RAII inside [`with_lock`]) *and* the force's fault plane
    /// attributes the fault to this critical section, so processes queued
    /// on the same name unwind promptly instead of inheriting a stale
    /// region.  The caller of `Force::try_execute` sees
    /// `ProcessFault { construct: "critical", .. }`.
    pub fn critical<R>(&self, name: &str, body: impl FnOnce() -> R) -> R {
        let _c = fault::enter(Construct::Critical);
        fault::inject(Construct::Critical);
        let lock = self.named_lock(name);
        // With tracing armed, wait (to acquire) and hold (to release,
        // even by unwind) times are attributed to this section's name;
        // without it the path is exactly the pre-trace `with_lock`.
        match trace::named_lock_id(name) {
            None => with_lock(lock.as_ref(), body),
            Some(id) => {
                let t0 = trace::now_ns().unwrap_or(0);
                lock.lock();
                let entered = trace::now_ns().unwrap_or(t0);
                trace::named_wait(id, entered.saturating_sub(t0));
                struct HoldRelease<'a> {
                    lock: &'a dyn RawLock,
                    id: u32,
                    since: u64,
                }
                impl Drop for HoldRelease<'_> {
                    fn drop(&mut self) {
                        let now = trace::now_ns().unwrap_or(self.since);
                        trace::named_hold(self.id, now.saturating_sub(self.since));
                        self.lock.unlock();
                    }
                }
                let _hold = HoldRelease {
                    lock: lock.as_ref(),
                    id,
                    since: entered,
                };
                body()
            }
        }
    }
}

/// A standalone critical section usable outside a force (e.g. between a
/// force and helper threads), backed by a machine vendor lock.
pub struct CriticalSection {
    lock: LockHandle,
}

impl CriticalSection {
    /// Create a critical section on `machine`'s vendor lock.
    pub fn new(machine: &Machine) -> Self {
        CriticalSection {
            lock: machine.make_lock(LockState::Unlocked),
        }
    }

    /// Execute `body` in mutual exclusion.
    pub fn enter<R>(&self, body: impl FnOnce() -> R) -> R {
        with_lock(self.lock.as_ref(), body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::Force;
    use force_machdep::MachineId;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    #[test]
    fn named_critical_excludes_same_name() {
        let force = Force::new(8);
        let counter = AtomicU64::new(0);
        let inside = AtomicBool::new(false);
        force.run(|p| {
            for _ in 0..200 {
                p.critical("UPDATE", || {
                    assert!(!inside.swap(true, Ordering::SeqCst));
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    inside.store(false, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 200);
    }

    #[test]
    fn different_names_do_not_exclude() {
        // A process parked inside "A" must not prevent "B" from running:
        // pid 0 sits in A until B has been executed by pid 1.
        let force = Force::new(2);
        let b_done = AtomicBool::new(false);
        force.run(|p| {
            if p.pid() == 0 {
                p.critical("A", || {
                    while !b_done.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                });
            } else {
                p.critical("B", || {
                    b_done.store(true, Ordering::Release);
                });
            }
        });
    }

    #[test]
    fn critical_returns_body_value() {
        let force = Force::new(3);
        let results = force.execute(|p| p.critical("R", || p.pid() * 2));
        let mut r = results;
        r.sort_unstable();
        assert_eq!(r, vec![0, 2, 4]);
    }

    #[test]
    fn standalone_critical_section_excludes() {
        let m = Machine::new(MachineId::Cray2);
        let cs = CriticalSection::new(&m);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..500 {
                        cs.enter(|| {
                            let v = counter.load(Ordering::Relaxed);
                            counter.store(v + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn panic_inside_critical_releases_the_lock() {
        let force = Force::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            force.run(|p| {
                p.critical("P", || panic!("inside"));
            });
        }));
        assert!(result.is_err());
        // A fresh force reusing nothing still works; more importantly, a
        // standalone lock poisoned by panic would deadlock here.
        let force2 = Force::new(2);
        let ok = AtomicU64::new(0);
        force2.run(|p| {
            p.critical("P", || {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }
}
