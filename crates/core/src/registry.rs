//! Per-occurrence shared state for collective constructs.
//!
//! Force work-distribution constructs (selfscheduled DOALL, selfscheduled
//! Pcase, Askfor, Resolve) need a piece of *shared* state per dynamic
//! occurrence — the `K_shared` and `LOOP100` variables the preprocessor
//! declares for each loop.  In the macro implementation those names are
//! generated at preprocess time; in the native embedding we recover the
//! same association dynamically: the Force model is SPMD, every process
//! executes the same sequence of collective constructs, so the *n*-th
//! collective a process encounters is the same construct for all
//! processes.  Each player counts its collectives; the registry maps that
//! ordinal to a lazily created shared-state slot.
//!
//! If processes diverge (one skips a collective another executes), the
//! program is erroneous in the Force model too; the registry detects the
//! common cases and panics with a diagnostic instead of deadlocking.

use std::any::Any;
use std::sync::Arc;

use force_machdep::Mutex;

/// Ordered, lazily created shared-state slots for one force execution.
pub(crate) struct CollectiveRegistry {
    slots: Mutex<Vec<Arc<dyn Any + Send + Sync>>>,
}

impl CollectiveRegistry {
    pub(crate) fn new() -> Self {
        CollectiveRegistry {
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Fetch the state for collective occurrence `idx`, creating it with
    /// `init` if this player is the first to arrive.
    ///
    /// # Panics
    /// Panics if `idx` skips ahead of the next unallocated slot (a player
    /// raced past a collective no one has entered — divergent control
    /// flow), or if the slot exists with a different type (two players
    /// executed *different* constructs as their `idx`-th collective).
    pub(crate) fn nth<T, F>(&self, idx: usize, init: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let mut slots = self.slots.lock();
        if idx < slots.len() {
            match Arc::downcast::<T>(Arc::clone(&slots[idx])) {
                Ok(t) => t,
                Err(_) => panic!(
                    "divergent force: collective #{idx} was created as a different \
                     construct by another process"
                ),
            }
        } else if idx == slots.len() {
            let state = Arc::new(init());
            slots.push(Arc::clone(&state) as Arc<dyn Any + Send + Sync>);
            state
        } else {
            panic!(
                "divergent force: process reached collective #{idx} but only {} have \
                 been entered (a process skipped a collective construct)",
                slots.len()
            );
        }
    }

    /// Forget every occurrence slot, returning the registry to its
    /// initial state for the session's next run.  Each run is a fresh
    /// SPMD episode: occurrence ordinals restart at zero, so slot `n`
    /// of run *k + 1* is generally a *different* construct than slot
    /// `n` of run *k* and must not inherit its state (a leftover
    /// selfsched counter would skip iterations; a leftover slot of a
    /// different type would panic as divergence).
    pub(crate) fn reset(&self) {
        self.slots.lock().clear();
    }

    /// How many collective occurrences have been entered so far.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.slots.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn first_arrival_creates_then_others_share() {
        let reg = CollectiveRegistry::new();
        let a: Arc<AtomicUsize> = reg.nth(0, || AtomicUsize::new(5));
        let b: Arc<AtomicUsize> = reg.nth(0, || AtomicUsize::new(99));
        assert_eq!(b.load(Ordering::Relaxed), 5, "init runs only once");
        a.store(7, Ordering::Relaxed);
        assert_eq!(b.load(Ordering::Relaxed), 7, "same underlying state");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn sequential_occurrences_get_distinct_slots() {
        let reg = CollectiveRegistry::new();
        let a: Arc<AtomicUsize> = reg.nth(0, || AtomicUsize::new(1));
        let b: Arc<AtomicUsize> = reg.nth(1, || AtomicUsize::new(2));
        assert_eq!(a.load(Ordering::Relaxed), 1);
        assert_eq!(b.load(Ordering::Relaxed), 2);
    }

    #[test]
    #[should_panic(expected = "skipped a collective")]
    fn skipping_ahead_panics() {
        let reg = CollectiveRegistry::new();
        let _: Arc<AtomicUsize> = reg.nth(2, || AtomicUsize::new(0));
    }

    #[test]
    #[should_panic(expected = "different construct")]
    fn type_mismatch_panics() {
        let reg = CollectiveRegistry::new();
        let _: Arc<AtomicUsize> = reg.nth(0, || AtomicUsize::new(0));
        let _: Arc<String> = reg.nth(0, String::new);
    }

    #[test]
    fn concurrent_first_arrivals_agree() {
        let reg = Arc::new(CollectiveRegistry::new());
        let mut values = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let reg = Arc::clone(&reg);
                    s.spawn(move || {
                        let slot: Arc<AtomicUsize> = reg.nth(0, || AtomicUsize::new(i));
                        slot.load(Ordering::Relaxed)
                    })
                })
                .collect();
            for h in handles {
                values.push(h.join().unwrap());
            }
        });
        // Whatever value won, everyone saw the same one.
        assert!(values.windows(2).all(|w| w[0] == w[1]));
    }
}
