//! Convenience re-exports for writing Force programs.
//!
//! ```
//! use force_core::prelude::*;
//!
//! let force = Force::new(4);
//! force.run(|p| {
//!     p.presched_do(ForceRange::to(1, 10), |_i| { /* ... */ });
//! });
//! ```

pub use crate::askfor::AskforPot;
pub use crate::asyncvar::{Async, AsyncArray};
pub use crate::barrier::TwoLockBarrier;
pub use crate::critical::CriticalSection;
pub use crate::force::Force;
pub use crate::player::Player;
pub use crate::resolve::Component;
pub use crate::schedule::{ForceRange, SchedulePolicy};
pub use crate::shared::{SharedCell, SharedF64Array, SharedF64Matrix, SharedI64Array};
pub use force_machdep::{
    FaultInjection, ForcePool, Machine, MachineId, ProcessFault, ProfileReport, RunOptions,
    TraceConfig,
};
