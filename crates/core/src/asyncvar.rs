//! Asynchronous variables — data-oriented synchronization (§3.2, §3.4, §4.2).
//!
//! An `Async` variable carries a full/empty state with its value:
//!
//! * **Produce** "waits for the variable to be empty, writes its value and
//!   sets it to full";
//! * **Consume** "waits for the variable to be full, reads the value and
//!   sets it to empty";
//! * **Void** sets the state to empty regardless of its previous state;
//! * the state can also be **tested** ([`Async::is_full`]).
//!
//! §4.2 gives the portable implementation: "With the exception of the HEP
//! computer which provided a hardware full/empty state for every memory
//! cell, all other machines require the use of two locks":
//!
//! ```text
//! empty  =  E locked,  F unlocked          Produce:  Lock F
//! full   =  F locked,  E unlocked                    write value
//!                                                    Unlock E
//!                                          Consume:  Lock E
//!                                                    read value
//!                                                    Unlock F
//! ```
//!
//! [`Async::new`] picks the implementation from the machine personality:
//! hardware full/empty on the HEP, the two-lock protocol everywhere else.

use std::cell::UnsafeCell;

use force_machdep::fault;
use force_machdep::{Construct, FullEmptyState, LockHandle, LockState, Machine};

/// A shared variable with full/empty state (`Async` class).
pub struct Async<T> {
    state: State,
    /// The value slot.  Exclusive access is guaranteed by the full/empty
    /// protocol: a writer holds either the `F` lock (two-lock produce) or
    /// the hardware BUSY window; a reader symmetrically.  That protocol is
    /// exactly the paper's, and it is what makes this `UnsafeCell` sound.
    value: UnsafeCell<Option<T>>,
}

enum State {
    /// Two-lock emulation (all machines but the HEP).
    TwoLock { e: LockHandle, f: LockHandle },
    /// Hardware full/empty tag (HEP).
    Hardware(FullEmptyState),
}

// SAFETY: the value cell is only touched inside the produce/consume
// exclusion windows described on `value`; `T: Send` is required because
// values move between processes.
unsafe impl<T: Send> Sync for Async<T> {}
unsafe impl<T: Send> Send for Async<T> {}

impl<T> Async<T> {
    /// An empty asynchronous variable on `machine`.
    pub fn new(machine: &Machine) -> Self {
        match machine.hardware_fullempty(false) {
            Some(fe) => Async {
                state: State::Hardware(fe),
                value: UnsafeCell::new(None),
            },
            None => Async {
                // empty = E locked, F unlocked
                state: State::TwoLock {
                    e: machine.make_lock(LockState::Locked),
                    f: machine.make_lock(LockState::Unlocked),
                },
                value: UnsafeCell::new(None),
            },
        }
    }

    /// A full asynchronous variable holding `value`.
    pub fn new_full(machine: &Machine, value: T) -> Self {
        match machine.hardware_fullempty(true) {
            Some(fe) => Async {
                state: State::Hardware(fe),
                value: UnsafeCell::new(Some(value)),
            },
            None => Async {
                // full = F locked, E unlocked
                state: State::TwoLock {
                    e: machine.make_lock(LockState::Unlocked),
                    f: machine.make_lock(LockState::Locked),
                },
                value: UnsafeCell::new(Some(value)),
            },
        }
    }

    /// Produce: wait for empty, write the value, set full.
    pub fn produce(&self, value: T) {
        let _c = fault::enter(Construct::Produce);
        fault::inject(Construct::Produce);
        match &self.state {
            State::TwoLock { e, f } => {
                f.lock();
                // SAFETY: we hold F; no other producer can be in this
                // window, and consumers are excluded until E is unlocked.
                unsafe { *self.value.get() = Some(value) };
                e.unlock();
            }
            State::Hardware(fe) => {
                fe.acquire_empty();
                // SAFETY: the BUSY window gives exclusive access.
                unsafe { *self.value.get() = Some(value) };
                fe.release_full();
            }
        }
    }

    /// Consume: wait for full, take the value, set empty.
    pub fn consume(&self) -> T {
        let _c = fault::enter(Construct::Consume);
        fault::inject(Construct::Consume);
        match &self.state {
            State::TwoLock { e, f } => {
                e.lock();
                // SAFETY: we hold E; symmetric to produce.
                let v = unsafe { (*self.value.get()).take() };
                f.unlock();
                v.expect("async variable was full but held no value")
            }
            State::Hardware(fe) => {
                fe.acquire_full();
                // SAFETY: the BUSY window gives exclusive access.
                let v = unsafe { (*self.value.get()).take() };
                fe.release_empty();
                v.expect("async variable was full but held no value")
            }
        }
    }

    /// Copy: wait for full and read the value *without* emptying — the
    /// read-only companion of consume, for broadcast-style use.
    pub fn copy(&self) -> T
    where
        T: Clone,
    {
        let _c = fault::enter(Construct::Copy);
        match &self.state {
            State::TwoLock { e, f: _ } => {
                e.lock();
                // SAFETY: holding E excludes consumers; F is already
                // locked (full), excluding producers.
                let v = unsafe { (*self.value.get()).clone() };
                e.unlock(); // back to full: F locked, E unlocked
                v.expect("async variable was full but held no value")
            }
            State::Hardware(fe) => {
                fe.acquire_full();
                let v = unsafe { (*self.value.get()).clone() };
                fe.release_full(); // leave full
                v.expect("async variable was full but held no value")
            }
        }
    }

    /// Void: force the state to empty regardless of its previous state,
    /// discarding any value.  "Mainly used to initialize the state of
    /// asynchronous variables" (§4.2).
    pub fn void(&self) {
        let _c = fault::enter(Construct::Void);
        match &self.state {
            State::TwoLock { e, f } => loop {
                if e.try_lock() {
                    // Was full (we now hold both): drop the value, then
                    // open F to reach the canonical empty state.
                    // SAFETY: holding E and F excludes everyone.
                    unsafe { *self.value.get() = None };
                    f.unlock();
                    return;
                }
                if f.try_lock() {
                    // Was empty (E locked, F was unlocked): restore.
                    f.unlock();
                    return;
                }
                // A produce/consume is mid-flight; retry.
                fault::check_cancel();
                std::hint::spin_loop();
            },
            State::Hardware(fe) => loop {
                if fe.try_acquire_full() {
                    // Was full: clear the value in the BUSY window.
                    // SAFETY: BUSY window gives exclusive access.
                    unsafe { *self.value.get() = None };
                    fe.release_empty();
                    return;
                }
                if fe.try_acquire_empty() {
                    // Was already empty: restore the tag.
                    fe.release_empty();
                    return;
                }
                // Mid-transfer (BUSY); wait it out.
                fault::check_cancel();
                std::hint::spin_loop();
            },
        }
    }

    /// Test the state without blocking.  Inherently a snapshot: the state
    /// may change immediately after (same on the original machines).
    pub fn is_full(&self) -> bool {
        match &self.state {
            // full = E unlocked; empty = E locked.  Mid-transfer (both
            // locked) reads as not-full, which is a legal snapshot.
            State::TwoLock { e, .. } => !e.is_locked(),
            State::Hardware(fe) => fe.is_full(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::Force;
    use force_machdep::MachineId;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn machines() -> Vec<Arc<Machine>> {
        MachineId::all().into_iter().map(Machine::new).collect()
    }

    #[test]
    fn produce_consume_roundtrip_on_every_machine() {
        for m in machines() {
            let v: Async<i64> = Async::new(&m);
            assert!(!v.is_full(), "{}", m.id().name());
            v.produce(42);
            assert!(v.is_full(), "{}", m.id().name());
            assert_eq!(v.consume(), 42, "{}", m.id().name());
            assert!(!v.is_full(), "{}", m.id().name());
        }
    }

    #[test]
    fn new_full_starts_full() {
        for m in machines() {
            let v = Async::new_full(&m, "hello".to_string());
            assert!(v.is_full());
            assert_eq!(v.consume(), "hello");
        }
    }

    #[test]
    fn copy_reads_without_emptying() {
        for m in machines() {
            let v = Async::new_full(&m, 7i32);
            assert_eq!(v.copy(), 7);
            assert!(v.is_full(), "{}", m.id().name());
            assert_eq!(v.consume(), 7);
        }
    }

    #[test]
    fn void_empties_from_full_and_is_idempotent() {
        for m in machines() {
            let v = Async::new_full(&m, 5u8);
            v.void();
            assert!(!v.is_full(), "{}", m.id().name());
            v.void();
            assert!(!v.is_full());
            // After a void, produce works normally.
            v.produce(9);
            assert_eq!(v.consume(), 9);
        }
    }

    #[test]
    fn consume_blocks_until_produced() {
        for m in machines() {
            let v: Arc<Async<u64>> = Arc::new(Async::new(&m));
            let v2 = Arc::clone(&v);
            let t = std::thread::spawn(move || v2.consume());
            std::thread::sleep(std::time::Duration::from_millis(5));
            v.produce(11);
            assert_eq!(t.join().unwrap(), 11, "{}", m.id().name());
        }
    }

    #[test]
    fn produce_blocks_while_full() {
        for m in machines() {
            let v = Arc::new(Async::new_full(&m, 1u64));
            let v2 = Arc::clone(&v);
            let t = std::thread::spawn(move || v2.produce(2));
            std::thread::sleep(std::time::Duration::from_millis(5));
            assert_eq!(v.consume(), 1);
            t.join().unwrap();
            assert_eq!(v.consume(), 2, "{}", m.id().name());
        }
    }

    #[test]
    fn no_value_is_lost_or_duplicated_under_contention() {
        // N producers transfer distinct tokens through one async variable
        // to N consumers; the multiset of received tokens must match.
        for id in [MachineId::Hep, MachineId::EncoreMultimax, MachineId::Cray2] {
            let m = Machine::new(id);
            let v: Arc<Async<u64>> = Arc::new(Async::new(&m));
            let sum = AtomicU64::new(0);
            let n = 4u64;
            let per = 200u64;
            std::thread::scope(|s| {
                for p in 0..n {
                    let v = Arc::clone(&v);
                    s.spawn(move || {
                        for i in 0..per {
                            v.produce(p * per + i + 1);
                        }
                    });
                }
                for _ in 0..n {
                    let v = Arc::clone(&v);
                    let sum = &sum;
                    s.spawn(move || {
                        for _ in 0..per {
                            sum.fetch_add(v.consume(), Ordering::Relaxed);
                        }
                    });
                }
            });
            let total = n * per;
            assert_eq!(
                sum.load(Ordering::Relaxed),
                total * (total + 1) / 2,
                "{}",
                id.name()
            );
            assert!(!v.is_full());
        }
    }

    #[test]
    fn works_as_a_pipeline_stage_in_a_force() {
        let force = Force::with_machine(2, Machine::new(MachineId::Hep));
        let chan: Async<u64> = Async::new(force.machine());
        let received = AtomicU64::new(0);
        force.run(|p| {
            if p.pid() == 0 {
                for i in 1..=100 {
                    chan.produce(i);
                }
            } else {
                for _ in 0..100 {
                    received.fetch_add(chan.consume(), Ordering::Relaxed);
                }
            }
        });
        assert_eq!(received.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn drop_of_full_async_drops_value() {
        let m = Machine::new(MachineId::Flex32);
        let arc = Arc::new(());
        let v = Async::new_full(&m, Arc::clone(&arc));
        assert_eq!(Arc::strong_count(&arc), 2);
        drop(v);
        assert_eq!(Arc::strong_count(&arc), 1);
    }
}

/// A shared array of asynchronous variables — the `Async ... C(n)`
/// declaration (the paper's §3.2 `async_common`): every element carries
/// its own full/empty state.
///
/// On the HEP this is free (the hardware tags *every* memory cell); on
/// the lock machines each element costs two locks, which is exactly the
/// §4.1.3 scarce-lock pressure: "some parallel programs may not execute
/// as efficiently as others if a large number of asynchronous variables
/// are needed".
pub struct AsyncArray<T> {
    cells: Box<[Async<T>]>,
}

impl<T> AsyncArray<T> {
    /// An array of `n` empty asynchronous variables on `machine`.
    pub fn new(machine: &Machine, n: usize) -> Self {
        AsyncArray {
            cells: (0..n).map(|_| Async::new(machine)).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Produce into element `i` (waits while full).
    pub fn produce(&self, i: usize, value: T) {
        self.cells[i].produce(value)
    }

    /// Consume element `i` (waits while empty).
    pub fn consume(&self, i: usize) -> T {
        self.cells[i].consume()
    }

    /// Read element `i` without emptying it.
    pub fn copy(&self, i: usize) -> T
    where
        T: Clone,
    {
        self.cells[i].copy()
    }

    /// Force element `i` to empty.
    pub fn void(&self, i: usize) {
        self.cells[i].void()
    }

    /// Snapshot element `i`'s state.
    pub fn is_full(&self, i: usize) -> bool {
        self.cells[i].is_full()
    }

    /// The element itself (for passing to helpers).
    pub fn cell(&self, i: usize) -> &Async<T> {
        &self.cells[i]
    }
}

#[cfg(test)]
mod array_tests {
    use super::*;
    use crate::force::Force;
    use force_machdep::MachineId;

    #[test]
    fn elements_have_independent_state() {
        for id in [MachineId::Hep, MachineId::EncoreMultimax] {
            let m = Machine::new(id);
            let a: AsyncArray<i64> = AsyncArray::new(&m, 4);
            a.produce(1, 11);
            a.produce(3, 33);
            assert!(!a.is_full(0), "{}", id.name());
            assert!(a.is_full(1));
            assert!(!a.is_full(2));
            assert!(a.is_full(3));
            assert_eq!(a.consume(3), 33);
            assert_eq!(a.copy(1), 11);
            assert!(a.is_full(1));
            a.void(1);
            assert!(!a.is_full(1));
        }
    }

    #[test]
    fn wavefront_pipeline_through_an_async_array() {
        // Process 0 feeds slot 0 and collects from the last slot; stage
        // `me` consumes slot me-1, increments, and produces slot me: a
        // software pipeline, the HEP's natural workload.
        let n = 4;
        let force = Force::with_machine(n, Machine::new(MachineId::Hep));
        let slots: AsyncArray<i64> = AsyncArray::new(force.machine(), n);
        let rounds = 50i64;
        let collected = force_machdep::Mutex::new(Vec::new());
        force.run(|p| {
            let me = p.pid();
            if me == 0 {
                for r in 0..rounds {
                    slots.produce(0, r);
                    collected.lock().push(slots.consume(n - 1));
                }
            } else {
                for _ in 0..rounds {
                    let v = slots.consume(me - 1);
                    slots.produce(me, v + 1);
                }
            }
        });
        let got = collected.into_inner();
        let expect: Vec<i64> = (0..rounds).map(|r| r + (n as i64 - 1)).collect();
        assert_eq!(got, expect);
    }
}
