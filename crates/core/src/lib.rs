//! # force-core — the machine-independent layer of The Force
//!
//! A native Rust embedding of the Force parallel programming language
//! (Jordan, Benten, Alaghband & Jakob, ICPP 1989): global parallelism
//! over a *force* of processes, with the paper's complete construct set
//! implemented on top of the machine-dependent primitives of
//! [`force_machdep`].
//!
//! | paper construct (§3) | here |
//! |---|---|
//! | `Force` program / `Join` | [`force::Force::execute`] |
//! | `Forcesub` | any `fn(&Player)` |
//! | shared / private variables | closure captures vs. locals; [`shared`] |
//! | `Async` variables, Produce/Consume/Void | [`asyncvar::Async`] |
//! | `Presched DO` / `Selfsched DO` (1-D and 2-D) | [`doall`] methods on [`player::Player`] |
//! | `Pcase` / `Usect` / `Csect` | [`pcase::Pcase`] |
//! | `Askfor` | [`askfor`] |
//! | `Resolve` (paper: future work) | [`resolve`] |
//! | `Barrier` + barrier section | [`barrier::TwoLockBarrier`], [`player::Player::barrier_section`] |
//! | `Critical` sections | [`critical`] |
//!
//! The barrier-algorithm suite of the paper's \[AJ87\] companion study is in
//! [`barrier_algs`].
//!
//! ## Example
//!
//! ```
//! use force_core::prelude::*;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // A force of 4 processes on the simulated Encore Multimax.
//! let force = Force::with_machine(4, Machine::new(MachineId::EncoreMultimax));
//! let sum = AtomicU64::new(0);
//! force.run(|p| {
//!     // work distributed dynamically over the whole force
//!     p.selfsched_do(ForceRange::to(1, 100), |i| {
//!         sum.fetch_add(i as u64, Ordering::Relaxed);
//!     });
//!     // one process reports, while the others wait
//!     p.barrier_section(|| {
//!         assert_eq!(sum.load(Ordering::Relaxed), 5050);
//!     });
//! });
//! ```

#![warn(missing_docs)]

pub mod askfor;
pub mod asyncvar;
pub mod barrier;
pub mod barrier_algs;
pub mod critical;
pub mod doall;
pub mod force;
pub mod pcase;
pub mod player;
pub mod prelude;
mod registry;
pub mod resolve;
pub mod schedule;
pub mod shared;

pub use askfor::AskforPot;
pub use asyncvar::{Async, AsyncArray};
pub use barrier::TwoLockBarrier;
pub use critical::CriticalSection;
pub use force::Force;
pub use force_machdep::{ForcePool, RunOptions};
pub use pcase::Pcase;
pub use player::Player;
pub use resolve::Component;
pub use schedule::{ForceRange, SchedulePolicy};
