//! Askfor — run-time requested work distribution (§3.3).
//!
//! "The most general concept for concurrent code segments is Askfor
//! \[LO83\].  This construct provides a means of work distribution in cases
//! where the degree of concurrency is not known at compile time.  Rather
//! the program can request during run time that a new concurrent instance
//! of the code segment is executed."
//!
//! Following Lusk & Overbeek's monitor formulation, the construct is a
//! shared *work pot*: any process asks the pot for work; while handling
//! an item it may post new items; the construct terminates when the pot
//! is empty and no process is still working (so no more items can
//! appear).
//!
//! Internally the pot is a set of per-process deques plus one shared
//! queue.  Seeds (and posts from outside the force) land in the shared
//! FIFO; a handler's posts go to the posting process's own deque, which
//! that process pops LIFO without touching the pot lock.  A process whose
//! deque runs dry drains the shared queue, then *steals* FIFO from a
//! peer's deque.  The Lusk/Overbeek dry-and-idle termination protocol is
//! unchanged and remains the slow path: every post passes through the pot
//! lock, so a checker holding that lock that sees every queue empty and
//! nobody working knows no further work can appear (new items are posted
//! only by handlers, and a running handler implies `working > 0`).
//!
//! ```
//! # use force_core::prelude::*;
//! # use std::sync::atomic::{AtomicU64, Ordering};
//! let force = Force::new(4);
//! let sum = AtomicU64::new(0);
//! force.run(|p| {
//!     p.askfor(|| vec![10u64], |n, pot| {
//!         // split until small, then account
//!         if n > 1 {
//!             pot.post(n / 2);
//!             pot.post(n - n / 2);
//!         } else {
//!             sum.fetch_add(1, Ordering::Relaxed);
//!         }
//!     });
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 10);
//! ```

use std::collections::VecDeque;
use std::sync::Arc;

use force_machdep::fault;
use force_machdep::trace::{self, EventKind};
use force_machdep::{Condvar, Construct, Mutex, WorkQueues};

use crate::player::Player;

/// The shared work pot of one Askfor occurrence.
pub struct AskforPot<W> {
    state: Mutex<PotState<W>>,
    cond: Condvar,
    /// Per-process deques: local LIFO for the owner, FIFO for thieves.
    deques: WorkQueues<W>,
}

struct PotState<W> {
    /// Seeds and out-of-force posts; drained FIFO before stealing.
    queue: VecDeque<W>,
    working: usize,
    posted: u64,
    completed: u64,
}

impl<W> AskforPot<W> {
    /// A one-deque pot, as used outside any force (tests and probes).
    #[cfg(test)]
    fn new(seed: Vec<W>) -> Self {
        Self::with_deques(seed, 1)
    }

    fn with_deques(seed: Vec<W>, nproc: usize) -> Self {
        let posted = seed.len() as u64;
        AskforPot {
            state: Mutex::new(PotState {
                queue: seed.into(),
                working: 0,
                posted,
                completed: 0,
            }),
            cond: Condvar::new(),
            deques: WorkQueues::new(nproc),
        }
    }

    /// The deque this thread owns (deque 0 outside a force).
    fn home(&self) -> usize {
        fault::current_pid().unwrap_or(0)
    }

    /// Request work: posted by the handler of another (or this) item.
    /// Callable from inside a handler via the pot reference it receives.
    /// The item lands on the posting process's own deque; posting still
    /// passes through the pot lock so the termination check stays sound.
    pub fn post(&self, work: W) {
        let mut st = self.state.lock();
        st.posted += 1;
        // Pot lock, then deque lock — the one lock order used everywhere.
        self.deques.push(self.home(), work);
        drop(st);
        self.cond.notify_one();
    }

    /// Ask the pot for the next item.  Blocks while the pot is empty but
    /// some process is still working (new items may appear); returns
    /// `None` once the pot is dry and idle — the termination condition.
    fn ask(&self) -> Option<W> {
        let pid = self.home();
        // Fast path: pop the local deque without the pot lock.  Racing
        // the termination check is benign — a peer that concurrently
        // declares the pot dry simply leaves this item (and anything its
        // handler posts) to us, and we keep asking until dry ourselves.
        if let Some(w) = self.deques.pop(pid) {
            self.state.lock().working += 1;
            return Some(w);
        }
        let mut st = self.state.lock();
        loop {
            // All slow-path probes run under the pot lock, so the wait
            // below can never miss a post: posts need this lock too.
            if let Some(w) = self.deques.pop(pid) {
                st.working += 1;
                return Some(w);
            }
            if let Some(w) = st.queue.pop_front() {
                st.working += 1;
                return Some(w);
            }
            let out = self.deques.steal(pid);
            fault::count_steal(out.taken.is_some(), out.failed_probes);
            if let Some((victim, w)) = out.taken {
                trace::event(EventKind::Steal, victim as u32);
                st.working += 1;
                return Some(w);
            }
            if st.working == 0 {
                // Dry and idle: wake every sleeper so all processes see
                // termination.
                self.cond.notify_all();
                return None;
            }
            // The idle wait: the pot may refill, a peer may fault.  Stay
            // responsive to cancellation either way.
            let _park = fault::parked(Construct::Askfor);
            fault::cancellable_wait(&self.cond, &mut st);
        }
    }

    /// Report one item finished.
    fn done(&self) {
        let mut st = self.state.lock();
        st.working -= 1;
        st.completed += 1;
        if st.working == 0 {
            drop(st);
            self.cond.notify_all();
        }
    }

    /// Total items ever posted (seed included).
    pub fn posted(&self) -> u64 {
        self.state.lock().posted
    }

    /// Total items completed.
    pub fn completed(&self) -> u64 {
        self.state.lock().completed
    }
}

impl Player {
    /// The Askfor construct.
    ///
    /// `seed` produces the initial work items; it is evaluated by the
    /// *first* process to reach the construct (exactly once per
    /// occurrence).  Every process then loops asking the pot for work and
    /// running `handler`, which may post follow-on items through the pot
    /// reference.  The construct returns — through the construct-end
    /// barrier — when all work is done in all processes.
    pub fn askfor<W, S, H>(&self, seed: S, handler: H)
    where
        W: Send + 'static,
        S: FnOnce() -> Vec<W>,
        H: Fn(W, &AskforPot<W>),
    {
        let _c = fault::enter(Construct::Askfor);
        fault::inject(Construct::Askfor);
        let nproc = self.nproc();
        let pot: Arc<AskforPot<W>> = self.collective(|| AskforPot::with_deques(seed(), nproc));
        while let Some(w) = pot.ask() {
            handler(w, &pot);
            pot.done();
        }
        self.barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::Force;
    use force_machdep::Mutex;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn static_work_is_all_processed() {
        for nproc in [1, 2, 4, 8] {
            let force = Force::new(nproc);
            let sum = AtomicU64::new(0);
            force.run(|p| {
                p.askfor(
                    || (1..=100u64).collect(),
                    |w, _| {
                        sum.fetch_add(w, Ordering::Relaxed);
                    },
                );
            });
            assert_eq!(sum.load(Ordering::Relaxed), 5050, "nproc={nproc}");
        }
    }

    #[test]
    fn dynamic_posting_terminates_and_covers() {
        // Recursive splitting: item n spawns items n/2 and n-n/2 until 1.
        for nproc in [1, 3, 6] {
            let force = Force::new(nproc);
            let leaves = AtomicU64::new(0);
            force.run(|p| {
                p.askfor(
                    || vec![64u64, 37],
                    |n, pot| {
                        if n > 1 {
                            pot.post(n / 2);
                            pot.post(n - n / 2);
                        } else {
                            leaves.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                );
            });
            assert_eq!(leaves.load(Ordering::Relaxed), 64 + 37, "nproc={nproc}");
        }
    }

    #[test]
    fn empty_seed_terminates_immediately() {
        let force = Force::new(4);
        let hit = AtomicU64::new(0);
        force.run(|p| {
            p.askfor(Vec::<u64>::new, |_, _| {
                hit.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hit.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn seed_is_evaluated_exactly_once() {
        let force = Force::new(6);
        let seeds = AtomicU64::new(0);
        force.run(|p| {
            p.askfor(
                || {
                    seeds.fetch_add(1, Ordering::SeqCst);
                    vec![1u64, 2, 3]
                },
                |_, _| {},
            );
        });
        assert_eq!(seeds.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn askfor_is_a_barrier_and_accounting_balances() {
        let force = Force::new(4);
        let done = AtomicU64::new(0);
        force.run(|p| {
            p.askfor(
                || (0..50u64).collect(),
                |w, pot| {
                    if w > 0 && w % 7 == 0 {
                        pot.post(w - 1);
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                },
            );
            // All work (including dynamically posted) visible after the
            // construct's end barrier.
            let total = done.load(Ordering::SeqCst);
            assert!(total >= 50);
        });
    }

    #[test]
    fn posted_equals_completed_after_the_barrier() {
        // The accounting invariant under stealing: whatever the
        // interleaving, every item ever posted (seeds plus handler posts)
        // is handled exactly once by the time the end barrier opens.
        for nproc in [1, 2, 5, 8] {
            let force = Force::new(nproc);
            let handled = AtomicU64::new(0);
            let posts = AtomicU64::new(0);
            force.run(|p| {
                p.askfor(
                    || (1..=40u64).collect(),
                    |n, pot| {
                        handled.fetch_add(1, Ordering::SeqCst);
                        if n > 1 {
                            posts.fetch_add(2, Ordering::SeqCst);
                            pot.post(n / 2);
                            pot.post(n - n / 2);
                        }
                    },
                );
                assert_eq!(
                    handled.load(Ordering::SeqCst),
                    40 + posts.load(Ordering::SeqCst),
                    "nproc={nproc}"
                );
            });
        }
    }

    #[test]
    fn consecutive_askfors_are_independent() {
        let force = Force::new(3);
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        force.run(|p| {
            p.askfor(
                || vec![1u64; 10],
                |_, _| {
                    a.fetch_add(1, Ordering::Relaxed);
                },
            );
            p.askfor(
                || vec![1u64; 20],
                |_, _| {
                    b.fetch_add(1, Ordering::Relaxed);
                },
            );
        });
        assert_eq!(a.load(Ordering::Relaxed), 10);
        assert_eq!(b.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn local_posts_are_popped_lifo() {
        // One process: handler posts a, b; the local deque pops b first.
        let force = Force::new(1);
        let order = Mutex::new(Vec::new());
        force.run(|p| {
            p.askfor(
                || vec![0u64],
                |n, pot| {
                    order.lock().push(n);
                    if n == 0 {
                        pot.post(1);
                        pot.post(2);
                    }
                },
            );
        });
        assert_eq!(order.into_inner(), vec![0, 2, 1]);
    }

    #[test]
    fn pot_state_is_queryable() {
        let pot = AskforPot::new(vec![1, 2, 3]);
        assert_eq!(pot.posted(), 3);
        assert_eq!(pot.completed(), 0);
        let w = pot.ask().unwrap();
        assert_eq!(w, 1);
        pot.post(4);
        pot.done();
        assert_eq!(pot.posted(), 4);
        assert_eq!(pot.completed(), 1);
    }
}
