//! Askfor — run-time requested work distribution (§3.3).
//!
//! "The most general concept for concurrent code segments is Askfor
//! \[LO83\].  This construct provides a means of work distribution in cases
//! where the degree of concurrency is not known at compile time.  Rather
//! the program can request during run time that a new concurrent instance
//! of the code segment is executed."
//!
//! Following Lusk & Overbeek's monitor formulation, the construct is a
//! shared *work pot*: any process asks the pot for work; while handling
//! an item it may post new items; the construct terminates when the pot
//! is empty and no process is still working (so no more items can
//! appear).
//!
//! ```
//! # use force_core::prelude::*;
//! # use std::sync::atomic::{AtomicU64, Ordering};
//! let force = Force::new(4);
//! let sum = AtomicU64::new(0);
//! force.run(|p| {
//!     p.askfor(|| vec![10u64], |n, pot| {
//!         // split until small, then account
//!         if n > 1 {
//!             pot.post(n / 2);
//!             pot.post(n - n / 2);
//!         } else {
//!             sum.fetch_add(1, Ordering::Relaxed);
//!         }
//!     });
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 10);
//! ```

use std::collections::VecDeque;
use std::sync::Arc;

use force_machdep::fault;
use force_machdep::{Condvar, Construct, Mutex};

use crate::player::Player;

/// The shared work pot of one Askfor occurrence.
pub struct AskforPot<W> {
    state: Mutex<PotState<W>>,
    cond: Condvar,
}

struct PotState<W> {
    queue: VecDeque<W>,
    working: usize,
    posted: u64,
    completed: u64,
}

impl<W> AskforPot<W> {
    fn new(seed: Vec<W>) -> Self {
        let posted = seed.len() as u64;
        AskforPot {
            state: Mutex::new(PotState {
                queue: seed.into(),
                working: 0,
                posted,
                completed: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Request work: posted by the handler of another (or this) item.
    /// Callable from inside a handler via the pot reference it receives.
    pub fn post(&self, work: W) {
        let mut st = self.state.lock();
        st.queue.push_back(work);
        st.posted += 1;
        drop(st);
        self.cond.notify_one();
    }

    /// Ask the pot for the next item.  Blocks while the pot is empty but
    /// some process is still working (new items may appear); returns
    /// `None` once the pot is dry and idle — the termination condition.
    fn ask(&self) -> Option<W> {
        let mut st = self.state.lock();
        loop {
            if let Some(w) = st.queue.pop_front() {
                st.working += 1;
                return Some(w);
            }
            if st.working == 0 {
                // Dry and idle: wake every sleeper so all processes see
                // termination.
                self.cond.notify_all();
                return None;
            }
            // The idle wait: the pot may refill, a peer may fault.  Stay
            // responsive to cancellation either way.
            let _park = fault::parked(Construct::Askfor);
            fault::cancellable_wait(&self.cond, &mut st);
        }
    }

    /// Report one item finished.
    fn done(&self) {
        let mut st = self.state.lock();
        st.working -= 1;
        st.completed += 1;
        if st.working == 0 && st.queue.is_empty() {
            drop(st);
            self.cond.notify_all();
        }
    }

    /// Total items ever posted (seed included).
    pub fn posted(&self) -> u64 {
        self.state.lock().posted
    }

    /// Total items completed.
    pub fn completed(&self) -> u64 {
        self.state.lock().completed
    }
}

impl Player {
    /// The Askfor construct.
    ///
    /// `seed` produces the initial work items; it is evaluated by the
    /// *first* process to reach the construct (exactly once per
    /// occurrence).  Every process then loops asking the pot for work and
    /// running `handler`, which may post follow-on items through the pot
    /// reference.  The construct returns — through the construct-end
    /// barrier — when all work is done in all processes.
    pub fn askfor<W, S, H>(&self, seed: S, handler: H)
    where
        W: Send + 'static,
        S: FnOnce() -> Vec<W>,
        H: Fn(W, &AskforPot<W>),
    {
        let _c = fault::enter(Construct::Askfor);
        fault::inject(Construct::Askfor);
        let pot: Arc<AskforPot<W>> = self.collective(|| AskforPot::new(seed()));
        while let Some(w) = pot.ask() {
            handler(w, &pot);
            pot.done();
        }
        self.barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::Force;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn static_work_is_all_processed() {
        for nproc in [1, 2, 4, 8] {
            let force = Force::new(nproc);
            let sum = AtomicU64::new(0);
            force.run(|p| {
                p.askfor(
                    || (1..=100u64).collect(),
                    |w, _| {
                        sum.fetch_add(w, Ordering::Relaxed);
                    },
                );
            });
            assert_eq!(sum.load(Ordering::Relaxed), 5050, "nproc={nproc}");
        }
    }

    #[test]
    fn dynamic_posting_terminates_and_covers() {
        // Recursive splitting: item n spawns items n/2 and n-n/2 until 1.
        for nproc in [1, 3, 6] {
            let force = Force::new(nproc);
            let leaves = AtomicU64::new(0);
            force.run(|p| {
                p.askfor(
                    || vec![64u64, 37],
                    |n, pot| {
                        if n > 1 {
                            pot.post(n / 2);
                            pot.post(n - n / 2);
                        } else {
                            leaves.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                );
            });
            assert_eq!(leaves.load(Ordering::Relaxed), 64 + 37, "nproc={nproc}");
        }
    }

    #[test]
    fn empty_seed_terminates_immediately() {
        let force = Force::new(4);
        let hit = AtomicU64::new(0);
        force.run(|p| {
            p.askfor(Vec::<u64>::new, |_, _| {
                hit.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hit.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn seed_is_evaluated_exactly_once() {
        let force = Force::new(6);
        let seeds = AtomicU64::new(0);
        force.run(|p| {
            p.askfor(
                || {
                    seeds.fetch_add(1, Ordering::SeqCst);
                    vec![1u64, 2, 3]
                },
                |_, _| {},
            );
        });
        assert_eq!(seeds.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn askfor_is_a_barrier_and_accounting_balances() {
        let force = Force::new(4);
        let done = AtomicU64::new(0);
        force.run(|p| {
            p.askfor(
                || (0..50u64).collect(),
                |w, pot| {
                    if w > 0 && w % 7 == 0 {
                        pot.post(w - 1);
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                },
            );
            // All work (including dynamically posted) visible after the
            // construct's end barrier.
            let total = done.load(Ordering::SeqCst);
            assert!(total >= 50);
        });
    }

    #[test]
    fn consecutive_askfors_are_independent() {
        let force = Force::new(3);
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        force.run(|p| {
            p.askfor(
                || vec![1u64; 10],
                |_, _| {
                    a.fetch_add(1, Ordering::Relaxed);
                },
            );
            p.askfor(
                || vec![1u64; 20],
                |_, _| {
                    b.fetch_add(1, Ordering::Relaxed);
                },
            );
        });
        assert_eq!(a.load(Ordering::Relaxed), 10);
        assert_eq!(b.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn pot_state_is_queryable() {
        let pot = AskforPot::new(vec![1, 2, 3]);
        assert_eq!(pot.posted(), 3);
        assert_eq!(pot.completed(), 0);
        let w = pot.ask().unwrap();
        assert_eq!(w, 1);
        pot.post(4);
        pot.done();
        assert_eq!(pot.posted(), 4);
        assert_eq!(pot.completed(), 1);
    }
}
