//! One process of the force.
//!
//! A [`Player`] is the per-process execution context: its unique process
//! identifier, the force size, and handles to the parallel environment.
//! The work-distribution and synchronization constructs are methods on
//! `Player`, implemented in their own modules (`doall`, `pcase`, `askfor`,
//! `resolve`, `critical`).
//!
//! A `Player` is created by [`Force::execute`](crate::force::Force::execute)
//! for exactly one thread and is deliberately `!Sync`: the Force model has
//! no notion of two processes sharing one process context.

use std::cell::Cell;
use std::sync::Arc;

use force_machdep::fault;
use force_machdep::{Construct, ForceEnvironment, LockHandle, Machine};

use crate::barrier::TwoLockBarrier;
use crate::registry::CollectiveRegistry;

/// The per-process context of a Force program.
pub struct Player {
    pid: usize,
    nproc: usize,
    machine: Arc<Machine>,
    env: Arc<ForceEnvironment>,
    barrier: Arc<TwoLockBarrier>,
    registry: Arc<CollectiveRegistry>,
    /// Ordinal of the next collective construct this process will
    /// encounter (private; advances in lockstep across the force for a
    /// correct SPMD program).
    seq: Cell<usize>,
}

impl Player {
    pub(crate) fn new(
        pid: usize,
        nproc: usize,
        machine: Arc<Machine>,
        env: Arc<ForceEnvironment>,
        barrier: Arc<TwoLockBarrier>,
        registry: Arc<CollectiveRegistry>,
    ) -> Self {
        Player {
            pid,
            nproc,
            machine,
            env,
            barrier,
            registry,
            seq: Cell::new(0),
        }
    }

    /// This process's unique identifier, `0..nproc`.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// The size of the force.
    pub fn nproc(&self) -> usize {
        self.nproc
    }

    /// The machine personality the force runs on.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// The parallel environment (barrier locks, named locks, indices).
    pub fn env(&self) -> &Arc<ForceEnvironment> {
        &self.env
    }

    /// Whether this is process 0 (handy for one-process I/O; note the
    /// Force's own idiom for one-process work is the barrier section).
    pub fn is_leader(&self) -> bool {
        self.pid == 0
    }

    // ---- barrier statements (§3.4) ----

    /// `Barrier` / `End barrier` with an empty section: wait for the
    /// whole force.
    pub fn barrier(&self) {
        let _c = fault::enter(Construct::Barrier);
        fault::inject(Construct::Barrier);
        self.barrier.wait();
    }

    /// The full barrier construct: all processes wait; exactly one
    /// (the last arriver) executes `section` while the others remain
    /// suspended; then all proceed.  Returns `Some(result)` in the
    /// process that executed the section, `None` in the rest.
    pub fn barrier_section<R>(&self, section: impl FnOnce() -> R) -> Option<R> {
        let _c = fault::enter(Construct::Barrier);
        fault::inject(Construct::Barrier);
        self.barrier.wait_section(section)
    }

    /// Barrier variant whose *first* arriver runs `init` in mutual
    /// exclusion — the §4.2 loop-entry idiom.
    pub fn barrier_first(&self, init: impl FnOnce()) {
        let _c = fault::enter(Construct::Barrier);
        fault::inject(Construct::Barrier);
        self.barrier.wait_first(init);
    }

    /// The underlying two-lock barrier (for algorithm studies).
    pub fn raw_barrier(&self) -> &TwoLockBarrier {
        &self.barrier
    }

    // ---- plumbing used by the construct modules ----

    /// Claim the next collective ordinal and fetch/create its shared
    /// state.
    pub(crate) fn collective<T, F>(&self, init: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let idx = self.seq.get();
        self.seq.set(idx + 1);
        self.registry.nth(idx, init)
    }

    /// The named lock variable `name` (shared across the force).
    pub fn named_lock(&self, name: &str) -> LockHandle {
        self.env.named_lock(name)
    }
}

#[cfg(test)]
mod tests {
    use crate::force::Force;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pids_are_unique_and_dense() {
        let force = Force::new(8);
        let mut pids = force.execute(|p| p.pid());
        pids.sort_unstable();
        assert_eq!(pids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn exactly_one_leader() {
        let force = Force::new(5);
        let leaders = force
            .execute(|p| p.is_leader())
            .into_iter()
            .filter(|&b| b)
            .count();
        assert_eq!(leaders, 1);
    }

    #[test]
    fn barrier_section_runs_once_per_statement() {
        let force = Force::new(6);
        let counter = AtomicUsize::new(0);
        force.run(|p| {
            for _ in 0..10 {
                p.barrier_section(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn barrier_first_runs_once_per_statement() {
        let force = Force::new(4);
        let counter = AtomicUsize::new(0);
        force.run(|p| {
            p.barrier_first(|| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn named_locks_are_shared_across_the_force() {
        let force = Force::new(4);
        let counter = AtomicUsize::new(0);
        force.run(|p| {
            for _ in 0..100 {
                let l = p.named_lock("CS");
                l.lock();
                let v = counter.load(Ordering::Relaxed);
                counter.store(v + 1, Ordering::Relaxed);
                l.unlock();
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 400);
    }
}
