//! A from-scratch m4-subset macro processor.
//!
//! §4.3: "The stream editor sed translates the Force syntax into
//! parameterized function macros.  Then the macro processor m4 replaces
//! the function macros with Fortran code and the language extensions
//! supporting parallel programming."
//!
//! This engine implements the m4 semantics the Force macro set needs:
//!
//! * `define(name, body)` / `undefine` / `defn` / `pushdef` / `popdef`;
//! * argument substitution `$0`–`$9`, `$#`, `$*`;
//! * quoting with `` ` `` and `'` (one quote level stripped per scan);
//! * conditionals `ifdef` and multi-branch `ifelse`;
//! * arithmetic `incr`, `decr`, `eval` (integer `+ - * / % ( )`);
//! * `dnl` (discard to end of line);
//! * the Force *utility macros* of §4.2 — "returning the first element of
//!   a list, storing and retrieving definitions, concatenating and
//!   truncating arguments, and deletion of dimensions for common
//!   declarations": `zzfirst`, `zzrest`, `zzconcat`, `zzstripdims`,
//!   plus stateful recording builtins (`zzrecord`, `zzgensym`) standing in
//!   for m4's divert/define bookkeeping tricks.
//!
//! Macro results are recursively rescanned (with a depth limit that turns
//! runaway recursion into an error instead of a hang).

use std::collections::HashMap;
use std::fmt;

/// Maximum rescan depth before reporting runaway recursion.
const MAX_DEPTH: usize = 200;

/// Errors from macro expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum M4Error {
    /// Quote or parenthesis never closed.
    Unterminated(&'static str),
    /// Macro recursion exceeded the depth limit (`MAX_DEPTH`).
    RecursionLimit(String),
    /// A builtin was called with unusable arguments.
    BadArguments {
        builtin: &'static str,
        detail: String,
    },
}

impl fmt::Display for M4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            M4Error::Unterminated(what) => write!(f, "unterminated {what}"),
            M4Error::RecursionLimit(name) => {
                write!(f, "macro recursion limit exceeded while expanding `{name}`")
            }
            M4Error::BadArguments { builtin, detail } => {
                write!(f, "bad arguments to `{builtin}`: {detail}")
            }
        }
    }
}

impl std::error::Error for M4Error {}

/// A macro definition: replacement text or a built-in function.
#[derive(Clone)]
enum Def {
    Text(String),
    Builtin(&'static str),
}

/// The macro processor state.
pub struct M4 {
    /// name -> definition stack (top = active; pushdef/popdef).
    defs: HashMap<String, Vec<Def>>,
    /// Recording lists (`zzrecord`): ordered, deduplicated.
    lists: HashMap<String, Vec<String>>,
    gensym: u64,
}

impl Default for M4 {
    fn default() -> Self {
        Self::new()
    }
}

const BUILTINS: &[&str] = &[
    "define",
    "undefine",
    "defn",
    "pushdef",
    "popdef",
    "ifdef",
    "ifelse",
    "incr",
    "decr",
    "eval",
    "dnl",
    "len",
    "zzfirst",
    "zzrest",
    "zzconcat",
    "zzstripdims",
    "zzrecord",
    "zzgensym",
    "zzdeclrec",
    "zzname",
    "zzsubs",
];

impl M4 {
    /// A fresh engine with the builtins registered.
    pub fn new() -> Self {
        let mut defs = HashMap::new();
        for &b in BUILTINS {
            defs.insert(b.to_string(), vec![Def::Builtin(b)]);
        }
        M4 {
            defs,
            lists: HashMap::new(),
            gensym: 0,
        }
    }

    /// Define (or redefine) a text macro programmatically.
    pub fn define(&mut self, name: &str, body: &str) {
        self.defs
            .insert(name.to_string(), vec![Def::Text(body.to_string())]);
    }

    /// Whether `name` is currently defined.
    pub fn is_defined(&self, name: &str) -> bool {
        self.defs.get(name).is_some_and(|s| !s.is_empty())
    }

    /// The items recorded under `list` by `zzrecord`, in first-recorded
    /// order.
    pub fn recorded(&self, list: &str) -> &[String] {
        self.lists.get(list).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Expand `input` fully.
    pub fn expand(&mut self, input: &str) -> Result<String, M4Error> {
        self.expand_depth(input, 0)
    }

    fn expand_depth(&mut self, input: &str, depth: usize) -> Result<String, M4Error> {
        if depth > MAX_DEPTH {
            return Err(M4Error::RecursionLimit(
                input.chars().take(32).collect::<String>(),
            ));
        }
        let bytes: Vec<char> = input.chars().collect();
        let mut out = String::with_capacity(input.len());
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i];
            if c == '`' {
                // Quoted text: copy verbatim, stripping one quote level.
                let (inner, next) = scan_quote(&bytes, i)?;
                out.push_str(&inner);
                i = next;
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let name: String = bytes[start..i].iter().collect();
                if self.is_defined(&name) {
                    // Collect arguments if a '(' immediately follows.
                    let args = if i < bytes.len() && bytes[i] == '(' {
                        let (raw_args, next) = scan_args(&bytes, i)?;
                        i = next;
                        let mut expanded = Vec::with_capacity(raw_args.len());
                        for a in raw_args {
                            expanded.push(self.expand_depth(a.trim_start(), depth + 1)?);
                        }
                        expanded
                    } else {
                        Vec::new()
                    };
                    let replaced = self.apply(&name, &args, depth)?;
                    if let Some(text) = replaced {
                        let rescanned = self.expand_depth(&text, depth + 1)?;
                        out.push_str(&rescanned);
                    }
                    // `dnl` handling: swallow to end of line.
                    if name == "dnl" {
                        while i < bytes.len() && bytes[i] != '\n' {
                            i += 1;
                        }
                        if i < bytes.len() {
                            i += 1; // the newline itself
                        }
                    }
                } else {
                    out.push_str(&name);
                }
            } else {
                out.push(c);
                i += 1;
            }
        }
        Ok(out)
    }

    /// Apply a macro; `None` means "no output" (already handled).
    fn apply(
        &mut self,
        name: &str,
        args: &[String],
        _depth: usize,
    ) -> Result<Option<String>, M4Error> {
        let def = self
            .defs
            .get(name)
            .and_then(|s| s.last())
            .cloned()
            .expect("apply called for undefined macro");
        match def {
            Def::Text(body) => Ok(Some(substitute(name, &body, args))),
            Def::Builtin(b) => self.builtin(b, args),
        }
    }

    fn builtin(&mut self, b: &'static str, args: &[String]) -> Result<Option<String>, M4Error> {
        let arg = |i: usize| args.get(i).map(String::as_str).unwrap_or("");
        match b {
            "define" => {
                if !arg(0).is_empty() {
                    self.defs
                        .insert(arg(0).to_string(), vec![Def::Text(arg(1).to_string())]);
                }
                Ok(None)
            }
            "pushdef" => {
                self.defs
                    .entry(arg(0).to_string())
                    .or_default()
                    .push(Def::Text(arg(1).to_string()));
                Ok(None)
            }
            "popdef" => {
                if let Some(stack) = self.defs.get_mut(arg(0)) {
                    stack.pop();
                    if stack.is_empty() {
                        self.defs.remove(arg(0));
                    }
                }
                Ok(None)
            }
            "undefine" => {
                self.defs.remove(arg(0));
                Ok(None)
            }
            "defn" => {
                let text = match self.defs.get(arg(0)).and_then(|s| s.last()) {
                    Some(Def::Text(t)) => t.clone(),
                    _ => String::new(),
                };
                // Return quoted so the definition is not re-expanded here.
                Ok(Some(format!("`{text}'")))
            }
            "ifdef" => {
                if self.is_defined(arg(0)) {
                    Ok(Some(arg(1).to_string()))
                } else {
                    Ok(Some(arg(2).to_string()))
                }
            }
            "ifelse" => {
                // ifelse(a, b, then [, a2, b2, then2]... [, else])
                let mut i = 0;
                loop {
                    if args.len() >= i + 3 {
                        if args[i] == args[i + 1] {
                            return Ok(Some(args[i + 2].clone()));
                        }
                        if args.len() == i + 4 {
                            return Ok(Some(args[i + 3].clone()));
                        }
                        i += 3;
                    } else {
                        return Ok(Some(String::new()));
                    }
                }
            }
            "incr" => Ok(Some((parse_int(b, arg(0))? + 1).to_string())),
            "decr" => Ok(Some((parse_int(b, arg(0))? - 1).to_string())),
            "eval" => Ok(Some(eval_expr(arg(0))?.to_string())),
            "dnl" => Ok(None),
            "len" => Ok(Some(arg(0).chars().count().to_string())),
            "zzfirst" => {
                // First element of a comma list (commas inside parentheses
                // do not split, so `A(10,10), B` has first element `A(10,10)`).
                Ok(Some(
                    split_list(arg(0)).into_iter().next().unwrap_or_default(),
                ))
            }
            "zzrest" => {
                // The list with its first element removed.
                let items = split_list(arg(0));
                Ok(Some(items.get(1..).unwrap_or(&[]).join(", ")))
            }
            "zzconcat" => Ok(Some(args.concat())),
            "zzstripdims" | "zzname" => Ok(Some(strip_dims(arg(0)))),
            "zzsubs" => {
                // The subscript part of a variable reference: `C(I)` ->
                // `(I)`, `C` -> `` (empty).
                let a = arg(0).trim();
                Ok(Some(match a.find('(') {
                    Some(p) => a[p..].to_string(),
                    None => String::new(),
                }))
            }
            "zzrecord" => {
                let list = self.lists.entry(arg(0).to_string()).or_default();
                let item = arg(1).trim().to_string();
                if !item.is_empty() && !list.contains(&item) {
                    list.push(item);
                }
                Ok(None)
            }
            "zzgensym" => {
                self.gensym += 1;
                Ok(Some(format!("{}{}", arg(0), self.gensym)))
            }
            "zzdeclrec" => {
                // Record one declaration list: `zzdeclrec(class, type, decls)`
                // appends `unit|class|type|item` to the `decls` list for each
                // top-level comma-separated item, where `unit` is the current
                // text definition of `ZZUNIT`.
                let unit = match self.defs.get("ZZUNIT").and_then(|s| s.last()) {
                    Some(Def::Text(t)) => t.clone(),
                    _ => {
                        return Err(M4Error::BadArguments {
                            builtin: "zzdeclrec",
                            detail: "no Force unit is open (missing Force/Forcesub header)".into(),
                        })
                    }
                };
                let class = arg(0).to_string();
                let ty = arg(1).to_string();
                let items = split_list(arg(2));
                let list = self.lists.entry("decls".to_string()).or_default();
                for item in items {
                    let entry = format!("{unit}|{class}|{ty}|{item}");
                    if !list.contains(&entry) {
                        list.push(entry);
                    }
                }
                Ok(None)
            }
            other => unreachable!("unknown builtin {other}"),
        }
    }
}

/// Scan a quoted region starting at `` ` ``; returns (inner text with one
/// quote level stripped, index after the closing `'`).
fn scan_quote(bytes: &[char], start: usize) -> Result<(String, usize), M4Error> {
    debug_assert_eq!(bytes[start], '`');
    let mut depth = 1usize;
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            '`' => {
                depth += 1;
                out.push('`');
            }
            '\'' => {
                depth -= 1;
                if depth == 0 {
                    return Ok((out, i + 1));
                }
                out.push('\'');
            }
            c => out.push(c),
        }
        i += 1;
    }
    Err(M4Error::Unterminated("quote"))
}

/// Scan a parenthesized argument list starting at `(`; returns the raw
/// (unexpanded) arguments and the index after the closing `)`.
/// Commas inside nested parentheses or quotes do not split.
fn scan_args(bytes: &[char], start: usize) -> Result<(Vec<String>, usize), M4Error> {
    debug_assert_eq!(bytes[start], '(');
    let mut args = Vec::new();
    let mut cur = String::new();
    let mut paren = 1usize;
    let mut quote = 0usize;
    let mut i = start + 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '`' => {
                quote += 1;
                cur.push(c);
            }
            '\'' if quote > 0 => {
                quote -= 1;
                cur.push(c);
            }
            '(' if quote == 0 => {
                paren += 1;
                cur.push(c);
            }
            ')' if quote == 0 => {
                paren -= 1;
                if paren == 0 {
                    args.push(cur);
                    return Ok((args, i + 1));
                }
                cur.push(c);
            }
            ',' if quote == 0 && paren == 1 => {
                args.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
        i += 1;
    }
    Err(M4Error::Unterminated("argument list"))
}

/// Substitute `$0`–`$9`, `$#`, `$*` in a macro body.
fn substitute(name: &str, body: &str, args: &[String]) -> String {
    let chars: Vec<char> = body.chars().collect();
    let mut out = String::with_capacity(body.len());
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '$' && i + 1 < chars.len() {
            match chars[i + 1] {
                '0' => {
                    out.push_str(name);
                    i += 2;
                }
                d @ '1'..='9' => {
                    let idx = d as usize - '1' as usize;
                    if let Some(a) = args.get(idx) {
                        out.push_str(a);
                    }
                    i += 2;
                }
                '#' => {
                    out.push_str(&args.len().to_string());
                    i += 2;
                }
                '*' => {
                    out.push_str(&args.join(","));
                    i += 2;
                }
                _ => {
                    out.push('$');
                    i += 1;
                }
            }
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

fn parse_int(builtin: &'static str, s: &str) -> Result<i64, M4Error> {
    s.trim().parse::<i64>().map_err(|_| M4Error::BadArguments {
        builtin,
        detail: format!("`{s}` is not an integer"),
    })
}

/// Split a comma list on top-level commas (parentheses nest).
fn split_list(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => parts.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
        .into_iter()
        .map(|p| p.trim().to_string())
        .filter(|p| !p.is_empty())
        .collect()
}

/// "Deletion of dimensions for common declarations": `A(10,20)` -> `A`.
fn strip_dims(decl: &str) -> String {
    match decl.find('(') {
        Some(p) => decl[..p].trim().to_string(),
        None => decl.trim().to_string(),
    }
}

/// Minimal integer expression evaluator for `eval` (`+ - * / % ( )`,
/// unary minus).
fn eval_expr(s: &str) -> Result<i64, M4Error> {
    struct P<'a> {
        s: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn skip(&mut self) {
            while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn peek(&mut self) -> Option<u8> {
            self.skip();
            self.s.get(self.i).copied()
        }
        fn expr(&mut self) -> Result<i64, M4Error> {
            let mut v = self.term()?;
            loop {
                match self.peek() {
                    Some(b'+') => {
                        self.i += 1;
                        v += self.term()?;
                    }
                    Some(b'-') => {
                        self.i += 1;
                        v -= self.term()?;
                    }
                    _ => return Ok(v),
                }
            }
        }
        fn term(&mut self) -> Result<i64, M4Error> {
            let mut v = self.atom()?;
            loop {
                match self.peek() {
                    Some(b'*') => {
                        self.i += 1;
                        v *= self.atom()?;
                    }
                    Some(b'/') => {
                        self.i += 1;
                        let d = self.atom()?;
                        if d == 0 {
                            return Err(M4Error::BadArguments {
                                builtin: "eval",
                                detail: "division by zero".into(),
                            });
                        }
                        v /= d;
                    }
                    Some(b'%') => {
                        self.i += 1;
                        let d = self.atom()?;
                        if d == 0 {
                            return Err(M4Error::BadArguments {
                                builtin: "eval",
                                detail: "modulo by zero".into(),
                            });
                        }
                        v %= d;
                    }
                    _ => return Ok(v),
                }
            }
        }
        fn atom(&mut self) -> Result<i64, M4Error> {
            match self.peek() {
                Some(b'-') => {
                    self.i += 1;
                    Ok(-self.atom()?)
                }
                Some(b'(') => {
                    self.i += 1;
                    let v = self.expr()?;
                    if self.peek() == Some(b')') {
                        self.i += 1;
                        Ok(v)
                    } else {
                        Err(M4Error::Unterminated("parenthesis in eval"))
                    }
                }
                Some(c) if c.is_ascii_digit() => {
                    let start = self.i;
                    while self.i < self.s.len() && self.s[self.i].is_ascii_digit() {
                        self.i += 1;
                    }
                    std::str::from_utf8(&self.s[start..self.i])
                        .unwrap()
                        .parse()
                        .map_err(|_| M4Error::BadArguments {
                            builtin: "eval",
                            detail: "integer overflow".into(),
                        })
                }
                _ => Err(M4Error::BadArguments {
                    builtin: "eval",
                    detail: format!("unexpected input in `{}`", String::from_utf8_lossy(self.s)),
                }),
            }
        }
    }
    let mut p = P {
        s: s.as_bytes(),
        i: 0,
    };
    let v = p.expr()?;
    p.skip();
    if p.i != p.s.len() {
        return Err(M4Error::BadArguments {
            builtin: "eval",
            detail: format!("trailing input in `{s}`"),
        });
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(src: &str) -> String {
        M4::new().expand(src).unwrap()
    }

    #[test]
    fn plain_text_passes_through() {
        assert_eq!(exp("hello world 123"), "hello world 123");
    }

    #[test]
    fn define_and_expand() {
        assert_eq!(exp("define(`X', `42')X + X"), "42 + 42");
    }

    #[test]
    fn define_with_arguments() {
        assert_eq!(exp("define(`ADD', `$1 + $2')ADD(a, b)"), "a + b");
    }

    #[test]
    fn dollar_zero_hash_star() {
        // `$0` must be quoted in the body or the rescan would re-expand
        // the macro's own name — the same discipline real m4 requires.
        assert_eq!(exp("define(`M', ``$0':$#:$*')M(x, y)"), "M:2:x,y");
    }

    #[test]
    fn quoting_defers_expansion() {
        assert_eq!(exp("define(`A', `1')`A' A"), "A 1");
    }

    #[test]
    fn nested_quotes_strip_one_level() {
        assert_eq!(exp("``double''"), "`double'");
    }

    #[test]
    fn macros_rescan_their_result() {
        assert_eq!(exp("define(`A', `B')define(`B', `final')A"), "final");
    }

    #[test]
    fn arguments_are_expanded_before_substitution() {
        assert_eq!(exp("define(`ID', `$1')define(`V', `7')ID(V)"), "7");
    }

    #[test]
    fn ifdef_branches() {
        assert_eq!(exp("define(`Y', `1')ifdef(`Y', `yes', `no')"), "yes");
        assert_eq!(exp("ifdef(`NOPE', `yes', `no')"), "no");
    }

    #[test]
    fn ifelse_multibranch() {
        let src = "define(`K', `b')ifelse(K, `a', `A', K, `b', `B', `other')";
        assert_eq!(exp(src), "B");
        assert_eq!(exp("ifelse(`x', `y', `eq', `ne')"), "ne");
        assert_eq!(exp("ifelse(`x', `x', `eq', `ne')"), "eq");
    }

    #[test]
    fn incr_decr_eval() {
        assert_eq!(exp("incr(4) decr(4)"), "5 3");
        assert_eq!(exp("eval(2 + 3 * 4)"), "14");
        assert_eq!(exp("eval((2 + 3) * -2)"), "-10");
        assert_eq!(exp("eval(17 % 5)"), "2");
    }

    #[test]
    fn eval_division_by_zero_is_an_error() {
        assert!(matches!(
            M4::new().expand("eval(1/0)"),
            Err(M4Error::BadArguments { .. })
        ));
    }

    #[test]
    fn dnl_discards_rest_of_line() {
        assert_eq!(exp("keep dnl this vanishes\nnext"), "keep next");
    }

    #[test]
    fn pushdef_popdef_stack() {
        let src = "define(`A', `one')pushdef(`A', `two')A popdef(`A')A";
        assert_eq!(exp(src), "two one");
    }

    #[test]
    fn defn_retrieves_quoted_definition() {
        let src = "define(`A', `body')define(`B', defn(`A'))B";
        assert_eq!(exp(src), "body");
    }

    #[test]
    fn utility_first_and_rest() {
        assert_eq!(exp("zzfirst(`a, b, c')"), "a");
        assert_eq!(exp("zzrest(`a, b, c')"), "b, c");
        assert_eq!(exp("zzfirst(`only')"), "only");
        assert_eq!(exp("zzrest(`only')"), "");
        // parentheses protect inner commas
        assert_eq!(exp("zzfirst(`A(10,10), B')"), "A(10,10)");
        assert_eq!(exp("zzrest(`A(10,10), B, C(1,2)')"), "B, C(1,2)");
    }

    #[test]
    fn zzdeclrec_requires_an_open_unit() {
        let mut m4 = M4::new();
        assert!(matches!(
            m4.expand("zzdeclrec(`shared', `INTEGER', `X')"),
            Err(M4Error::BadArguments { .. })
        ));
        m4.define("ZZUNIT", "MAIN");
        m4.expand("zzdeclrec(`shared', `INTEGER', `X, A(3,4)')")
            .unwrap();
        assert_eq!(
            m4.recorded("decls"),
            &[
                "MAIN|shared|INTEGER|X".to_string(),
                "MAIN|shared|INTEGER|A(3,4)".to_string()
            ]
        );
    }

    #[test]
    fn utility_concat_and_stripdims() {
        assert_eq!(exp("zzconcat(`K', `_shared')"), "K_shared");
        assert_eq!(exp("zzstripdims(`A(10,20)')"), "A");
        assert_eq!(exp("zzstripdims(`X')"), "X");
    }

    #[test]
    fn recording_lists_are_ordered_and_deduped() {
        let mut m4 = M4::new();
        m4.expand("zzrecord(`L', `A')zzrecord(`L', `B')zzrecord(`L', `A')")
            .unwrap();
        assert_eq!(m4.recorded("L"), &["A".to_string(), "B".to_string()]);
        assert!(m4.recorded("NONE").is_empty());
    }

    #[test]
    fn gensym_is_monotonic() {
        let mut m4 = M4::new();
        let out = m4.expand("zzgensym(`T') zzgensym(`T')").unwrap();
        assert_eq!(out, "T1 T2");
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(matches!(
            M4::new().expand("`never closed"),
            Err(M4Error::Unterminated("quote"))
        ));
    }

    #[test]
    fn unterminated_args_are_an_error() {
        assert!(matches!(
            M4::new().expand("define(`A', `x')A(1, 2"),
            Err(M4Error::Unterminated("argument list"))
        ));
    }

    #[test]
    fn runaway_recursion_is_detected() {
        let mut m4 = M4::new();
        m4.define("LOOP", "LOOP");
        assert!(matches!(m4.expand("LOOP"), Err(M4Error::RecursionLimit(_))));
    }

    #[test]
    fn nested_macro_calls_in_arguments() {
        let src = "define(`A', `<$1>')define(`B', `[$1]')A(B(x))";
        assert_eq!(exp(src), "<[x]>");
    }

    #[test]
    fn commas_inside_nested_parens_do_not_split_args() {
        let src = "define(`F', `$#')F((a,b), c)";
        assert_eq!(exp(src), "2");
    }

    #[test]
    fn multiline_bodies_expand() {
        let src = "define(`BLOCK', `line one\nline two')BLOCK";
        assert_eq!(exp(src), "line one\nline two");
    }

    #[test]
    fn undefine_removes() {
        assert_eq!(exp("define(`A', `1')undefine(`A')A"), "A");
    }

    #[test]
    fn recursive_counting_macro_terminates() {
        // A classic m4 pattern: recursion with ifelse termination.
        let src = "define(`COUNT', `ifelse($1, `0', `', `$1 COUNT(decr($1))')')COUNT(3)";
        assert_eq!(exp(src).trim(), "3 2 1");
    }
}
