//! Phase 1 — the `sed` pass.
//!
//! §4.3: "The stream editor sed translates the Force syntax into
//! parameterized function macros."  This module is that stream editor: a
//! line-oriented rewriter that recognizes the Force statement forms and
//! emits `ZZ…(args)` macro calls for the m4 phase, leaving every other
//! line (ordinary Fortran) untouched.
//!
//! Statement forms recognized (keywords are case-insensitive; `[..]`
//! optional):
//!
//! ```text
//! Force <name> of <np> ident <me>
//! Forcesub <name>[(<args>)] of <np> ident <me>
//! Externf <name>
//! End declarations
//! Join
//! Barrier                      / End barrier
//! Critical <lockvar>           / End critical [<lockvar>]
//! Presched DO <label> <v> = <e1>, <e2> [, <e3>]
//! <label> End presched DO
//! Selfsched DO <label> <v> = <e1>, <e2> [, <e3>]
//! <label> End selfsched DO
//! Presched DO2 <label> <v1> = <e1>, <e2> [, <e3>] ; <v2> = <f1>, <f2> [, <f3>]
//! <label> End presched DO2     (likewise Selfsched DO2)
//! [Presched|Selfsched] Pcase   / Usect / Csect (<cond>) / End pcase
//! Produce <var> = <expr>
//! Consume <var> into <dest>
//! Copy <var> into <dest>
//! Void <var>
//! Isfull(<var>)                (expression form, rewritten in place)
//! Shared <type> <decls>
//! Private <type> <decls>
//! Async <type> <decls>
//! ```
//!
//! Comment lines (`C`, `c`, `*`, `!` in column 1) pass through unchanged.

/// Errors from the sed pass, with 1-based source line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SedError {
    /// 1-based line number in the Force source.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for SedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SedError {}

/// Translate a whole Force source file into macro-call form.
pub fn sed_pass(source: &str) -> Result<String, SedError> {
    let mut out = String::with_capacity(source.len() + 256);
    for (idx, line) in source.lines().enumerate() {
        let translated = translate_line(line).map_err(|message| SedError {
            line: idx + 1,
            message,
        })?;
        out.push_str(&translated);
        out.push('\n');
    }
    Ok(out)
}

/// Translate one line; ordinary Fortran passes through.
fn translate_line(line: &str) -> Result<String, String> {
    // Comments pass through untouched.
    if matches!(
        line.chars().next(),
        Some('C') | Some('c') | Some('*') | Some('!')
    ) {
        return Ok(line.to_string());
    }
    // The full/empty state *test* (§3.4 "the state can also be tested")
    // is an expression-level form: rewrite `Isfull(X)` to the machine
    // macro `zzisfull(X)` wherever it appears.
    let line = &rewrite_isfull(line);
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(line.to_string());
    }

    // A leading numeric label (needed for `<label> End … DO`).
    let (label, rest) = split_label(trimmed);
    let mut words = Words::new(rest);

    let first = match words.peek_word() {
        Some(w) => w.to_ascii_uppercase(),
        None => return Ok(line.to_string()),
    };

    let translated = match first.as_str() {
        "FORCE" => {
            words.next_word();
            let name = words.expect_ident("program name")?;
            words.expect_keyword("of")?;
            let np = words.expect_ident("process count variable")?;
            words.expect_keyword("ident")?;
            let me = words.expect_ident("process id variable")?;
            words.expect_end()?;
            Some(format!("ZZFORCE({name}, {np}, {me})"))
        }
        "FORCESUB" => {
            words.next_word();
            let name = words.expect_ident("subroutine name")?;
            let args = words.maybe_paren_group();
            words.expect_keyword("of")?;
            let np = words.expect_ident("process count variable")?;
            words.expect_keyword("ident")?;
            let me = words.expect_ident("process id variable")?;
            words.expect_end()?;
            Some(format!("ZZFORCESUB({name}, `{args}', {np}, {me})"))
        }
        "EXTERNF" => {
            words.next_word();
            let name = words.expect_ident("subroutine name")?;
            words.expect_end()?;
            Some(format!("ZZEXTERNF({name})"))
        }
        "JOIN" => {
            words.next_word();
            words.expect_end()?;
            Some("ZZJOIN".to_string())
        }
        "BARRIER" => {
            words.next_word();
            words.expect_end()?;
            Some("ZZBARRIER".to_string())
        }
        "CRITICAL" => {
            words.next_word();
            let var = words.expect_ident("lock variable")?;
            words.expect_end()?;
            Some(format!("ZZCRITICAL({var})"))
        }
        "PRODUCE" => {
            words.next_word();
            let var = words.expect_async_ref("asynchronous variable")?;
            let rest = words.rest().trim();
            let expr = rest
                .strip_prefix('=')
                .ok_or_else(|| "expected `=` after Produce variable".to_string())?
                .trim();
            if expr.is_empty() {
                return Err("Produce needs an expression".to_string());
            }
            Some(format!("ZZPRODUCE({var}, `{expr}')"))
        }
        "CONSUME" => {
            words.next_word();
            let var = words.expect_async_ref("asynchronous variable")?;
            words.expect_keyword("into")?;
            let dest = words.expect_ident("destination variable")?;
            words.expect_end()?;
            Some(format!("ZZCONSUME({var}, {dest})"))
        }
        "COPY" => {
            words.next_word();
            let var = words.expect_async_ref("asynchronous variable")?;
            words.expect_keyword("into")?;
            let dest = words.expect_ident("destination variable")?;
            words.expect_end()?;
            Some(format!("ZZCOPYF({var}, {dest})"))
        }
        "VOID" => {
            words.next_word();
            let var = words.expect_async_ref("asynchronous variable")?;
            words.expect_end()?;
            Some(format!("ZZVOID({var})"))
        }
        "SHARED" | "PRIVATE" | "ASYNC" => {
            words.next_word();
            let ty = words.expect_type()?;
            let decls = words.rest().trim().to_string();
            if decls.is_empty() {
                return Err(format!("{first} declaration lists no variables"));
            }
            Some(format!("ZZ{first}({ty}, `{decls}')"))
        }
        "PRESCHED" | "SELFSCHED" => {
            words.next_word();
            let second = words.expect_word("DO, DO2 or Pcase")?.to_ascii_uppercase();
            match second.as_str() {
                "DO" => {
                    let label = words.expect_label()?;
                    let (control, sched) = split_schedule_suffix(words.rest());
                    if first == "PRESCHED" && !matches!(sched, ScheduleSuffix::None) {
                        return Err(
                            "CHUNK/GUIDED scheduling applies only to Selfsched DO".to_string()
                        );
                    }
                    let (var, e1, e2, e3) = parse_do_control(&control)?;
                    match sched {
                        ScheduleSuffix::None => Some(format!(
                            "ZZ{first}DO({label}, {var}, `{e1}', `{e2}', `{e3}')"
                        )),
                        ScheduleSuffix::Chunk(n) => Some(format!(
                            "ZZSELFSCHEDDOC({label}, {var}, `{e1}', `{e2}', `{e3}', `{n}')"
                        )),
                        ScheduleSuffix::Guided => Some(format!(
                            "ZZSELFSCHEDDOG({label}, {var}, `{e1}', `{e2}', `{e3}')"
                        )),
                    }
                }
                "DO2" => {
                    // Doubly nested loop over index *pairs* (§3.3):
                    //   Presched DO2 10 I = 1, N ; J = 1, M [, step]
                    let label = words.expect_label()?;
                    let rest = words.rest();
                    let (outer, inner) = rest
                        .split_once(';')
                        .ok_or_else(|| "DO2 needs two index sets separated by `;`".to_string())?;
                    let (v1, a1, b1, c1) = parse_do_control(outer)?;
                    let (v2, a2, b2, c2) = parse_do_control(inner)?;
                    Some(format!(
                        "ZZ{first}DO2({label}, {v1}, `{a1}', `{b1}', `{c1}', {v2}, `{a2}', `{b2}', `{c2}')"
                    ))
                }
                "PCASE" => Some(format!(
                    "ZZPCASE({})",
                    if first == "PRESCHED" { "P" } else { "S" }
                )),
                other => {
                    return Err(format!(
                        "expected DO, DO2 or Pcase after {first}, found `{other}`"
                    ))
                }
            }
        }
        "PCASE" => {
            words.next_word();
            words.expect_end()?;
            Some("ZZPCASE(P)".to_string())
        }
        "USECT" => {
            words.next_word();
            words.expect_end()?;
            Some("ZZUSECT".to_string())
        }
        "CSECT" => {
            words.next_word();
            let cond = words.rest().trim();
            let inner = cond
                .strip_prefix('(')
                .and_then(|c| c.strip_suffix(')'))
                .ok_or_else(|| "Csect needs a parenthesized condition".to_string())?;
            Some(format!("ZZCSECT(`{inner}')"))
        }
        "END" => {
            words.next_word();
            let what = words.expect_word("construct name")?.to_ascii_uppercase();
            match what.as_str() {
                "DECLARATIONS" => {
                    words.expect_end()?;
                    Some("ZZENDDECL".to_string())
                }
                "BARRIER" => {
                    words.expect_end()?;
                    Some("ZZENDBARRIER".to_string())
                }
                "CRITICAL" => {
                    let var = words.next_word().unwrap_or_default();
                    Some(format!("ZZENDCRITICAL({var})"))
                }
                "PCASE" => {
                    words.expect_end()?;
                    Some("ZZENDPCASE".to_string())
                }
                "PRESCHED" | "SELFSCHED" => {
                    let kw = words.expect_word("DO or DO2")?.to_ascii_uppercase();
                    if kw != "DO" && kw != "DO2" {
                        return Err(format!("expected DO or DO2, found `{kw}`"));
                    }
                    words.expect_end()?;
                    let label =
                        label.ok_or_else(|| format!("End {what} {kw} needs its loop label"))?;
                    return Ok(format!("ZZEND{what}{kw}({label})"));
                }
                // `END IF`, `END DO` etc. are ordinary Fortran.
                _ => None,
            }
        }
        _ => None,
    };

    match translated {
        Some(t) => {
            if let Some(label) = label {
                Err(format!(
                    "unexpected statement label {label} on a Force statement"
                ))
            } else {
                Ok(t)
            }
        }
        None => Ok(line.to_string()),
    }
}

/// Rewrite case-insensitive `Isfull(` tokens to the machine-layer macro
/// `zzisfull(`.  Token-boundary aware (an identifier like `XISFULL(` is
/// left alone).
fn rewrite_isfull(line: &str) -> String {
    let chars: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut i = 0usize;
    while i < chars.len() {
        let boundary = i == 0 || !(chars[i - 1].is_ascii_alphanumeric() || chars[i - 1] == '_');
        let is_kw = boundary
            && i + 6 <= chars.len()
            && chars[i..i + 6]
                .iter()
                .zip("isfull".chars())
                .all(|(&c, k)| c.to_ascii_lowercase() == k)
            && chars[i + 6..]
                .iter()
                .find(|c| !c.is_whitespace())
                .is_some_and(|&c| c == '(');
        if is_kw {
            out.push_str("zzisfull");
            i += 6;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

/// Split a leading numeric label off a trimmed line.
fn split_label(s: &str) -> (Option<&str>, &str) {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    if end == 0 {
        (None, s)
    } else {
        (Some(&s[..end]), s[end..].trim_start())
    }
}

/// An optional scheduling suffix on `Selfsched DO`: `CHUNK <n>` claims
/// `n` trips per visit to the shared index, `GUIDED` uses tapering
/// chunks.  Absent, the paper's one-trip selfscheduling applies.
enum ScheduleSuffix {
    None,
    Chunk(String),
    Guided,
}

/// Split a trailing `CHUNK <tok>` or `GUIDED` keyword off the DO-control
/// text.  The keywords are case-insensitive and must stand as their own
/// trailing words; anything else stays part of the bounds expressions.
fn split_schedule_suffix(s: &str) -> (String, ScheduleSuffix) {
    let t = s.trim_end();
    if let Some(head) = strip_last_word(t, "GUIDED") {
        return (head.to_string(), ScheduleSuffix::Guided);
    }
    if let Some(ws) = t.rfind(char::is_whitespace) {
        let (head, tok) = (t[..ws].trim_end(), t[ws..].trim());
        if let Some(head2) = strip_last_word(head, "CHUNK") {
            return (head2.to_string(), ScheduleSuffix::Chunk(tok.to_string()));
        }
    }
    (t.to_string(), ScheduleSuffix::None)
}

/// Strip an ASCII keyword standing as the final whitespace-separated
/// word of `s` (case-insensitive); `None` if it is not there.
fn strip_last_word<'a>(s: &'a str, word: &str) -> Option<&'a str> {
    let n = word.len();
    if s.len() <= n || !s.is_char_boundary(s.len() - n) {
        return None;
    }
    let (head, tail) = s.split_at(s.len() - n);
    if tail.eq_ignore_ascii_case(word) && head.ends_with(char::is_whitespace) {
        Some(head.trim_end())
    } else {
        None
    }
}

/// Parse the `V = E1, E2 [, E3]` DO-control after the label.
fn parse_do_control(s: &str) -> Result<(String, String, String, String), String> {
    let (var, rhs) = s
        .split_once('=')
        .ok_or_else(|| "DO statement needs `var = e1, e2[, e3]`".to_string())?;
    let var = var.trim();
    if !is_ident(var) {
        return Err(format!("`{var}` is not a valid loop variable"));
    }
    let parts = split_top_commas(rhs);
    match parts.len() {
        2 => Ok((
            var.to_string(),
            parts[0].clone(),
            parts[1].clone(),
            "1".to_string(),
        )),
        3 => Ok((
            var.to_string(),
            parts[0].clone(),
            parts[1].clone(),
            parts[2].clone(),
        )),
        n => Err(format!("DO control needs 2 or 3 bounds, found {n}")),
    }
}

/// Split on commas not nested in parentheses.
pub(crate) fn split_top_commas(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => parts.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
        .into_iter()
        .map(|p| p.trim().to_string())
        .filter(|p| !p.is_empty())
        .collect()
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A tiny word scanner over one statement.
struct Words<'a> {
    rest: &'a str,
}

impl<'a> Words<'a> {
    fn new(s: &'a str) -> Self {
        Words { rest: s.trim() }
    }

    fn peek_word(&self) -> Option<&'a str> {
        let s = self.rest.trim_start();
        if s.is_empty() {
            return None;
        }
        let end = s
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(s.len());
        if end == 0 {
            None
        } else {
            Some(&s[..end])
        }
    }

    fn next_word(&mut self) -> Option<&'a str> {
        let s = self.rest.trim_start();
        let w = {
            let end = s
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(s.len());
            if end == 0 {
                return None;
            }
            &s[..end]
        };
        self.rest = &s[w.len()..];
        Some(w)
    }

    fn expect_word(&mut self, what: &str) -> Result<&'a str, String> {
        self.next_word()
            .ok_or_else(|| format!("expected {what}, found end of statement"))
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        let w = self.expect_word(what)?;
        if is_ident(w) {
            Ok(w.to_string())
        } else {
            Err(format!("expected {what}, found `{w}`"))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), String> {
        let w = self.expect_word(kw)?;
        if w.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(format!("expected `{kw}`, found `{w}`"))
        }
    }

    fn expect_label(&mut self) -> Result<String, String> {
        let w = self.expect_word("statement label")?;
        if w.chars().all(|c| c.is_ascii_digit()) && !w.is_empty() {
            Ok(w.to_string())
        } else {
            Err(format!("expected a numeric label, found `{w}`"))
        }
    }

    fn expect_type(&mut self) -> Result<String, String> {
        let w = self.expect_word("type name")?.to_ascii_uppercase();
        match w.as_str() {
            "INTEGER" | "REAL" | "LOGICAL" => Ok(w),
            other => Err(format!("unsupported declaration type `{other}`")),
        }
    }

    /// An asynchronous variable reference: `C` or `C(subscripts)`.
    fn expect_async_ref(&mut self, what: &str) -> Result<String, String> {
        let name = self.expect_ident(what)?;
        let s = self.rest.trim_start();
        if s.starts_with('(') {
            let subs = self.maybe_paren_group();
            Ok(format!("{name}({subs})"))
        } else {
            Ok(name)
        }
    }

    fn expect_end(&mut self) -> Result<(), String> {
        if self.rest.trim().is_empty() {
            Ok(())
        } else {
            Err(format!("unexpected trailing text `{}`", self.rest.trim()))
        }
    }

    fn rest(&self) -> &'a str {
        self.rest
    }

    /// Consume a parenthesized group immediately following, returning its
    /// inner text ("" if absent).
    fn maybe_paren_group(&mut self) -> String {
        let s = self.rest.trim_start();
        if !s.starts_with('(') {
            return String::new();
        }
        let mut depth = 0usize;
        for (i, c) in s.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        let inner = &s[1..i];
                        self.rest = &s[i + 1..];
                        return inner.trim().to_string();
                    }
                }
                _ => {}
            }
        }
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(line: &str) -> String {
        translate_line(line).unwrap()
    }

    #[test]
    fn force_header() {
        assert_eq!(
            one("      Force MAIN of NP ident ME"),
            "ZZFORCE(MAIN, NP, ME)"
        );
    }

    #[test]
    fn forcesub_with_and_without_args() {
        assert_eq!(
            one("      Forcesub WORK(A, N) of NP ident ME"),
            "ZZFORCESUB(WORK, `A, N', NP, ME)"
        );
        assert_eq!(
            one("      Forcesub NOP of NP ident ME"),
            "ZZFORCESUB(NOP, `', NP, ME)"
        );
    }

    #[test]
    fn selfsched_do_statement() {
        assert_eq!(
            one("      Selfsched DO 100 K = START, LAST, INCR"),
            "ZZSELFSCHEDDO(100, K, `START', `LAST', `INCR')"
        );
        assert_eq!(one("100   End Selfsched DO"), "ZZENDSELFSCHEDDO(100)");
    }

    #[test]
    fn selfsched_do_chunk_and_guided_suffixes() {
        assert_eq!(
            one("      Selfsched DO 100 K = 1, N CHUNK 4"),
            "ZZSELFSCHEDDOC(100, K, `1', `N', `1', `4')"
        );
        assert_eq!(
            one("      Selfsched DO 7 K = 1, 20, 2 chunk NC"),
            "ZZSELFSCHEDDOC(7, K, `1', `20', `2', `NC')"
        );
        assert_eq!(
            one("      Selfsched DO 9 K = 1, N GUIDED"),
            "ZZSELFSCHEDDOG(9, K, `1', `N', `1')"
        );
        // The end statement is the plain one either way.
        assert_eq!(one("100   End Selfsched DO"), "ZZENDSELFSCHEDDO(100)");
        // Presched is static by definition: the suffixes are an error.
        assert!(translate_line("      Presched DO 10 I = 1, N CHUNK 4").is_err());
        assert!(translate_line("      Presched DO 10 I = 1, N GUIDED").is_err());
        // An identifier merely *containing* the keyword stays a bound.
        assert_eq!(
            one("      Selfsched DO 5 K = 1, NGUIDED"),
            "ZZSELFSCHEDDO(5, K, `1', `NGUIDED', `1')"
        );
    }

    #[test]
    fn presched_do_default_increment() {
        assert_eq!(
            one("      Presched DO 10 I = 1, N"),
            "ZZPRESCHEDDO(10, I, `1', `N', `1')"
        );
        assert_eq!(one("10    End presched DO"), "ZZENDPRESCHEDDO(10)");
    }

    #[test]
    fn do_bounds_may_be_expressions() {
        assert_eq!(
            one("      Presched DO 20 I = J+1, MIN(N, M), 2"),
            "ZZPRESCHEDDO(20, I, `J+1', `MIN(N, M)', `2')"
        );
    }

    #[test]
    fn barrier_and_critical() {
        assert_eq!(one("      Barrier"), "ZZBARRIER");
        assert_eq!(one("      End barrier"), "ZZENDBARRIER");
        assert_eq!(one("      Critical LCK"), "ZZCRITICAL(LCK)");
        assert_eq!(one("      End critical LCK"), "ZZENDCRITICAL(LCK)");
        assert_eq!(one("      End critical"), "ZZENDCRITICAL()");
    }

    #[test]
    fn produce_consume_void_copy() {
        assert_eq!(one("      Produce C = K + 1"), "ZZPRODUCE(C, `K + 1')");
        assert_eq!(one("      Consume C into T"), "ZZCONSUME(C, T)");
        assert_eq!(one("      Copy C into T"), "ZZCOPYF(C, T)");
        assert_eq!(one("      Void C"), "ZZVOID(C)");
    }

    #[test]
    fn declarations() {
        assert_eq!(
            one("      Shared INTEGER TOTAL, A(10)"),
            "ZZSHARED(INTEGER, `TOTAL, A(10)')"
        );
        assert_eq!(one("      Private REAL X"), "ZZPRIVATE(REAL, `X')");
        assert_eq!(one("      Async INTEGER C"), "ZZASYNC(INTEGER, `C')");
        assert_eq!(one("      End declarations"), "ZZENDDECL");
    }

    #[test]
    fn pcase_family() {
        assert_eq!(one("      Pcase"), "ZZPCASE(P)");
        assert_eq!(one("      Presched Pcase"), "ZZPCASE(P)");
        assert_eq!(one("      Selfsched Pcase"), "ZZPCASE(S)");
        assert_eq!(one("      Usect"), "ZZUSECT");
        assert_eq!(one("      Csect (N .GT. 0)"), "ZZCSECT(`N .GT. 0')");
        assert_eq!(one("      End pcase"), "ZZENDPCASE");
    }

    #[test]
    fn join_and_externf() {
        assert_eq!(one("      Join"), "ZZJOIN");
        assert_eq!(one("      Externf WORK"), "ZZEXTERNF(WORK)");
    }

    #[test]
    fn plain_fortran_passes_through() {
        let lines = [
            "      TOTAL = TOTAL + K",
            "      IF (K .GT. 0) THEN",
            "      END IF",
            "100   CONTINUE",
            "      CALL WORK(A, N)",
            "      END DO",
            "",
        ];
        for l in lines {
            assert_eq!(one(l), l, "line should pass through: {l}");
        }
    }

    #[test]
    fn comments_pass_through_even_if_force_like() {
        assert_eq!(one("C     Barrier"), "C     Barrier");
        assert_eq!(one("* Join"), "* Join");
        assert_eq!(one("! Critical X"), "! Critical X");
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(one("      BARRIER"), "ZZBARRIER");
        assert_eq!(one("      barrier"), "ZZBARRIER");
        assert_eq!(
            one("      selfsched do 5 k = 1, 3"),
            "ZZSELFSCHEDDO(5, k, `1', `3', `1')"
        );
    }

    #[test]
    fn whole_file_reports_line_numbers() {
        let src = "      Force M of NP ident ME\n      Consume C\n";
        let err = sed_pass(src).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("into"), "{}", err.message);
    }

    #[test]
    fn end_do_without_label_is_an_error() {
        let err = translate_line("      End selfsched DO").unwrap_err();
        assert!(err.contains("label"), "{err}");
    }

    #[test]
    fn bad_do_control_is_an_error() {
        assert!(translate_line("      Presched DO 10 I = 1").is_err());
        assert!(translate_line("      Presched DO 10 = 1, 2").is_err());
        assert!(translate_line("      Presched DO xx I = 1, 2").is_err());
    }

    #[test]
    fn do2_statements() {
        assert_eq!(
            one("      Selfsched DO2 100 I = 1, N ; J = 1, M"),
            "ZZSELFSCHEDDO2(100, I, `1', `N', `1', J, `1', `M', `1')"
        );
        assert_eq!(
            one("      Presched DO2 20 I = 2, 8, 2 ; J = 9, 1, -3"),
            "ZZPRESCHEDDO2(20, I, `2', `8', `2', J, `9', `1', `-3')"
        );
        assert_eq!(one("100   End selfsched DO2"), "ZZENDSELFSCHEDDO2(100)");
        assert_eq!(one("20    End presched DO2"), "ZZENDPRESCHEDDO2(20)");
        assert!(translate_line("      Presched DO2 5 I = 1, 2").is_err());
    }

    #[test]
    fn split_top_commas_respects_parens() {
        assert_eq!(
            split_top_commas("A(1,2), B, MAX(C, D)"),
            vec!["A(1,2)", "B", "MAX(C, D)"]
        );
    }
}

#[cfg(test)]
mod isfull_tests {
    use super::translate_line;

    #[test]
    fn isfull_rewrites_token_boundary_aware() {
        assert_eq!(
            translate_line("      IF (Isfull(C)) THEN").unwrap(),
            "      IF (zzisfull(C)) THEN"
        );
        assert_eq!(
            translate_line("      X = ISFULL (C)").unwrap(),
            "      X = zzisfull (C)"
        );
        // not at a token boundary, or no call parentheses: untouched
        assert_eq!(
            translate_line("      XISFULL(C) = 1").unwrap(),
            "      XISFULL(C) = 1"
        );
        assert_eq!(
            translate_line("      ISFULLY = 1").unwrap(),
            "      ISFULLY = 1"
        );
    }

    #[test]
    fn isfull_survives_non_ascii_text() {
        // must not panic on multi-byte characters (found by proptest)
        let weird = "      X = 1 ! caf\u{e9} \u{108f0} isfull(";
        let _ = translate_line(weird);
        let _ = super::sed_pass("'\u{e9}\"`\u{108f0}M isfull(x)\n");
    }
}

/// Plain (non-proptest) regressions pinning UTF-8 safety, so the hermetic
/// default build keeps covering them.  The proptest shrinker once reduced
/// a sed-pass crash candidate to the two-character line `"Σ` (see
/// tests/proptests.proptest-regressions); everything here must stay
/// panic-free whatever the translation outcome.
#[cfg(test)]
mod utf8_regressions {
    use super::{sed_pass, translate_line};

    #[test]
    fn quoted_sigma_line_translates_without_panicking() {
        // The shrunk proptest seed: a double quote followed by a
        // multi-byte character.  Slicing with a *char* index instead of a
        // byte offset would split Σ (0xCE 0xA3) in half and panic.
        let _ = translate_line("\"\u{3a3}");
        let _ = sed_pass("\"\u{3a3}\n");
        let _ = sed_pass("      X = \"\u{3a3}\n");
    }

    #[test]
    fn multibyte_text_flows_through_paren_groups() {
        // maybe_paren_group walks char_indices (byte offsets) and slices
        // the inner text; multi-byte argument content must come out whole.
        assert_eq!(
            translate_line("      Forcesub W(caf\u{e9}\u{3a3}x, \u{6f22}\u{5b57}) of NP ident ME")
                .unwrap(),
            "ZZFORCESUB(W, `caf\u{e9}\u{3a3}x, \u{6f22}\u{5b57}', NP, ME)"
        );
        // A multi-byte char directly against the closing paren exercises
        // the `&s[1..i]` / `&s[i + 1..]` boundary slices.
        assert_eq!(
            translate_line("      Critical LCK").unwrap(),
            "ZZCRITICAL(LCK)"
        );
        assert_eq!(
            translate_line("      Produce C(\u{3a3}) = \u{3a3}+1").unwrap(),
            "ZZPRODUCE(C(\u{3a3}), `\u{3a3}+1')"
        );
    }

    #[test]
    fn multibyte_noise_never_panics_the_word_scanner() {
        // The Words scanner (expect_word / expect_ident / bounds parsing)
        // searches by byte index; mixed-width noise around every keyword
        // position must fail cleanly or pass through, never panic.
        for line in [
            "      Force \u{3a3} of NP ident ME",
            "      Selfsched DO 10 \u{3a3} = 1, \u{6f22}",
            "      Critical \u{e9}\u{3a3}",
            "      Produce \u{3a3} = 1",
            "      Copy \u{3a3} into \u{6f22}",
            "\u{3a3}\"\u{3a3}'\u{3a3}`\u{3a3}",
        ] {
            let _ = translate_line(line);
            let _ = sed_pass(&format!("{line}\n"));
        }
    }
}
