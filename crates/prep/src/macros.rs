//! Level 1 — the machine-independent statement macros (§4.2).
//!
//! "The statement macros explicitly process the Force language constructs
//! in programs.  They translate them into Fortran code and low level
//! machine dependent macro calls."
//!
//! The definitions installed here expand the `ZZ…` calls produced by the
//! sed pass into Fortran plus calls to the *machine layer* names —
//! `lock(…)`, `unlock(…)`, `zzprod(…)`, `zzcons(…)`, `zzvoid(…)`,
//! `zzcopyf(…)` — which remain unexpanded text after this level (the
//! paper's intermediate form; compare the §4.2 listing) and are resolved
//! by the machine-dependent definitions of
//! [`crate::machdep_macros`] in the second m4 pass.
//!
//! *Internal macros* (the paper's third category) used here:
//! `ZZFULLBAR` (a complete barrier episode) and `ZZPCCLAIM` (the
//! selfscheduled-Pcase claim step).
//!
//! Bookkeeping relies on the engine's recording lists:
//!
//! | list | contents |
//! |---|---|
//! | `units` | program unit names, main first |
//! | `envlocks` | implementation lock variables (`LOOPnnn`, Pcase locks) |
//! | `userlocks` | user lock variables (critical sections) |
//! | `envints` | non-lock environment integers (`K_shared`, Pcase counters) |
//! | `decls` | `unit|class|type|item` per declared Force variable |
//! | `externf` | externally compiled Force subroutines |

use crate::m4::M4;

/// Install the statement-macro layer into an m4 engine.
pub fn install_statement_macros(m4: &mut M4) {
    // ---- program structure ------------------------------------------------
    m4.define(
        "ZZFORCE",
        "define(`ZZUNIT', `$1')define(`ZZNPV', `$2')define(`ZZMEV', `$3')dnl
zzrecord(`units', `$1')dnl
      SUBROUTINE $1
C --- Force main program $1 (force of $2, ident $3) ---
      INTEGER $3, $2
      COMMON /ZZPENV/ $3, $2",
    );
    m4.define(
        "ZZFORCESUB",
        "define(`ZZUNIT', `$1')define(`ZZNPV', `$3')define(`ZZMEV', `$4')dnl
zzrecord(`units', `$1')dnl
ifelse(`$2', `', `      SUBROUTINE $1', `      SUBROUTINE $1($2)')
C --- Force subroutine $1 (force of $3, ident $4) ---
      INTEGER $4, $3
      COMMON /ZZPENV/ $4, $3",
    );
    m4.define(
        "ZZEXTERNF",
        "zzrecord(`externf', `$1')dnl
C     external Force subroutine $1",
    );
    m4.define("ZZENDDECL", "C*ZZENVDECL*ZZUNIT");
    m4.define(
        "ZZJOIN",
        "      RETURN
      END",
    );

    // ---- declarations ------------------------------------------------------
    m4.define(
        "ZZSHARED",
        "zzdeclrec(`shared', `$1', `$2')dnl
      $1 $2",
    );
    m4.define(
        "ZZPRIVATE",
        "zzdeclrec(`private', `$1', `$2')dnl
      $1 $2",
    );
    m4.define(
        "ZZASYNC",
        "zzdeclrec(`async', `$1', `$2')dnl
      $1 $2",
    );

    // ---- internal macros ----------------------------------------------------
    // A complete barrier episode (entry + exit), §4.2's two-lock protocol.
    m4.define(
        "ZZFULLBAR",
        "      lock(BARWIN)
      ZZNBAR = ZZNBAR + 1
      IF (ZZNBAR .EQ. ZZNPV) THEN
      unlock(BARWOT)
      ELSE
      unlock(BARWIN)
      END IF
      lock(BARWOT)
      ZZNBAR = ZZNBAR - 1
      IF (ZZNBAR .EQ. 0) THEN
      unlock(BARWIN)
      ELSE
      unlock(BARWOT)
      END IF",
    );

    // Internal: the barrier *exit* phase alone — pairs with an entry
    // emitted earlier (selfscheduled constructs enter at their top and
    // exit at their End).
    m4.define(
        "ZZBAREXIT",
        "      lock(BARWOT)
      ZZNBAR = ZZNBAR - 1
      IF (ZZNBAR .EQ. 0) THEN
      unlock(BARWIN)
      ELSE
      unlock(BARWOT)
      END IF",
    );

    // ---- barrier statement ---------------------------------------------------
    // The section between Barrier and End barrier is executed by the last
    // arriver while every other process is held at `lock(BARWOT)`.
    m4.define(
        "ZZBARRIER",
        "C barrier entry code
      lock(BARWIN)
C report arrival of processes
      ZZNBAR = ZZNBAR + 1
      IF (ZZNBAR .EQ. ZZNPV) THEN
C barrier section (one process)",
    );
    m4.define(
        "ZZENDBARRIER",
        "C end barrier section
      unlock(BARWOT)
      ELSE
      unlock(BARWIN)
      END IF
C barrier exit code
      lock(BARWOT)
C report exit of processes
      ZZNBAR = ZZNBAR - 1
      IF (ZZNBAR .EQ. 0) THEN
      unlock(BARWIN)
      ELSE
      unlock(BARWOT)
      END IF",
    );

    // ---- critical sections -----------------------------------------------------
    m4.define(
        "ZZCRITICAL",
        "zzrecord(`userlocks', `$1')pushdef(`ZZCRIT', `$1')dnl
C critical section $1
      lock($1)",
    );
    m4.define(
        "ZZENDCRITICAL",
        "ifelse(`$1', `', `      unlock(defn(`ZZCRIT'))', `      unlock($1)')popdef(`ZZCRIT')",
    );

    // ---- selfscheduled DO (the §4.2 worked example) ------------------------------
    // ZZDOKIND<label> records which selfscheduling flavour opened the
    // loop (S = one-trip, C = chunked, G = guided) so the shared End
    // statement can emit the matching epilogue.
    m4.define(
        "ZZSELFSCHEDDO",
        "define(`ZZDOVAR$1', `$2')define(`ZZDOLAST$1', `$4')define(`ZZDOINCR$1', `$5')dnl
define(`ZZDOKIND$1', `S')dnl
zzrecord(`envlocks', `LOOP$1')zzrecord(`envints', `$2_shared')dnl
C loop entry code
      lock(BARWIN)
      IF (ZZNBAR .EQ. 0) THEN
C initialize loop index
      $2_shared = $3
      END IF
C report arrival of processes
      ZZNBAR = ZZNBAR + 1
      IF (ZZNBAR .EQ. ZZNPV) THEN
      unlock(BARWOT)
      ELSE
      unlock(BARWIN)
      END IF
C self scheduled loop index distribution
$1    lock(LOOP$1)
C get next index value
      $2 = $2_shared
      $2_shared = $2 + $5
      unlock(LOOP$1)
C test for completion
      IF ((($5) .GT. 0 .AND. $2 .LE. ($4)) .OR. (($5) .LT. 0 .AND. $2 .GE. ($4))) THEN",
    );
    // The epilogue depends on the flavour: one-trip loops go straight
    // back to the claim; chunked/guided loops first walk the remaining
    // trips of the claimed chunk (counter ZZC<label>, bound stored by
    // the opening macro).
    m4.define(
        "ZZENDSELFSCHEDDO",
        "ifelse(defn(`ZZDOKIND$1'), `C', `      ZZC$1 = ZZC$1 + 1
      IF (ZZC$1 .LT. (ZZDOCHUNKN$1)) GO TO ZZDOBODY$1
      GO TO $1
      END IF', `ifelse(defn(`ZZDOKIND$1'), `G', `      ZZC$1 = ZZC$1 + 1
      IF (ZZC$1 .LT. ZZK$1) GO TO ZZDOBODY$1
      GO TO $1
      END IF', `      GO TO $1
      END IF')')
C loop exit code
      lock(BARWOT)
C report exit of processes
      ZZNBAR = ZZNBAR - 1
      IF (ZZNBAR .EQ. 0) THEN
      unlock(BARWIN)
      ELSE
      unlock(BARWOT)
      END IF",
    );

    // ---- chunked / guided selfscheduled DO (scheduling-plane extension) ----------
    // `Selfsched DO n v = e1, e2[, e3] CHUNK c`: same barrier entry and
    // locked claim as §4.2, but each visit to the shared index takes `c`
    // consecutive trips; the private counter ZZC<label> then walks them
    // without re-acquiring LOOP<label>.  A chunk that crosses the bound
    // simply fails the per-trip completion test, which exits the loop.
    m4.define(
        "ZZSELFSCHEDDOC",
        "define(`ZZDOVAR$1', `$2')define(`ZZDOLAST$1', `$4')define(`ZZDOINCR$1', `$5')dnl
define(`ZZDOKIND$1', `C')define(`ZZDOCHUNKN$1', `$6')define(`ZZDOBODY$1', zzgensym(`97'))dnl
zzrecord(`envlocks', `LOOP$1')zzrecord(`envints', `$2_shared')dnl
zzrecord(`privints', `ZZV$1')zzrecord(`privints', `ZZC$1')dnl
C chunked selfscheduled loop entry
      lock(BARWIN)
      IF (ZZNBAR .EQ. 0) THEN
C initialize loop index
      $2_shared = $3
      END IF
C report arrival of processes
      ZZNBAR = ZZNBAR + 1
      IF (ZZNBAR .EQ. ZZNPV) THEN
      unlock(BARWOT)
      ELSE
      unlock(BARWIN)
      END IF
C claim ($6) consecutive index values per visit
$1    lock(LOOP$1)
      ZZV$1 = $2_shared
      $2_shared = ZZV$1 + ($6)*($5)
      unlock(LOOP$1)
      ZZC$1 = 0
ZZDOBODY$1 CONTINUE
      $2 = ZZV$1 + ZZC$1*($5)
C test for completion
      IF ((($5) .GT. 0 .AND. $2 .LE. ($4)) .OR. (($5) .LT. 0 .AND. $2 .GE. ($4))) THEN",
    );
    // `Selfsched DO n v = e1, e2[, e3] GUIDED`: the chunk size tapers with
    // the remaining trip count — MAX(1, remaining/(2*NP)) — so early
    // claims are large and the tail self-balances.
    m4.define(
        "ZZSELFSCHEDDOG",
        "define(`ZZDOVAR$1', `$2')define(`ZZDOLAST$1', `$4')define(`ZZDOINCR$1', `$5')dnl
define(`ZZDOKIND$1', `G')define(`ZZDOBODY$1', zzgensym(`97'))dnl
zzrecord(`envlocks', `LOOP$1')zzrecord(`envints', `$2_shared')dnl
zzrecord(`privints', `ZZV$1')zzrecord(`privints', `ZZR$1')dnl
zzrecord(`privints', `ZZK$1')zzrecord(`privints', `ZZC$1')dnl
C guided selfscheduled loop entry
      lock(BARWIN)
      IF (ZZNBAR .EQ. 0) THEN
C initialize loop index
      $2_shared = $3
      END IF
C report arrival of processes
      ZZNBAR = ZZNBAR + 1
      IF (ZZNBAR .EQ. ZZNPV) THEN
      unlock(BARWOT)
      ELSE
      unlock(BARWIN)
      END IF
C claim a tapering chunk of index values
$1    lock(LOOP$1)
      ZZV$1 = $2_shared
      ZZR$1 = ((($4) - ZZV$1) + ($5)) / ($5)
      ZZK$1 = MAX(1, ZZR$1 / (2*ZZNPV))
      $2_shared = ZZV$1 + ZZK$1*($5)
      unlock(LOOP$1)
      ZZC$1 = 0
ZZDOBODY$1 CONTINUE
      $2 = ZZV$1 + ZZC$1*($5)
C test for completion
      IF ((($5) .GT. 0 .AND. $2 .LE. ($4)) .OR. (($5) .LT. 0 .AND. $2 .GE. ($4))) THEN",
    );

    // ---- prescheduled DO -------------------------------------------------------
    // "completely machine independent, since only the number of executing
    // processes is needed to distribute the index values among processes":
    // cyclic distribution K = start + me*incr, stepping by nproc*incr.
    m4.define(
        "ZZPRESCHEDDO",
        "define(`ZZDOVAR$1', `$2')define(`ZZDOLAST$1', `$4')define(`ZZDOINCR$1', `$5')dnl
define(`ZZDOEXIT$1', zzgensym(`99'))dnl
C prescheduled loop over $2
      $2 = ($3) + ZZMEV*($5)
$1    CONTINUE
      IF (.NOT. ((($5) .GT. 0 .AND. $2 .LE. ($4)) .OR. (($5) .LT. 0 .AND. $2 .GE. ($4)))) GO TO ZZDOEXIT$1",
    );
    m4.define(
        "ZZENDPRESCHEDDO",
        "C next prescheduled index
      ZZDOVAR$1 = ZZDOVAR$1 + ZZNPV*(ZZDOINCR$1)
      GO TO $1
ZZDOEXIT$1 CONTINUE
C prescheduled loop exit barrier
ZZFULLBAR",
    );

    // ---- doubly nested DOALL: index pairs (§3.3) ---------------------------------
    // $1 label; $2..$5 outer var/from/to/step; $6..$9 inner var/from/to/step.
    // The pair space is linearized: trip T of N1*N2 maps to
    //   outer = a1 + (T / N2)*c1,  inner = a2 + MOD(T, N2)*c2.
    m4.define(
        "ZZSELFSCHEDDO2",
        "define(`ZZDOEXIT$1', zzgensym(`99'))dnl
zzrecord(`envlocks', `LOOP$1')zzrecord(`envints', `ZZT$1_shared')dnl
C doubly nested selfscheduled loop entry
      lock(BARWIN)
      IF (ZZNBAR .EQ. 0) THEN
C initialize pair index
      ZZT$1_shared = 0
      END IF
      ZZNBAR = ZZNBAR + 1
      IF (ZZNBAR .EQ. ZZNPV) THEN
      unlock(BARWOT)
      ELSE
      unlock(BARWIN)
      END IF
C pair trip counts
      ZZN1 = MAX(0, (($4) - ($3) + ($5)) / ($5))
      ZZN2 = MAX(0, (($8) - ($7) + ($9)) / ($9))
C self scheduled pair distribution
$1    lock(LOOP$1)
      ZZT = ZZT$1_shared
      ZZT$1_shared = ZZT + 1
      unlock(LOOP$1)
      IF (ZZT .LT. ZZN1 * ZZN2) THEN
      $2 = ($3) + (ZZT / ZZN2) * ($5)
      $6 = ($7) + MOD(ZZT, ZZN2) * ($9)",
    );
    m4.define(
        "ZZENDSELFSCHEDDO2",
        "      GO TO $1
      END IF
C doubly nested loop exit code
ZZBAREXIT",
    );
    m4.define(
        "ZZPRESCHEDDO2",
        "define(`ZZDOEXIT$1', zzgensym(`99'))dnl
C doubly nested prescheduled loop over pairs
      ZZN1 = MAX(0, (($4) - ($3) + ($5)) / ($5))
      ZZN2 = MAX(0, (($8) - ($7) + ($9)) / ($9))
      ZZT = ZZMEV
$1    CONTINUE
      IF (ZZT .GE. ZZN1 * ZZN2) GO TO ZZDOEXIT$1
      $2 = ($3) + (ZZT / ZZN2) * ($5)
      $6 = ($7) + MOD(ZZT, ZZN2) * ($9)",
    );
    m4.define(
        "ZZENDPRESCHEDDO2",
        "C next prescheduled pair
      ZZT = ZZT + ZZNPV
      GO TO $1
ZZDOEXIT$1 CONTINUE
C prescheduled pair loop exit barrier
ZZFULLBAR",
    );

    // ---- Pcase -------------------------------------------------------------------
    // kind P = prescheduled (blocks allocated cyclically to processes),
    // kind S = selfscheduled (blocks claimed through a locked counter).
    m4.define(
        "ZZPCASE",
        "pushdef(`ZZPCKIND', `$1')define(`ZZPCOPEN', `0')dnl
ifelse(`$1', `P', `C prescheduled pcase
      ZZPSEC = -1', `pushdef(`ZZPCID', zzgensym(`ZZPC'))dnl
zzrecord(`envints', ZZPCID)zzrecord(`envlocks', zzconcat(ZZPCID, `L'))dnl
C selfsched pcase entry
      lock(BARWIN)
      IF (ZZNBAR .EQ. 0) THEN
      ZZPCID = 0
      END IF
      ZZNBAR = ZZNBAR + 1
      IF (ZZNBAR .EQ. ZZNPV) THEN
      unlock(BARWOT)
      ELSE
      unlock(BARWIN)
      END IF
      ZZPSEC = -1
ZZPCCLAIM')",
    );
    // Internal: claim the next selfscheduled pcase section number.
    m4.define(
        "ZZPCCLAIM",
        "      lock(zzconcat(ZZPCID, `L'))
      ZZNXT = ZZPCID
      ZZPCID = ZZPCID + 1
      unlock(zzconcat(ZZPCID, `L'))",
    );
    // Internal: close the currently open section, if any.
    m4.define(
        "ZZPCCLOSE",
        "ifelse(ZZPCOPEN, `1', `      END IF
ifelse(defn(`ZZPCKIND'), `S', `ZZPCCLAIM
')      END IF
')dnl",
    );
    m4.define(
        "ZZUSECT",
        "ZZPCCLOSE()define(`ZZPCOPEN', `1')dnl
C pcase section
      ZZPSEC = ZZPSEC + 1
ifelse(defn(`ZZPCKIND'), `P', `      IF (MOD(ZZPSEC, ZZNPV) .EQ. ZZMEV) THEN', `      IF (ZZPSEC .EQ. ZZNXT) THEN')
      IF (.TRUE.) THEN",
    );
    m4.define(
        "ZZCSECT",
        "ZZPCCLOSE()define(`ZZPCOPEN', `1')dnl
C conditional pcase section
      ZZPSEC = ZZPSEC + 1
ifelse(defn(`ZZPCKIND'), `P', `      IF (MOD(ZZPSEC, ZZNPV) .EQ. ZZMEV) THEN', `      IF (ZZPSEC .EQ. ZZNXT) THEN')
      IF ($1) THEN",
    );
    m4.define(
        "ZZENDPCASE",
        "ZZPCCLOSE()dnl
ifelse(defn(`ZZPCKIND'), `S', `C end selfsched pcase (exit the entry barrier)
ZZBAREXIT
popdef(`ZZPCID')', `C end pcase barrier
ZZFULLBAR')popdef(`ZZPCKIND')dnl",
    );

    // ---- asynchronous variable operations -------------------------------------
    // Level 1 leaves the produce/consume mechanism to the machine layer:
    // the HEP maps these to hardware full/empty accesses, every other
    // machine to the two-lock protocol (§4.2).
    m4.define("ZZPRODUCE", "      zzprod($1, `$2')");
    m4.define("ZZCONSUME", "      zzcons($1, $2)");
    m4.define("ZZVOID", "      zzvoid($1)");
    m4.define("ZZCOPYF", "      zzcopyf($1, $2)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::m4::M4;

    fn engine() -> M4 {
        let mut m4 = M4::new();
        install_statement_macros(&mut m4);
        m4
    }

    fn expand(src: &str) -> String {
        engine().expand(src).unwrap()
    }

    #[test]
    fn force_header_emits_subroutine_and_private_env() {
        let out = expand("ZZFORCE(MAIN, NP, ME)");
        assert!(out.contains("SUBROUTINE MAIN"), "{out}");
        assert!(out.contains("COMMON /ZZPENV/ ME, NP"), "{out}");
    }

    #[test]
    fn barrier_brackets_a_single_process_section() {
        let out = expand("ZZFORCE(M, NP, ME)\nZZBARRIER\n      TOTAL = 0\nZZENDBARRIER");
        assert!(out.contains("lock(BARWIN)"), "{out}");
        assert!(out.contains("IF (ZZNBAR .EQ. NP) THEN"), "{out}");
        assert!(out.contains("TOTAL = 0"), "{out}");
        assert!(out.contains("unlock(BARWOT)"), "{out}");
        assert!(out.contains("ZZNBAR = ZZNBAR - 1"), "{out}");
    }

    #[test]
    fn selfsched_do_matches_the_papers_expansion_shape() {
        let src = "ZZFORCE(M, NP, ME)\nZZSELFSCHEDDO(100, K, START, LAST, INCR)\nC LOOPBODY\nZZENDSELFSCHEDDO(100)";
        let out = expand(src);
        // The structural landmarks of the §4.2 listing, in order:
        let landmarks = [
            "lock(BARWIN)",
            "IF (ZZNBAR .EQ. 0) THEN",
            "K_shared = START",
            "ZZNBAR = ZZNBAR + 1",
            "IF (ZZNBAR .EQ. NP) THEN",
            "unlock(BARWOT)",
            "unlock(BARWIN)",
            "100    lock(LOOP100)",
            "K = K_shared",
            "K_shared = K + INCR",
            "unlock(LOOP100)",
            "C LOOPBODY",
            "GO TO 100",
            "lock(BARWOT)",
            "ZZNBAR = ZZNBAR - 1",
        ];
        let mut pos = 0;
        for lm in landmarks {
            let found = out[pos..]
                .find(lm)
                .unwrap_or_else(|| panic!("landmark `{lm}` missing or out of order in:\n{out}"));
            pos += found + lm.len();
        }
    }

    #[test]
    fn selfsched_records_its_environment_variables() {
        let mut m4 = engine();
        m4.expand("ZZFORCE(M, NP, ME)\nZZSELFSCHEDDO(100, K, 1, 10, 1)\nZZENDSELFSCHEDDO(100)")
            .unwrap();
        assert!(m4.recorded("envlocks").contains(&"LOOP100".to_string()));
        assert!(m4.recorded("envints").contains(&"K_shared".to_string()));
    }

    #[test]
    fn chunked_selfsched_do_claims_and_walks_a_chunk() {
        let src = "ZZFORCE(M, NP, ME)\nZZSELFSCHEDDOC(100, K, `1', `N', `1', `4')\nC LOOPBODY\nZZENDSELFSCHEDDO(100)";
        let out = expand(src);
        let landmarks = [
            "lock(BARWIN)",
            "K_shared = 1",
            // claim 4 indices under the loop lock
            "100    lock(LOOP100)",
            "ZZV100 = K_shared",
            "K_shared = ZZV100 + (4)*(1)",
            "unlock(LOOP100)",
            "ZZC100 = 0",
            "971 CONTINUE",
            "K = ZZV100 + ZZC100*(1)",
            "C LOOPBODY",
            // walk the chunk, then go claim another
            "ZZC100 = ZZC100 + 1",
            "IF (ZZC100 .LT. (4)) GO TO 971",
            "GO TO 100",
            "lock(BARWOT)",
        ];
        let mut pos = 0;
        for lm in landmarks {
            let found = out[pos..]
                .find(lm)
                .unwrap_or_else(|| panic!("landmark `{lm}` missing or out of order in:\n{out}"));
            pos += found + lm.len();
        }
    }

    #[test]
    fn guided_selfsched_do_tapers_its_chunk() {
        let src = "ZZFORCE(M, NP, ME)\nZZSELFSCHEDDOG(9, K, `1', `N', `1')\nC LOOPBODY\nZZENDSELFSCHEDDO(9)";
        let out = expand(src);
        // chunk computed from the remaining trips under the lock
        assert!(out.contains("ZZR9 = (((N) - ZZV9) + (1)) / (1)"), "{out}");
        assert!(out.contains("ZZK9 = MAX(1, ZZR9 / (2*NP))"), "{out}");
        assert!(out.contains("K_shared = ZZV9 + ZZK9*(1)"), "{out}");
        assert!(out.contains("IF (ZZC9 .LT. ZZK9) GO TO 971"), "{out}");
        assert!(out.contains("GO TO 9"), "{out}");
    }

    #[test]
    fn mixed_selfsched_flavours_each_get_their_own_epilogue() {
        // A plain loop following a chunked one must keep the plain §4.2
        // epilogue: the kind marker is per-label.
        let src = "ZZFORCE(M, NP, ME)\n\
                   ZZSELFSCHEDDOC(100, K, `1', `N', `1', `4')\nC B1\nZZENDSELFSCHEDDO(100)\n\
                   ZZSELFSCHEDDO(200, J, `1', `N', `1')\nC B2\nZZENDSELFSCHEDDO(200)";
        let out = expand(src);
        assert!(out.contains("IF (ZZC100 .LT. (4)) GO TO 971"), "{out}");
        // the plain loop's epilogue has no chunk counter
        assert!(!out.contains("ZZC200"), "{out}");
        assert!(out.contains("GO TO 200"), "{out}");
    }

    #[test]
    fn presched_do_distributes_cyclically() {
        let src = "ZZFORCE(M, NP, ME)\nZZPRESCHEDDO(10, I, 1, N, 1)\nC BODY\nZZENDPRESCHEDDO(10)";
        let out = expand(src);
        assert!(out.contains("I = (1) + ME*(1)"), "{out}");
        assert!(out.contains("I = I + NP*(1)"), "{out}");
        assert!(out.contains("GO TO 10"), "{out}");
        // exit label generated and used consistently
        let exit_label: Vec<&str> = out.lines().filter(|l| l.contains("GO TO 99")).collect();
        assert_eq!(exit_label.len(), 1, "{out}");
        // loop ends with a full barrier
        assert!(out.contains("lock(BARWOT)"), "{out}");
    }

    #[test]
    fn critical_sections_lock_and_unlock_the_named_variable() {
        let out =
            expand("ZZFORCE(M, NP, ME)\nZZCRITICAL(LCK)\n      X = X + 1\nZZENDCRITICAL(LCK)");
        assert!(out.contains("lock(LCK)"), "{out}");
        assert!(out.contains("unlock(LCK)"), "{out}");
    }

    #[test]
    fn end_critical_without_name_uses_the_open_one() {
        let out = expand("ZZFORCE(M, NP, ME)\nZZCRITICAL(LCK)\n      X = X + 1\nZZENDCRITICAL()");
        assert!(out.contains("unlock(LCK)"), "{out}");
    }

    #[test]
    fn produce_consume_defer_to_the_machine_layer() {
        let out = expand("ZZPRODUCE(C, K + 1)\nZZCONSUME(C, T)\nZZVOID(C)\nZZCOPYF(C, T)");
        assert!(out.contains("zzprod(C, K + 1)"), "{out}");
        assert!(out.contains("zzcons(C, T)"), "{out}");
        assert!(out.contains("zzvoid(C)"), "{out}");
        assert!(out.contains("zzcopyf(C, T)"), "{out}");
    }

    #[test]
    fn presched_pcase_assigns_sections_cyclically() {
        let src =
            "ZZFORCE(M, NP, ME)\nZZPCASE(P)\nZZUSECT\nC S1\nZZCSECT(N .GT. 0)\nC S2\nZZENDPCASE";
        let out = expand(src);
        assert!(out.contains("ZZPSEC = -1"), "{out}");
        assert_eq!(
            out.matches("IF (MOD(ZZPSEC, NP) .EQ. ME) THEN").count(),
            2,
            "{out}"
        );
        assert!(out.contains("IF (N .GT. 0) THEN"), "{out}");
        // both sections closed + final barrier
        assert!(out.matches("END IF").count() >= 4, "{out}");
        assert!(out.contains("lock(BARWOT)"), "{out}");
    }

    #[test]
    fn selfsched_pcase_claims_through_a_locked_counter() {
        let src = "ZZFORCE(M, NP, ME)\nZZPCASE(S)\nZZUSECT\nC S1\nZZUSECT\nC S2\nZZENDPCASE";
        let out = expand(src);
        assert!(out.contains("ZZNXT = ZZPC"), "{out}");
        assert!(out.contains("IF (ZZPSEC .EQ. ZZNXT) THEN"), "{out}");
        // counter initialized by the first arriver under BARWIN
        assert!(out.contains("IF (ZZNBAR .EQ. 0) THEN"), "{out}");
        // claim happens at entry and after each executed section
        assert!(out.matches("ZZNXT = ZZPC").count() >= 3, "{out}");
    }

    #[test]
    fn declarations_emit_fortran_and_record_metadata() {
        let mut m4 = engine();
        let out = m4
            .expand("ZZFORCE(M, NP, ME)\nZZSHARED(INTEGER, `TOTAL, A(10,10)')\nZZASYNC(INTEGER, `C')\nZZPRIVATE(REAL, `X')")
            .unwrap();
        assert!(out.contains("INTEGER TOTAL, A(10,10)"), "{out}");
        assert!(out.contains("INTEGER C"), "{out}");
        assert!(out.contains("REAL X"), "{out}");
        let decls = m4.recorded("decls");
        assert!(
            decls.contains(&"M|shared|INTEGER|TOTAL".to_string()),
            "{decls:?}"
        );
        assert!(decls.contains(&"M|shared|INTEGER|A(10,10)".to_string()));
        assert!(decls.contains(&"M|async|INTEGER|C".to_string()));
        assert!(decls.contains(&"M|private|REAL|X".to_string()));
    }

    #[test]
    fn join_closes_the_unit() {
        let out = expand("ZZJOIN");
        assert!(out.contains("RETURN"));
        assert!(out.contains("END"));
    }

    #[test]
    fn units_are_recorded_in_order() {
        let mut m4 = engine();
        m4.expand("ZZFORCE(MAIN, NP, ME)\nZZJOIN\nZZFORCESUB(WORK, `A', NP, ME)\nZZJOIN")
            .unwrap();
        assert_eq!(
            m4.recorded("units"),
            &["MAIN".to_string(), "WORK".to_string()]
        );
    }

    #[test]
    fn forcesub_with_args_emits_parameter_list() {
        let out = expand("ZZFORCESUB(WORK, `A, N', NP, ME)");
        assert!(out.contains("SUBROUTINE WORK(A, N)"), "{out}");
        let out = expand("ZZFORCESUB(NOP, `', NP, ME)");
        assert!(out.contains("SUBROUTINE NOP\n"), "{out}");
    }

    #[test]
    fn enddecl_emits_the_env_marker_for_the_unit() {
        let out = expand("ZZFORCE(MAIN, NP, ME)\nZZENDDECL");
        assert!(out.contains("C*ZZENVDECL*MAIN"), "{out}");
    }
}
