//! # force-prep — the Force preprocessor
//!
//! The two-level macro implementation of The Force (§4.2–4.3 of Jordan,
//! Benten, Alaghband & Jakob, ICPP 1989): a sed-like phase-1 translator
//! ([`sedpass`]), a from-scratch m4-subset macro processor ([`m4`]), the
//! machine-independent statement-macro layer ([`macros`]), six
//! machine-dependent macro sets ([`machdep_macros`]), and the pipeline
//! that chains them and generates the machine-dependent driver
//! ([`pipeline`]).
//!
//! ```
//! use force_prep::pipeline::preprocess;
//! use force_machdep::MachineId;
//!
//! let source = "\
//!       Force MAIN of NP ident ME
//!       Shared INTEGER TOTAL
//!       End declarations
//!       Barrier
//!       TOTAL = 0
//!       End barrier
//!       Join
//! ";
//! let program = preprocess(source, MachineId::EncoreMultimax).unwrap();
//! assert!(program.code.contains("CALL ZZTSLCK(BARWIN)"));
//! // The same source ports to the HEP by re-running the pipeline:
//! let hep = preprocess(source, MachineId::Hep).unwrap();
//! assert!(hep.code.contains("CALL ZZFELCK(BARWIN)"));
//! ```

pub mod m4;
pub mod machdep_macros;
pub mod macros;
pub mod pipeline;
pub mod sedpass;

pub use pipeline::{
    clear_expansion_cache, expansion_cache_len, expansion_cache_stats, pass_counts, preprocess,
    preprocess_cached, CompiledPayload, DeclInfo, ExpandedProgram, PassCounts, PrepError, VarClass,
};
