//! Level 2 — the machine-dependent macro sets (§4.1).
//!
//! "The following is a list of the machine dependent macros, and these are
//! the only ones we use to implement all higher level language
//! constructs."  One macro set per machine defines:
//!
//! * `lock(var)` / `unlock(var)` — the generic lock operations, mapped to
//!   the vendor primitive: test&set (`ZZTSLCK`) on Sequent, Encore and
//!   Alliant; operating-system locks (`ZZOSLCK`) on the Cray-2; combined
//!   spin-then-OS locks (`ZZCBLCK`) on the Flex/32; hardware full/empty
//!   accesses (`ZZFELCK`) on the HEP;
//! * `zzprod` / `zzcons` / `zzvoid` / `zzcopyf` — the asynchronous-variable
//!   operations: the two-lock protocol of §4.2 everywhere except the HEP,
//!   which maps them straight onto its hardware full/empty cells
//!   (`ZZHPRD`/`ZZHCON`/`ZZHVD`/`ZZHCPY`).
//!
//! The mnemonic encodes the mechanism, so the interpreter can verify that
//! code preprocessed for machine X is actually running on machine X — the
//! reason a Force binary, unlike a Force *source*, is not portable.

use force_machdep::{LockKind, MachineId, MachineSpec};

use crate::m4::M4;

/// The intrinsic call names for each vendor lock kind: `(lock, unlock)`.
pub fn lock_mnemonics(kind: LockKind) -> (&'static str, &'static str) {
    match kind {
        LockKind::Spin => ("ZZTSLCK", "ZZTSUNL"),
        LockKind::Syscall => ("ZZOSLCK", "ZZOSUNL"),
        LockKind::Combined => ("ZZCBLCK", "ZZCBUNL"),
        LockKind::FullEmpty => ("ZZFELCK", "ZZFEUNL"),
    }
}

/// The spawn intrinsic name for each machine's process-creation model.
pub fn spawn_mnemonic(id: MachineId) -> &'static str {
    use force_machdep::ProcessModel::*;
    match MachineSpec::of(id).process_model {
        ForkJoinCopy => "ZZFORKJ",
        SharedDataFork => "ZZSFORK",
        SpawnByCall => "ZZSPAWN",
    }
}

/// Install machine `id`'s macro set into an m4 engine (the second-pass
/// engine, run over the level-1 output).
pub fn install_machine_macros(m4: &mut M4, id: MachineId) {
    let spec = MachineSpec::of(id);
    let (lck, unl) = lock_mnemonics(spec.vendor_locks);
    m4.define("lock", &format!("CALL {lck}($1)"));
    m4.define("unlock", &format!("CALL {unl}($1)"));

    if spec.hardware_fullempty {
        // HEP: asynchronous variables live directly on hardware full/empty
        // cells; no auxiliary locks exist at all.
        m4.define("zzprod", "CALL ZZHPRD($1, $2)");
        m4.define("zzcons", "CALL ZZHCON($1, $2)");
        m4.define("zzvoid", "CALL ZZHVD($1)");
        m4.define("zzcopyf", "CALL ZZHCPY($1, $2)");
        m4.define("zzisfull", "ZZHISF($1)");
    } else {
        // Everyone else: the two-lock (E, F) protocol of §4.2.  The E/F
        // lock names derive from the *variable* name so an asynchronous
        // array element `C(I)` uses `CZZE(I)`/`CZZF(I)` — one lock pair
        // per element, the scarce-lock pressure §4.1.3 warns about.
        // empty = E locked, F unlocked;  full = F locked, E unlocked.
        m4.define(
            "zzprod",
            "lock(zzconcat(zzname($1), `ZZF')zzsubs($1))
      $1 = $2
      unlock(zzconcat(zzname($1), `ZZE')zzsubs($1))",
        );
        m4.define(
            "zzcons",
            "lock(zzconcat(zzname($1), `ZZE')zzsubs($1))
      $2 = $1
      unlock(zzconcat(zzname($1), `ZZF')zzsubs($1))",
        );
        // Void must work from any state; its try-lock dance is a runtime
        // service on every machine.
        m4.define(
            "zzvoid",
            "CALL ZZVOIDL(zzconcat(zzname($1), `ZZE')zzsubs($1), zzconcat(zzname($1), `ZZF')zzsubs($1))",
        );
        // Copy reads a full variable and leaves it full: hold E briefly.
        m4.define(
            "zzcopyf",
            "lock(zzconcat(zzname($1), `ZZE')zzsubs($1))
      $2 = $1
      unlock(zzconcat(zzname($1), `ZZE')zzsubs($1))",
        );
        // Testing the state reads the E lock: full = E unlocked.
        m4.define("zzisfull", "ZZISFL(zzconcat(zzname($1), `ZZE')zzsubs($1))");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expand_on(id: MachineId, src: &str) -> String {
        let mut m4 = M4::new();
        install_machine_macros(&mut m4, id);
        m4.expand(src).unwrap()
    }

    #[test]
    fn each_machine_maps_lock_to_its_vendor_primitive() {
        let cases = [
            (MachineId::SequentBalance, "CALL ZZTSLCK(BARWIN)"),
            (MachineId::EncoreMultimax, "CALL ZZTSLCK(BARWIN)"),
            (MachineId::AlliantFx8, "CALL ZZTSLCK(BARWIN)"),
            (MachineId::Cray2, "CALL ZZOSLCK(BARWIN)"),
            (MachineId::Flex32, "CALL ZZCBLCK(BARWIN)"),
            (MachineId::Hep, "CALL ZZFELCK(BARWIN)"),
        ];
        for (id, expect) in cases {
            let out = expand_on(id, "      lock(BARWIN)");
            assert_eq!(out.trim(), expect, "{}", id.name());
        }
    }

    #[test]
    fn unlock_mnemonics_match() {
        assert!(expand_on(MachineId::Cray2, "      unlock(X)").contains("CALL ZZOSUNL(X)"));
        assert!(expand_on(MachineId::Hep, "      unlock(X)").contains("CALL ZZFEUNL(X)"));
    }

    #[test]
    fn hep_produce_goes_to_hardware() {
        let out = expand_on(MachineId::Hep, "      zzprod(C, K + 1)");
        assert_eq!(out.trim(), "CALL ZZHPRD(C, K + 1)");
        let out = expand_on(MachineId::Hep, "      zzcons(C, T)");
        assert_eq!(out.trim(), "CALL ZZHCON(C, T)");
    }

    #[test]
    fn other_machines_use_the_two_lock_protocol() {
        let out = expand_on(MachineId::EncoreMultimax, "      zzprod(C, K + 1)");
        // Lock F, write, unlock E — and the inner lock/unlock rescan into
        // the vendor calls.
        assert!(out.contains("CALL ZZTSLCK(CZZF)"), "{out}");
        assert!(out.contains("C = K + 1"), "{out}");
        assert!(out.contains("CALL ZZTSUNL(CZZE)"), "{out}");

        let out = expand_on(MachineId::Cray2, "      zzcons(C, T)");
        assert!(out.contains("CALL ZZOSLCK(CZZE)"), "{out}");
        assert!(out.contains("T = C"), "{out}");
        assert!(out.contains("CALL ZZOSUNL(CZZF)"), "{out}");
    }

    #[test]
    fn void_is_a_runtime_service_off_hep() {
        let out = expand_on(MachineId::Flex32, "      zzvoid(C)");
        assert_eq!(out.trim(), "CALL ZZVOIDL(CZZE, CZZF)");
        let out = expand_on(MachineId::Hep, "      zzvoid(C)");
        assert_eq!(out.trim(), "CALL ZZHVD(C)");
    }

    #[test]
    fn copy_holds_e_briefly_and_leaves_full() {
        let out = expand_on(MachineId::SequentBalance, "      zzcopyf(C, T)");
        assert!(out.contains("CALL ZZTSLCK(CZZE)"), "{out}");
        assert!(out.contains("T = C"), "{out}");
        assert!(out.contains("CALL ZZTSUNL(CZZE)"), "{out}");
        assert!(!out.contains("CZZF"), "copy must not touch F: {out}");
    }

    #[test]
    fn plain_fortran_is_untouched_by_level_two() {
        let src = "      TOTAL = TOTAL + K\n      IF (X .GT. 0) GO TO 10\n";
        assert_eq!(expand_on(MachineId::Cray2, src), src);
    }

    #[test]
    fn spawn_mnemonics_follow_the_process_model() {
        assert_eq!(spawn_mnemonic(MachineId::Hep), "ZZSPAWN");
        assert_eq!(spawn_mnemonic(MachineId::AlliantFx8), "ZZSFORK");
        assert_eq!(spawn_mnemonic(MachineId::EncoreMultimax), "ZZFORKJ");
        assert_eq!(spawn_mnemonic(MachineId::SequentBalance), "ZZFORKJ");
        assert_eq!(spawn_mnemonic(MachineId::Cray2), "ZZFORKJ");
        assert_eq!(spawn_mnemonic(MachineId::Flex32), "ZZFORKJ");
    }
}
