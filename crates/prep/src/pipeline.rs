//! The complete preprocessing pipeline — §4.3 "Implementation Structure".
//!
//! "In a UNIX environment, the compilation of Force programs proceeds in
//! three steps: The stream editor sed translates the Force syntax into
//! parameterized function macros.  Then the macro processor m4 replaces
//! the function macros with Fortran code and the language extensions
//! supporting parallel programming.  This replacement occurs in two
//! steps, as described above.  The machine dependent driver module is put
//! at the beginning of the code."
//!
//! [`preprocess`] runs exactly that pipeline:
//!
//! 1. [`crate::sedpass::sed_pass`] — Force syntax → `ZZ…(args)` calls;
//! 2. m4 pass 1 with the machine-independent statement macros
//!    ([`crate::macros`]) → the *intermediate form* (Fortran + `lock()`,
//!    `unlock()`, `zzprod()` … calls; this is the form shown in the
//!    paper's §4.2 listing and is kept for the golden test);
//! 3. environment-declaration injection — the preprocessor now knows every
//!    loop lock, shared index, Pcase counter and critical lock, and
//!    replaces each unit's `C*ZZENVDECL*` marker with the shared
//!    environment COMMON (the role the generated startup routines play on
//!    the real ports);
//! 4. m4 pass 2 with machine `M`'s macro set
//!    ([`crate::machdep_macros`]) → vendor primitives;
//! 5. the machine-dependent **driver** is generated and put at the
//!    beginning of the code.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use force_machdep::{MachineId, MachineSpec, SharingModelId};

use crate::m4::{M4Error, M4};
use crate::machdep_macros::{install_machine_macros, spawn_mnemonic};
use crate::macros::install_statement_macros;
use crate::sedpass::{sed_pass, SedError};

/// The Force variable classification (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarClass {
    /// Uniformly shared among all processes.
    Shared,
    /// Strictly private to a single process.
    Private,
    /// Shared with a full/empty state.
    Async,
}

/// One declared Force variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeclInfo {
    /// Program unit that declared it.
    pub unit: String,
    /// Force storage class.
    pub class: VarClass,
    /// Fortran type (`INTEGER`, `REAL`, `LOGICAL`).
    pub ty: String,
    /// Variable name (dimensions stripped).
    pub name: String,
    /// Array dimensions (empty for scalars).  Must be integer literals.
    pub dims: Vec<usize>,
}

impl DeclInfo {
    /// Total storage in 64-bit words.
    pub fn words(&self) -> usize {
        self.dims.iter().product::<usize>().max(1)
    }
}

/// Preprocessing errors.
#[derive(Debug)]
pub enum PrepError {
    /// Phase-1 (sed) error.
    Sed(SedError),
    /// Macro-expansion error.
    M4(M4Error),
    /// Structural problem in the Force program.
    Semantic(String),
}

impl std::fmt::Display for PrepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrepError::Sed(e) => write!(f, "sed pass: {e}"),
            PrepError::M4(e) => write!(f, "macro expansion: {e}"),
            PrepError::Semantic(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for PrepError {}

impl From<SedError> for PrepError {
    fn from(e: SedError) -> Self {
        PrepError::Sed(e)
    }
}

impl From<M4Error> for PrepError {
    fn from(e: M4Error) -> Self {
        PrepError::M4(e)
    }
}

/// An opaque, set-once slot for a downstream compiler's artifact.
///
/// The expansion cache ([`preprocess_cached`]) is keyed by *(source
/// hash, machine)* and hands out the same resident
/// [`ExpandedProgram`] by `Arc` on every hit; anything attached here
/// rides along, so a back end that compiles the expanded code (the
/// `force-fortran` bytecode compiler) gets compiled-unit caching under
/// the same key without the preprocessor depending on it.  The slot is
/// type-erased — the preprocessor neither knows nor cares what is
/// stored — and write-once: concurrent initializers race benignly (the
/// first stored value wins; both are valid for identical expansions).
#[derive(Default)]
pub struct CompiledPayload {
    slot: OnceLock<Arc<dyn std::any::Any + Send + Sync>>,
}

impl CompiledPayload {
    /// The stored artifact, if one of type `T` has been attached.
    pub fn get<T: Send + Sync + 'static>(&self) -> Option<Arc<T>> {
        self.slot
            .get()
            .cloned()
            .and_then(|a| a.downcast::<T>().ok())
    }

    /// Attach an artifact if the slot is still empty, then return the
    /// resident one (ours, or a racing winner's — interchangeable for a
    /// deterministic compiler).  Returns `value` itself if the resident
    /// artifact has a different type (a programming error, but one that
    /// must not turn into a wrong-program execution).
    pub fn attach<T: Send + Sync + 'static>(&self, value: Arc<T>) -> Arc<T> {
        let _ = self
            .slot
            .set(Arc::clone(&value) as Arc<dyn std::any::Any + Send + Sync>);
        self.get().unwrap_or(value)
    }
}

impl Clone for CompiledPayload {
    fn clone(&self) -> Self {
        let slot = OnceLock::new();
        if let Some(v) = self.slot.get() {
            let _ = slot.set(Arc::clone(v));
        }
        CompiledPayload { slot }
    }
}

impl std::fmt::Debug for CompiledPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self.slot.get() {
            Some(_) => "CompiledPayload(set)",
            None => "CompiledPayload(empty)",
        })
    }
}

/// The result of preprocessing a Force program for one machine.
#[derive(Debug, Clone)]
pub struct ExpandedProgram {
    /// The machine the program was preprocessed for.
    pub machine: MachineId,
    /// The final code: driver first, then the expanded program units.
    pub code: String,
    /// The machine-independent intermediate form (after m4 pass 1) —
    /// the form of the paper's §4.2 listing.
    pub intermediate: String,
    /// The main program unit name (`Force` header).
    pub main_unit: String,
    /// All program unit names, main first.
    pub units: Vec<String>,
    /// The shared-environment cells in COMMON /ZZFENV/ order.
    pub env_cells: Vec<String>,
    /// Which environment cells are lock variables (initialized by the
    /// driver; `BARWOT` is created locked).
    pub env_locks: Vec<String>,
    /// The subset of `env_locks` that are *user* locks (critical
    /// sections): allocated through the machine's scarce-lock pool, while
    /// the implementation's own locks come from a dedicated reserve.
    pub user_locks: Vec<String>,
    /// Every Force variable declaration.
    pub decls: Vec<DeclInfo>,
    /// Names of asynchronous variables.
    pub async_vars: Vec<String>,
    /// Externally compiled Force subroutines (`Externf`).
    pub externf: Vec<String>,
    /// Set-once slot where a back end caches its compiled form of
    /// [`code`](Self::code); see [`CompiledPayload`].
    pub payload: CompiledPayload,
}

impl ExpandedProgram {
    /// All shared (non-async) variable declarations.
    pub fn shared_decls(&self) -> impl Iterator<Item = &DeclInfo> {
        self.decls.iter().filter(|d| d.class == VarClass::Shared)
    }

    /// All asynchronous variable declarations.
    pub fn async_decls(&self) -> impl Iterator<Item = &DeclInfo> {
        self.decls.iter().filter(|d| d.class == VarClass::Async)
    }
}

/// Cumulative text-transformation pass counts for this process — one
/// `sed` tick and two `m4` ticks per [`preprocess`] call, and none for a
/// [`preprocess_cached`] hit.  The counters exist so cache behavior is
/// *observable*: a test (or the reproduce harness) can assert that the
/// hit path did zero pipeline work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassCounts {
    /// Completed sed (stream-editor) passes.
    pub sed: u64,
    /// Completed m4 macro-expansion passes (two per full pipeline run).
    pub m4: u64,
}

static SED_PASSES: AtomicU64 = AtomicU64::new(0);
static M4_PASSES: AtomicU64 = AtomicU64::new(0);

/// Snapshot the process-wide [`PassCounts`].
pub fn pass_counts() -> PassCounts {
    PassCounts {
        sed: SED_PASSES.load(Ordering::Relaxed),
        m4: M4_PASSES.load(Ordering::Relaxed),
    }
}

/// Run the full pipeline for `machine`.
pub fn preprocess(source: &str, machine: MachineId) -> Result<ExpandedProgram, PrepError> {
    // Step 1: sed.
    let macro_form = sed_pass(source)?;
    SED_PASSES.fetch_add(1, Ordering::Relaxed);

    // Step 2: m4 pass 1 (machine independent).
    let mut l1 = M4::new();
    install_statement_macros(&mut l1);
    let intermediate = l1.expand(&macro_form)?;
    M4_PASSES.fetch_add(1, Ordering::Relaxed);

    // Bookkeeping gathered during pass 1.
    let units: Vec<String> = l1.recorded("units").to_vec();
    if units.is_empty() {
        return Err(PrepError::Semantic(
            "no Force or Forcesub unit found in the source".into(),
        ));
    }
    let main_unit = units[0].clone();
    let decls = parse_decls(l1.recorded("decls"))?;
    let async_vars: Vec<String> = decls
        .iter()
        .filter(|d| d.class == VarClass::Async)
        .map(|d| d.name.clone())
        .collect();
    for d in decls.iter().filter(|d| d.class == VarClass::Async) {
        if d.dims.len() > 1 {
            return Err(PrepError::Semantic(format!(
                "asynchronous variable {} may have at most one dimension in this implementation",
                d.name
            )));
        }
    }
    let externf: Vec<String> = l1.recorded("externf").to_vec();

    let spec = MachineSpec::of(machine);

    // The shared environment: barrier variables first, then everything the
    // statement macros recorded, then the asynchronous-variable locks
    // (two per variable, except on the HEP where the hardware holds the
    // state).
    let mut env_cells: Vec<String> = vec!["ZZNBAR".into(), "BARWIN".into(), "BARWOT".into()];
    let mut env_locks: Vec<String> = vec!["BARWIN".into(), "BARWOT".into()];
    for l in l1.recorded("envlocks") {
        env_cells.push(l.clone());
        env_locks.push(l.clone());
    }
    // User lock variables (critical sections): also environment cells,
    // but allocated through the machine's (possibly scarce) lock pool
    // rather than from the implementation's dedicated reserve.
    let user_locks: Vec<String> = l1.recorded("userlocks").to_vec();
    for l in &user_locks {
        env_cells.push(l.clone());
        env_locks.push(l.clone());
    }
    for v in l1.recorded("envints") {
        env_cells.push(v.clone());
    }
    let async_sizes: Vec<(String, String, usize)> = decls
        .iter()
        .filter(|d| d.class == VarClass::Async)
        .map(|d| (d.name.clone(), d.ty.clone(), d.words()))
        .collect();
    if !spec.hardware_fullempty {
        // One E/F lock pair per *element* — arrays get lock arrays.
        for (v, _ty, words) in &async_sizes {
            for suffix in ["ZZE", "ZZF"] {
                let name = if *words > 1 {
                    format!("{v}{suffix}({words})")
                } else {
                    format!("{v}{suffix}")
                };
                env_cells.push(name.clone());
                env_locks.push(name);
            }
        }
    }

    // Step 3: inject the environment declarations at each unit's marker.
    let env_decl_text = env_declaration(&env_cells, l1.recorded("privints"));
    let mut injected = String::with_capacity(intermediate.len() + 256);
    for line in intermediate.lines() {
        if let Some(rest) = line.trim().strip_prefix("C*ZZENVDECL*") {
            let unit = rest.trim();
            injected.push_str(&format!("C --- parallel environment for {unit} ---\n"));
            injected.push_str(&env_decl_text);
        } else {
            injected.push_str(line);
            injected.push('\n');
        }
    }

    // Step 4: m4 pass 2 (machine dependent).
    let mut l2 = M4::new();
    install_machine_macros(&mut l2, machine);
    let expanded = l2.expand(&injected)?;
    M4_PASSES.fetch_add(1, Ordering::Relaxed);

    // Step 5: the machine-dependent driver module at the beginning.
    let driver = generate_driver(
        &spec,
        &main_unit,
        &env_locks,
        &user_locks,
        &async_sizes,
        &env_decl_text,
    );
    let code = format!("{driver}{expanded}");

    Ok(ExpandedProgram {
        machine,
        code,
        intermediate,
        main_unit,
        units,
        env_cells,
        env_locks,
        user_locks,
        decls,
        async_vars,
        externf,
        payload: CompiledPayload::default(),
    })
}

/// One resident entry of the expansion cache.  The full source is kept
/// alongside the program so a hash collision degrades to a recompute,
/// never to serving the wrong expansion.
struct CacheEntry {
    source: Arc<str>,
    program: Arc<ExpandedProgram>,
}

static EXPANSION_CACHE: OnceLock<Mutex<HashMap<(u64, MachineId), CacheEntry>>> = OnceLock::new();
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<HashMap<(u64, MachineId), CacheEntry>> {
    EXPANSION_CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn source_hash(source: &str) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    source.hash(&mut h);
    h.finish()
}

/// [`preprocess`] with a process-wide expansion cache keyed by
/// *(source hash, machine personality)*.
///
/// Re-running the same program — or porting it across the six
/// personalities, each of which gets its own entry — skips the sed and
/// both m4 passes entirely on a hit and returns the resident
/// [`ExpandedProgram`] by `Arc`.  The hit path does **zero** pipeline
/// work, observable through [`pass_counts`].  Errors are not cached:
/// a failing source re-runs the pipeline on every call.
pub fn preprocess_cached(
    source: &str,
    machine: MachineId,
) -> Result<Arc<ExpandedProgram>, PrepError> {
    let key = (source_hash(source), machine);
    if let Some(entry) = cache().lock().unwrap().get(&key) {
        if &*entry.source == source {
            CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&entry.program));
        }
    }
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    let program = Arc::new(preprocess(source, machine)?);
    cache().lock().unwrap().insert(
        key,
        CacheEntry {
            source: source.into(),
            program: Arc::clone(&program),
        },
    );
    Ok(program)
}

/// Process-wide expansion-cache hit and miss counts, in that order.
pub fn expansion_cache_stats() -> (u64, u64) {
    (
        CACHE_HITS.load(Ordering::Relaxed),
        CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Number of resident entries in the expansion cache.
pub fn expansion_cache_len() -> usize {
    cache().lock().unwrap().len()
}

/// Drop every resident expansion (the hit/miss counters are kept).
pub fn clear_expansion_cache() {
    cache().lock().unwrap().clear();
}

/// The `INTEGER` + `COMMON /ZZFENV/` declarations for the environment,
/// plus the private scratch cells every unit gets: the fixed ones, and
/// any per-loop temps the macros recorded (chunked/guided claims).
fn env_declaration(env_cells: &[String], priv_ints: &[String]) -> String {
    let list = env_cells.join(", ");
    let mut scratch = "ZZPSEC, ZZNXT, ZZT, ZZN1, ZZN2".to_string();
    for v in priv_ints {
        scratch.push_str(", ");
        scratch.push_str(v);
    }
    format!("      INTEGER {list}\n      COMMON /ZZFENV/ {list}\n      INTEGER {scratch}\n")
}

/// Generate the machine-dependent driver (§4.1.1): environment
/// initialization, sharing setup, process creation, join.
fn generate_driver(
    spec: &MachineSpec,
    main_unit: &str,
    env_locks: &[String],
    user_locks: &[String],
    async_sizes: &[(String, String, usize)],
    env_decl_text: &str,
) -> String {
    let mut d = String::new();
    d.push_str("      PROGRAM ZZDRIVE\n");
    d.push_str(&format!("C Force driver for the {} \n", spec.id.name()));
    d.push_str(&format!("C process model: {}\n", spec.process_model.name()));
    d.push_str(&format!("C sharing: {}\n", spec.sharing.name()));
    d.push_str(env_decl_text);
    if async_sizes.iter().any(|(_, _, w)| *w > 1) {
        d.push_str("      INTEGER ZZI\n");
    }
    // The driver initializes the asynchronous variables, so it declares
    // them (they are Force shared variables, global by name).
    for (v, ty, words) in async_sizes {
        if *words > 1 {
            d.push_str(&format!("      {ty} {v}({words})\n"));
        } else {
            d.push_str(&format!("      {ty} {v}\n"));
        }
    }
    match spec.sharing {
        SharingModelId::LinkTime => {
            // Sequent: run the startup routines, then "link" (the paper's
            // double-run protocol, collapsed into two driver calls).
            d.push_str("C link-time sharing: startup routines, then the link pass\n");
            d.push_str("      CALL ZZSTRT0\n");
            d.push_str("      CALL ZZLINK\n");
        }
        SharingModelId::RunTimePaged | SharingModelId::PageAligned => {
            // Encore / Alliant: identify shared pages at run time.
            d.push_str("C run-time sharing: identify and pad the shared pages\n");
            d.push_str("      CALL ZZSHPG\n");
        }
        SharingModelId::CompileTime => {
            d.push_str("C compile-time sharing: nothing to set up\n");
        }
    }
    d.push_str("C initialize the parallel environment\n");
    // Implementation locks come from the port's dedicated reserve
    // (ZZINITL/ZZINITK): on scarce-lock machines the implementation must
    // never let a user lock alias its barrier or loop locks, which are
    // held across whole construct episodes.  User locks (ZZINITU) draw
    // from the machine's pool and may alias each other when it runs dry.
    for l in env_locks {
        let base = l.split('(').next().unwrap_or(l);
        if l == "BARWOT" {
            d.push_str("      CALL ZZINITK(BARWOT)\n");
        } else if base.ends_with("ZZE") || base.ends_with("ZZF") {
            // Asynchronous-variable locks are initialized pairwise below.
            continue;
        } else if user_locks.contains(l) {
            d.push_str(&format!("      CALL ZZINITU({l})\n"));
        } else {
            d.push_str(&format!("      CALL ZZINITL({l})\n"));
        }
    }
    d.push_str("      ZZNBAR = 0\n");
    if !async_sizes.is_empty() {
        d.push_str("C initialize asynchronous variables to empty\n");
        let mut label = 9000;
        for (v, _ty, words) in async_sizes {
            if *words > 1 {
                label += 1;
                d.push_str(&format!("      DO {label} ZZI = 1, {words}\n"));
                if spec.hardware_fullempty {
                    d.push_str(&format!("      CALL ZZHVD({v}(ZZI))\n"));
                } else {
                    d.push_str(&format!("      CALL ZZAINI({v}ZZE(ZZI), {v}ZZF(ZZI))\n"));
                }
                d.push_str(&format!("{label}  CONTINUE\n"));
            } else if spec.hardware_fullempty {
                d.push_str(&format!("      CALL ZZHVD({v})\n"));
            } else {
                d.push_str(&format!("      CALL ZZAINI({v}ZZE, {v}ZZF)\n"));
            }
        }
    }
    d.push_str("C create the force of processes and join at program end\n");
    d.push_str(&format!(
        "      CALL {}({main_unit})\n",
        spawn_mnemonic(spec.id)
    ));
    d.push_str("      END\n");
    d
}

/// Parse the `unit|class|type|item` entries of the `decls` list.
fn parse_decls(entries: &[String]) -> Result<Vec<DeclInfo>, PrepError> {
    let mut out = Vec::with_capacity(entries.len());
    for e in entries {
        let mut parts = e.splitn(4, '|');
        let (unit, class, ty, item) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(u), Some(c), Some(t), Some(i)) => (u, c, t, i),
            _ => return Err(PrepError::Semantic(format!("malformed decl entry `{e}`"))),
        };
        let class = match class {
            "shared" => VarClass::Shared,
            "private" => VarClass::Private,
            "async" => VarClass::Async,
            other => {
                return Err(PrepError::Semantic(format!(
                    "unknown storage class `{other}`"
                )))
            }
        };
        let (name, dims) = parse_item(item)?;
        out.push(DeclInfo {
            unit: unit.to_string(),
            class,
            ty: ty.to_string(),
            name,
            dims,
        });
    }
    Ok(out)
}

/// Parse `NAME` or `NAME(d1[,d2])` with literal integer dimensions.
fn parse_item(item: &str) -> Result<(String, Vec<usize>), PrepError> {
    let item = item.trim();
    match item.find('(') {
        None => Ok((item.to_string(), Vec::new())),
        Some(p) => {
            let name = item[..p].trim().to_string();
            let inner = item[p..]
                .strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| {
                    PrepError::Semantic(format!("malformed array declaration `{item}`"))
                })?;
            let mut dims = Vec::new();
            for d in inner.split(',') {
                let n: usize = d.trim().parse().map_err(|_| {
                    PrepError::Semantic(format!(
                        "array dimension `{d}` in `{item}` must be an integer literal"
                    ))
                })?;
                if n == 0 {
                    return Err(PrepError::Semantic(format!(
                        "array dimension must be positive in `{item}`"
                    )));
                }
                dims.push(n);
            }
            Ok((name, dims))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but complete Force program exercising most constructs.
    const PROGRAM: &str = "\
      Force FMAIN of NP ident ME
      Shared INTEGER TOTAL
      Async INTEGER CHAN
      Private INTEGER K, T
      End declarations
      Barrier
      TOTAL = 0
      End barrier
      Selfsched DO 100 K = 1, 10
      Critical LCK
      TOTAL = TOTAL + K
      End critical
100   End selfsched DO
      Produce CHAN = TOTAL
      Consume CHAN into T
      Join
";

    #[test]
    fn cached_preprocessing_does_zero_pipeline_work_on_a_hit() {
        // A source unique to this test so no other test warms the entry.
        let source = PROGRAM.replace("TOTAL", "CTOTAL");
        let first = preprocess_cached(&source, MachineId::AlliantFx8).unwrap();
        let before = pass_counts();
        let again = preprocess_cached(&source, MachineId::AlliantFx8).unwrap();
        let after = pass_counts();
        assert_eq!(after, before, "the hit path must run no sed or m4 pass");
        assert!(
            Arc::ptr_eq(&first, &again),
            "a hit returns the resident expansion, not a copy"
        );
    }

    #[test]
    fn cache_is_keyed_per_machine_personality() {
        let source = PROGRAM.replace("TOTAL", "MTOTAL");
        let mut programs = Vec::new();
        for id in MachineId::all() {
            programs.push(preprocess_cached(&source, id).unwrap());
        }
        // Six personalities, six distinct expansions — porting re-runs
        // the pipeline once per machine, then every re-run is free.
        let before = pass_counts();
        for (id, first) in MachineId::all().into_iter().zip(&programs) {
            let again = preprocess_cached(&source, id).unwrap();
            assert!(Arc::ptr_eq(first, &again), "{}", id.name());
        }
        assert_eq!(pass_counts(), before);
        assert!(programs[0].code != programs[1].code);
    }

    #[test]
    fn cache_misses_on_changed_source() {
        let a = PROGRAM.replace("TOTAL", "XTOTAL");
        let b = PROGRAM.replace("TOTAL", "YTOTAL");
        let pa = preprocess_cached(&a, MachineId::Hep).unwrap();
        let before = pass_counts();
        let pb = preprocess_cached(&b, MachineId::Hep).unwrap();
        let after = pass_counts();
        assert_eq!(after.sed, before.sed + 1, "new source runs the pipeline");
        assert_eq!(after.m4, before.m4 + 2);
        assert!(!Arc::ptr_eq(&pa, &pb));
    }

    #[test]
    fn pipeline_produces_all_metadata() {
        let p = preprocess(PROGRAM, MachineId::EncoreMultimax).unwrap();
        assert_eq!(p.main_unit, "FMAIN");
        assert_eq!(p.units, vec!["FMAIN"]);
        assert!(p.async_vars.contains(&"CHAN".to_string()));
        assert!(p.env_cells.contains(&"LOOP100".to_string()));
        assert!(p.env_cells.contains(&"K_shared".to_string()));
        assert!(p.env_cells.contains(&"CHANZZE".to_string()));
        assert!(p.env_locks.contains(&"LCK".to_string()));
        let shared: Vec<_> = p.shared_decls().map(|d| d.name.as_str()).collect();
        assert_eq!(shared, vec!["TOTAL"]);
    }

    #[test]
    fn hep_asyncs_have_no_lock_cells() {
        let p = preprocess(PROGRAM, MachineId::Hep).unwrap();
        assert!(!p.env_cells.iter().any(|c| c.ends_with("ZZE")));
        assert!(p.code.contains("CALL ZZHVD(CHAN)"), "{}", p.code);
        assert!(p.code.contains("CALL ZZHPRD(CHAN, TOTAL)"), "{}", p.code);
    }

    #[test]
    fn driver_comes_first_and_spawns_the_main_unit() {
        let p = preprocess(PROGRAM, MachineId::Flex32).unwrap();
        assert!(p.code.starts_with("      PROGRAM ZZDRIVE"), "{}", p.code);
        assert!(p.code.contains("CALL ZZFORKJ(FMAIN)"), "{}", p.code);
        assert!(p.code.contains("CALL ZZINITK(BARWOT)"));
        assert!(p.code.contains("CALL ZZINITL(BARWIN)"));
        assert!(p.code.contains("CALL ZZINITL(LOOP100)"));
        assert!(p.code.contains("CALL ZZAINI(CHANZZE, CHANZZF)"));
    }

    #[test]
    fn sequent_driver_runs_the_link_pass() {
        let p = preprocess(PROGRAM, MachineId::SequentBalance).unwrap();
        let strt = p.code.find("CALL ZZSTRT0").expect("startup call");
        let link = p.code.find("CALL ZZLINK").expect("link call");
        let fork = p.code.find("CALL ZZFORKJ").expect("fork call");
        assert!(strt < link && link < fork, "{}", p.code);
    }

    #[test]
    fn encore_driver_sets_up_shared_pages() {
        let p = preprocess(PROGRAM, MachineId::EncoreMultimax).unwrap();
        assert!(p.code.contains("CALL ZZSHPG"));
        let p = preprocess(PROGRAM, MachineId::AlliantFx8).unwrap();
        assert!(p.code.contains("CALL ZZSHPG"));
        assert!(p.code.contains("CALL ZZSFORK(FMAIN)"));
        let p = preprocess(PROGRAM, MachineId::Hep).unwrap();
        assert!(!p.code.contains("CALL ZZSHPG"));
        assert!(p.code.contains("CALL ZZSPAWN(FMAIN)"));
    }

    #[test]
    fn every_unit_gets_the_same_env_common() {
        let src = "\
      Force M of NP ident ME
      Shared INTEGER X
      End declarations
      Join
      Forcesub W of NP ident ME
      End declarations
      Barrier
      End barrier
      Join
";
        let p = preprocess(src, MachineId::Cray2).unwrap();
        let count = p.code.matches("COMMON /ZZFENV/").count();
        // driver + 2 units
        assert_eq!(count, 3, "{}", p.code);
    }

    #[test]
    fn the_intermediate_form_is_machine_independent() {
        let a = preprocess(PROGRAM, MachineId::Hep).unwrap();
        let b = preprocess(PROGRAM, MachineId::Cray2).unwrap();
        assert_eq!(a.intermediate, b.intermediate);
        assert!(a.intermediate.contains("lock(BARWIN)"));
        assert!(
            !a.intermediate.contains("ZZFELCK"),
            "level 1 must not know the machine"
        );
    }

    #[test]
    fn machine_pass_resolves_every_low_level_macro() {
        for id in MachineId::all() {
            let p = preprocess(PROGRAM, id).unwrap();
            for token in ["lock(", "unlock(", "zzprod(", "zzcons(", "zzvoid("] {
                assert!(
                    !p.code.contains(&format!(" {token}")),
                    "{}: unresolved `{token}` in:\n{}",
                    id.name(),
                    p.code
                );
            }
        }
    }

    #[test]
    fn missing_force_header_is_a_semantic_error() {
        let err = preprocess("      X = 1\n", MachineId::Hep).unwrap_err();
        assert!(matches!(err, PrepError::Semantic(_)), "{err}");
    }

    #[test]
    fn one_dimensional_async_arrays_are_accepted() {
        let src = "\
      Force M of NP ident ME
      Async INTEGER C(10)
      End declarations
      Produce C(3) = 7
      Join
";
        let p = preprocess(src, MachineId::EncoreMultimax).unwrap();
        assert!(
            p.env_cells.contains(&"CZZE(10)".to_string()),
            "{:?}",
            p.env_cells
        );
        assert!(
            p.code.contains("CALL ZZAINI(CZZE(ZZI), CZZF(ZZI))"),
            "{}",
            p.code
        );
        assert!(p.code.contains("CALL ZZTSLCK(CZZF(3))"), "{}", p.code);
        let hep = preprocess(src, MachineId::Hep).unwrap();
        assert!(hep.code.contains("CALL ZZHVD(C(ZZI))"), "{}", hep.code);
        assert!(hep.code.contains("CALL ZZHPRD(C(3), 7)"), "{}", hep.code);
    }

    #[test]
    fn two_dimensional_async_arrays_are_rejected() {
        let src = "\
      Force M of NP ident ME
      Async INTEGER C(2,2)
      End declarations
      Join
";
        let err = preprocess(src, MachineId::Hep).unwrap_err();
        assert!(err.to_string().contains("at most one dimension"), "{err}");
    }

    #[test]
    fn bad_dimensions_are_rejected() {
        let src = "\
      Force M of NP ident ME
      Shared INTEGER A(N)
      End declarations
      Join
";
        let err = preprocess(src, MachineId::Hep).unwrap_err();
        assert!(err.to_string().contains("integer literal"), "{err}");
    }

    #[test]
    fn decl_words_are_products_of_dims() {
        let src = "\
      Force M of NP ident ME
      Shared REAL A(10,20), B
      End declarations
      Join
";
        let p = preprocess(src, MachineId::Hep).unwrap();
        let a = p.decls.iter().find(|d| d.name == "A").unwrap();
        assert_eq!(a.words(), 200);
        let b = p.decls.iter().find(|d| d.name == "B").unwrap();
        assert_eq!(b.words(), 1);
    }
}
