//! Machine personalities — the six multiprocessors that hosted the Force.
//!
//! "The Force has been implemented on the HEP, Flex/32, Encore Multimax,
//! Sequent Balance, Alliant FX/8, and Cray-2 multiprocessors." (§2)
//!
//! A [`Machine`] bundles exactly the machine-dependent choices §4.1
//! enumerates: which lock primitive the vendor provides, how shared memory
//! is designated, how processes are created, the page size, whether locks
//! are scarce, and whether full/empty state exists in hardware.  The
//! machine-independent layers (force-core, force-prep, force-fortran)
//! consume only this interface — that separation *is* the paper's
//! portability result.

use std::sync::Arc;

use crate::combined::CombinedLock;
use crate::cost::CostModel;
use crate::fullempty::{FullEmptyState, HepLock};
use crate::linkreg::StartupRegistry;
use crate::lock::{LockHandle, LockKind, LockState};
use crate::lockpool::{LockFactory, LockPool};
use crate::process::ProcessModel;
use crate::sharedmem::{
    CompileTimeSharing, LinkTimeSharing, PageAlignedSharing, RunTimePagedSharing, SharingModel,
    SharingModelId,
};
use crate::spin::SpinLock;
use crate::stats::OpStats;
use crate::syscall_lock::SyscallLock;

/// The six machines of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineId {
    /// Denelcor HEP: hardware full/empty bit per memory cell, process
    /// creation by subroutine call.
    Hep,
    /// Flexible Flex/32: combined spin-then-syscall locks.
    Flex32,
    /// Encore Multimax: run-time shared pages, test&set locks, fork/join.
    EncoreMultimax,
    /// Sequent Balance: link-time sharing (double-run protocol), test&set
    /// locks, fork/join.
    SequentBalance,
    /// Alliant FX/8: shared data segments, page-aligned sharing.
    AlliantFx8,
    /// Cray-2: operating-system locks, locks as a scarce resource.
    Cray2,
}

impl MachineId {
    /// All six machines, in the order the paper lists them.
    pub fn all() -> [MachineId; 6] {
        [
            MachineId::Hep,
            MachineId::Flex32,
            MachineId::EncoreMultimax,
            MachineId::SequentBalance,
            MachineId::AlliantFx8,
            MachineId::Cray2,
        ]
    }

    /// Marketing name.
    pub fn name(self) -> &'static str {
        match self {
            MachineId::Hep => "Denelcor HEP",
            MachineId::Flex32 => "Flexible Flex/32",
            MachineId::EncoreMultimax => "Encore Multimax",
            MachineId::SequentBalance => "Sequent Balance",
            MachineId::AlliantFx8 => "Alliant FX/8",
            MachineId::Cray2 => "Cray-2",
        }
    }

    /// Short lowercase tag used in file names and harness tables.
    pub fn tag(self) -> &'static str {
        match self {
            MachineId::Hep => "hep",
            MachineId::Flex32 => "flex32",
            MachineId::EncoreMultimax => "encore",
            MachineId::SequentBalance => "sequent",
            MachineId::AlliantFx8 => "alliant",
            MachineId::Cray2 => "cray2",
        }
    }

    /// Parse a tag produced by [`tag`](Self::tag).
    pub fn from_tag(tag: &str) -> Option<MachineId> {
        MachineId::all().into_iter().find(|m| m.tag() == tag)
    }
}

/// Static description of one machine's machine-dependent choices.
#[derive(Debug, Clone, Copy)]
pub struct MachineSpec {
    /// Which machine this is.
    pub id: MachineId,
    /// Vendor lock primitive (§4.1.3 taxonomy).
    pub vendor_locks: LockKind,
    /// Shared-memory designation strategy (§4.1.2).
    pub sharing: SharingModelId,
    /// Process creation model (§4.1.1).
    pub process_model: ProcessModel,
    /// Page size in 64-bit words (for the paged sharing models).
    pub page_words: usize,
    /// `Some(n)` if the machine treats locks as a scarce resource with a
    /// pool of `n` physical locks.
    pub lock_pool_capacity: Option<usize>,
    /// Whether full/empty state exists in hardware on every cell.
    pub hardware_fullempty: bool,
    /// A historically plausible processor count, used as the default
    /// force size in portability runs.
    pub historic_nproc: usize,
    /// Simulated cycle costs.
    pub costs: CostModel,
}

impl MachineSpec {
    /// The specification for one of the six machines.
    pub fn of(id: MachineId) -> MachineSpec {
        match id {
            MachineId::Hep => MachineSpec {
                id,
                vendor_locks: LockKind::FullEmpty,
                sharing: SharingModelId::CompileTime,
                process_model: ProcessModel::SpawnByCall,
                page_words: 512,
                lock_pool_capacity: None,
                hardware_fullempty: true,
                historic_nproc: 8,
                costs: CostModel::hep(),
            },
            MachineId::Flex32 => MachineSpec {
                id,
                vendor_locks: LockKind::Combined,
                sharing: SharingModelId::CompileTime,
                process_model: ProcessModel::ForkJoinCopy,
                page_words: 512,
                lock_pool_capacity: None,
                hardware_fullempty: false,
                historic_nproc: 8,
                costs: CostModel::flex(),
            },
            MachineId::EncoreMultimax => MachineSpec {
                id,
                vendor_locks: LockKind::Spin,
                sharing: SharingModelId::RunTimePaged,
                process_model: ProcessModel::ForkJoinCopy,
                page_words: 512,
                lock_pool_capacity: None,
                hardware_fullempty: false,
                historic_nproc: 8,
                costs: CostModel::fork_spin(),
            },
            MachineId::SequentBalance => MachineSpec {
                id,
                vendor_locks: LockKind::Spin,
                sharing: SharingModelId::LinkTime,
                process_model: ProcessModel::ForkJoinCopy,
                page_words: 512,
                lock_pool_capacity: None,
                hardware_fullempty: false,
                historic_nproc: 8,
                costs: CostModel::fork_spin(),
            },
            MachineId::AlliantFx8 => MachineSpec {
                id,
                vendor_locks: LockKind::Spin,
                sharing: SharingModelId::PageAligned,
                process_model: ProcessModel::SharedDataFork,
                page_words: 512,
                lock_pool_capacity: None,
                hardware_fullempty: false,
                historic_nproc: 8,
                costs: CostModel::alliant(),
            },
            MachineId::Cray2 => MachineSpec {
                id,
                vendor_locks: LockKind::Syscall,
                sharing: SharingModelId::CompileTime,
                process_model: ProcessModel::ForkJoinCopy,
                page_words: 512,
                lock_pool_capacity: Some(32),
                hardware_fullempty: false,
                historic_nproc: 4,
                costs: CostModel::cray(),
            },
        }
    }
}

/// A live machine personality: spec + operation accounting + lock pool +
/// sharing model.  Cheap to share (`Arc`) across the force.
pub struct Machine {
    spec: MachineSpec,
    stats: Arc<OpStats>,
    pool: Option<LockPool>,
    sharing: Box<dyn SharingModel>,
    registry: Option<Arc<StartupRegistry>>,
}

impl Machine {
    /// Boot a machine personality.
    pub fn new(id: MachineId) -> Arc<Machine> {
        let spec = MachineSpec::of(id);
        let stats = Arc::new(OpStats::new());
        let registry = match spec.sharing {
            SharingModelId::LinkTime => Some(Arc::new(StartupRegistry::new())),
            _ => None,
        };
        let sharing: Box<dyn SharingModel> = match spec.sharing {
            SharingModelId::CompileTime => Box::new(CompileTimeSharing),
            SharingModelId::LinkTime => Box::new(LinkTimeSharing::new(Arc::clone(
                registry.as_ref().expect("link-time registry"),
            ))),
            SharingModelId::RunTimePaged => Box::new(RunTimePagedSharing::new(spec.page_words)),
            SharingModelId::PageAligned => Box::new(PageAlignedSharing::new(spec.page_words)),
        };
        let pool = spec.lock_pool_capacity.map(|cap| {
            let st = Arc::clone(&stats);
            let kind = spec.vendor_locks;
            let factory: LockFactory = Arc::new(move |init| make_raw_lock(kind, init, &st));
            LockPool::new(cap, factory, Arc::clone(&stats))
        });
        Arc::new(Machine {
            spec,
            stats,
            pool,
            sharing,
            registry,
        })
    }

    /// Boot every machine.
    pub fn all() -> Vec<Arc<Machine>> {
        MachineId::all().into_iter().map(Machine::new).collect()
    }

    /// The machine's identity.
    pub fn id(&self) -> MachineId {
        self.spec.id
    }

    /// The machine's static specification.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Operation counters for this machine instance.
    pub fn stats(&self) -> &Arc<OpStats> {
        &self.stats
    }

    /// Allocate a logical lock using the vendor primitive, honoring lock
    /// scarcity (a Cray-2 allocation beyond the pool aliases a slot).
    pub fn make_lock(&self, initial: LockState) -> LockHandle {
        match &self.pool {
            Some(pool) => pool.allocate(initial),
            None => make_raw_lock(self.spec.vendor_locks, initial, &self.stats),
        }
    }

    /// Allocate a lock bypassing the scarcity pool — used by the
    /// implementation's own environment locks, which the port reserves
    /// ahead of user asynchronous variables.
    pub fn make_dedicated_lock(&self, initial: LockState) -> LockHandle {
        make_raw_lock(self.spec.vendor_locks, initial, &self.stats)
    }

    /// Hardware full/empty cell state.  Only the HEP has this in hardware;
    /// other machines must emulate full/empty with two locks (§4.2), which
    /// is the caller's job — hence `None` here.
    pub fn hardware_fullempty(&self, initially_full: bool) -> Option<FullEmptyState> {
        if self.spec.hardware_fullempty {
            Some(if initially_full {
                FullEmptyState::new_full(Arc::clone(&self.stats))
            } else {
                FullEmptyState::new_empty(Arc::clone(&self.stats))
            })
        } else {
            None
        }
    }

    /// The machine's sharing model.
    pub fn sharing_model(&self) -> &dyn SharingModel {
        self.sharing.as_ref()
    }

    /// The Sequent startup registry, if this machine links shared names.
    pub fn startup_registry(&self) -> Option<&Arc<StartupRegistry>> {
        self.registry.as_ref()
    }

    /// Physical lock slots remaining before allocations start aliasing
    /// (`None` = unlimited).
    pub fn free_lock_slots(&self) -> Option<usize> {
        self.pool
            .as_ref()
            .map(|p| p.capacity().saturating_sub(p.allocated()))
    }
}

/// Construct a vendor lock of the given kind.
pub fn make_raw_lock(kind: LockKind, initial: LockState, stats: &Arc<OpStats>) -> LockHandle {
    match kind {
        LockKind::Spin => Arc::new(SpinLock::new(initial, Arc::clone(stats))),
        LockKind::Syscall => Arc::new(SyscallLock::new(initial, Arc::clone(stats))),
        LockKind::Combined => Arc::new(CombinedLock::new(initial, Arc::clone(stats))),
        LockKind::FullEmpty => Arc::new(HepLock::new(initial, Arc::clone(stats))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_machines_with_distinct_personalities() {
        let all = Machine::all();
        assert_eq!(all.len(), 6);
        // The taxonomy of §4.1 is covered: every lock kind appears.
        let kinds: std::collections::HashSet<_> =
            all.iter().map(|m| m.spec().vendor_locks).collect();
        assert_eq!(kinds.len(), 4);
        // And every sharing model appears.
        let sharing: std::collections::HashSet<_> = all.iter().map(|m| m.spec().sharing).collect();
        assert_eq!(sharing.len(), 4);
    }

    #[test]
    fn tags_round_trip() {
        for id in MachineId::all() {
            assert_eq!(MachineId::from_tag(id.tag()), Some(id));
        }
        assert_eq!(MachineId::from_tag("vax"), None);
    }

    #[test]
    fn vendor_locks_have_the_declared_kind() {
        for m in Machine::all() {
            let l = m.make_lock(LockState::Unlocked);
            assert_eq!(l.kind(), m.spec().vendor_locks, "{}", m.id().name());
            l.lock();
            l.unlock();
        }
    }

    #[test]
    fn only_hep_has_hardware_fullempty() {
        for m in Machine::all() {
            let fe = m.hardware_fullempty(false);
            assert_eq!(fe.is_some(), m.id() == MachineId::Hep);
        }
    }

    #[test]
    fn cray_locks_are_scarce() {
        let cray = Machine::new(MachineId::Cray2);
        let cap = cray.free_lock_slots().unwrap();
        assert!(cap > 0);
        let mut locks = Vec::new();
        for _ in 0..cap {
            locks.push(cray.make_lock(LockState::Unlocked));
        }
        assert_eq!(cray.free_lock_slots(), Some(0));
        assert_eq!(cray.stats().snapshot().locks_aliased, 0);
        let _extra = cray.make_lock(LockState::Unlocked);
        assert_eq!(cray.stats().snapshot().locks_aliased, 1);
        // Dedicated environment locks bypass the pool.
        let _env = cray.make_dedicated_lock(LockState::Unlocked);
        assert_eq!(cray.stats().snapshot().locks_aliased, 1);
    }

    #[test]
    fn sequent_exposes_a_startup_registry() {
        let sequent = Machine::new(MachineId::SequentBalance);
        assert!(sequent.startup_registry().is_some());
        let encore = Machine::new(MachineId::EncoreMultimax);
        assert!(encore.startup_registry().is_none());
    }

    #[test]
    fn initially_locked_locks_work_on_every_machine() {
        // The Produce/Consume protocol needs create-locked on all ports.
        for m in Machine::all() {
            let l = m.make_lock(LockState::Locked);
            assert!(!l.try_lock(), "{}", m.id().name());
            l.unlock();
            assert!(l.try_lock(), "{}", m.id().name());
            l.unlock();
        }
    }
}
