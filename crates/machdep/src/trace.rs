//! Construct-level tracing and contention profiling.
//!
//! [`crate::stats::OpStats`] counts *how many* primitive operations a
//! machine performed; this module records *where a force spends its
//! time*: which construct each process was in, how long lock and
//! full/empty waits lasted, how spread-out barrier arrivals were, and how
//! a DOALL's trips distributed over the force.
//!
//! The measurement rule is the same as for `OpStats`: **relaxed atomics
//! only**, so tracing never perturbs the synchronization being measured.
//! Three consequences follow:
//!
//! * Event rings are strictly *single-writer*: each pid writes only its
//!   own ring, with relaxed stores and a relaxed head counter.  The
//!   reader ([`TraceSink::report`]) runs only at job quiescence (after
//!   the force joined or the pool's job mailbox completed), where the
//!   thread join/handoff provides the happens-before edge the relaxed
//!   stores themselves do not.
//! * Histograms are arrays of relaxed `AtomicU64` buckets with
//!   power-of-two bounds: `record(v)` is one relaxed `fetch_add` per
//!   bucket/count/sum, and percentiles are answered from bucket upper
//!   bounds (so they are conservative by at most 2x).
//! * Nothing here blocks.  The only mutex is the named-lock intern table,
//!   taken once per *named* critical-section entry while tracing is on —
//!   never on the zero-tracing path.
//!
//! Tracing is opt-in via [`crate::fault::FaultConfig::trace`]
//! (`RunOptions`): without it the thread-local trace slot is `None` and
//! every hook is a single `Option` test.  The sink lives on the
//! [`crate::fault::FaultPlane`] and is reset (or dropped) per job by
//! `FaultPlane::reset_for_job`, mirroring the fault plane's own per-job
//! semantics, so pooled sessions never leak one job's profile into the
//! next.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::fault::{self, Construct};
use crate::portable::{CachePadded, Mutex};

/// Number of distinct [`Construct`] variants (size of the per-construct
/// histogram tables).
const NCONSTRUCTS: usize = 13;

/// Number of power-of-two histogram buckets.  Bucket 0 holds the value 0;
/// bucket `i > 0` holds values in `[2^(i-1), 2^i)`, so 64 buckets cover
/// the full `u64` range of nanosecond durations.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Tracing configuration for one job (the payload of
/// [`crate::fault::FaultConfig::trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Capacity of each per-pid event ring, in events.  Rounded up to a
    /// power of two; when a ring wraps, the oldest events are overwritten
    /// (and reported as dropped) — histograms are never lossy.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 4096,
        }
    }
}

impl TraceConfig {
    /// The ring capacity actually allocated (rounded up to a power of
    /// two, at least 16) — used to decide whether a resident sink can be
    /// reused across jobs.
    pub(crate) fn rounded_capacity(&self) -> usize {
        self.ring_capacity.next_power_of_two().max(16)
    }
}

/// What a trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A construct marker became the innermost active marker.
    ConstructEnter,
    /// A construct marker was dropped.
    ConstructExit,
    /// A lock was acquired (`id` = named-lock id when known, else 0).
    LockAcquire,
    /// A lock acquisition did not succeed on the first attempt.
    LockContend,
    /// A barrier arrival was recorded (under `BARWIN`).
    BarrierArrive,
    /// A barrier departure was recorded (under `BARWOT`).
    BarrierRelease,
    /// A full/empty produce completed (cell became writable).
    Produce,
    /// A full/empty consume completed (cell became readable).
    Consume,
    /// The process published itself parked on the wait board.
    Park,
    /// The process left the parked state.
    Unpark,
    /// A work item was stolen from another process's deque (`id` = the
    /// victim pid).
    Steal,
}

const EVENT_KINDS: [EventKind; 11] = [
    EventKind::ConstructEnter,
    EventKind::ConstructExit,
    EventKind::LockAcquire,
    EventKind::LockContend,
    EventKind::BarrierArrive,
    EventKind::BarrierRelease,
    EventKind::Produce,
    EventKind::Consume,
    EventKind::Park,
    EventKind::Unpark,
    EventKind::Steal,
];

impl EventKind {
    /// Stable short name (used as the Chrome trace event name for
    /// instant events).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::ConstructEnter => "enter",
            EventKind::ConstructExit => "exit",
            EventKind::LockAcquire => "lock_acquire",
            EventKind::LockContend => "lock_contend",
            EventKind::BarrierArrive => "barrier_arrive",
            EventKind::BarrierRelease => "barrier_release",
            EventKind::Produce => "produce",
            EventKind::Consume => "consume",
            EventKind::Park => "park",
            EventKind::Unpark => "unpark",
            EventKind::Steal => "steal",
        }
    }

    fn index(self) -> u64 {
        EVENT_KINDS.iter().position(|&k| k == self).expect("listed") as u64
    }

    fn from_index(i: u64) -> EventKind {
        EVENT_KINDS
            .get(i as usize)
            .copied()
            .unwrap_or(EventKind::ConstructEnter)
    }
}

/// One decoded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the sink's monotonic origin.
    pub t_ns: u64,
    /// The emitting process.
    pub pid: usize,
    /// What happened.
    pub kind: EventKind,
    /// The innermost construct marker at emission time.
    pub construct: Construct,
    /// Event argument: the named-lock id for lock events, else 0.
    pub id: u32,
}

/// A power-of-two-bucket duration histogram with relaxed atomic buckets.
struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    /// Set on first record since the last reset, so per-job resets only
    /// zero histograms that were actually touched.
    dirty: AtomicBool,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            dirty: AtomicBool::new(false),
        }
    }

    fn bucket_of(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    #[inline]
    fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.dirty.store(true, Ordering::Relaxed);
    }

    fn reset(&self) {
        if self.dirty.load(Ordering::Relaxed) {
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
            self.sum.store(0, Ordering::Relaxed);
            self.dirty.store(false, Ordering::Relaxed);
        }
    }

    /// Whether anything was recorded since the last reset.  Untouched
    /// histograms skip both reset and snapshot — a job that never enters
    /// a construct must not pay 64 bucket loads for it at report time.
    fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a duration histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket counts; bucket 0 holds the value 0, bucket `i > 0` holds
    /// values in `[2^(i-1), 2^i)` nanoseconds.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded values (for exact means).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Record one value directly into the snapshot (same bucketing as the
    /// live atomic histogram).  Used by single-writer aggregators —
    /// the job server's per-tenant latency rollups — that never share the
    /// histogram across threads and so need no atomics.
    pub fn record(&mut self, v: u64) {
        self.buckets[Histogram::bucket_of(v)] += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Fold another snapshot's counts into this one (saturating).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Exact mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Upper bound of bucket `i`.
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Conservative percentile (0.0..=1.0): the upper bound of the bucket
    /// containing the `p`-quantile value.  Over-reports by at most 2x —
    /// the price of constant-space power-of-two buckets.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Conservative maximum: the upper bound of the highest non-empty
    /// bucket.
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&b| b > 0)
            .map(Self::bucket_upper)
            .unwrap_or(0)
    }
}

/// One per-pid event ring: single-writer (the owning pid), read only at
/// job quiescence.
struct Ring {
    /// Total events ever written (not capped); the writer's cursor.
    head: CachePadded<AtomicU64>,
    /// `(t_ns, kind | construct << 8 | id << 32)` pairs.
    slots: Box<[(AtomicU64, AtomicU64)]>,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            head: CachePadded::new(AtomicU64::new(0)),
            slots: (0..capacity)
                .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
                .collect(),
        }
    }

    #[inline]
    fn push(&self, t_ns: u64, kind: EventKind, construct: Construct, id: u32) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[h as usize & (self.slots.len() - 1)];
        let word = kind.index() | ((construct.index() as u64) << 8) | ((id as u64) << 32);
        slot.0.store(t_ns, Ordering::Relaxed);
        slot.1.store(word, Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Relaxed);
    }

    fn drain(&self, pid: usize, out: &mut Vec<TraceEvent>) -> u64 {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let kept = head.min(cap);
        let first = head - kept;
        for i in first..head {
            let slot = &self.slots[i as usize & (self.slots.len() - 1)];
            let t_ns = slot.0.load(Ordering::Relaxed);
            let word = slot.1.load(Ordering::Relaxed);
            out.push(TraceEvent {
                t_ns,
                pid,
                kind: EventKind::from_index(word & 0xff),
                construct: Construct::from_index(((word >> 8) & 0xff) as usize),
                id: (word >> 32) as u32,
            });
        }
        head - kept
    }

    fn reset(&self) {
        self.head.store(0, Ordering::Relaxed);
    }
}

/// The intern table for named locks (critical-section names): name → id,
/// plus per-id wait/hold histograms and acquire counts.
struct NamedTable {
    index: HashMap<String, u32>,
    names: Vec<String>,
    wait: Vec<Arc<Histogram>>,
    hold: Vec<Arc<Histogram>>,
    acquires: Vec<u64>,
}

impl NamedTable {
    fn new() -> NamedTable {
        NamedTable {
            index: HashMap::new(),
            names: Vec::new(),
            wait: Vec::new(),
            hold: Vec::new(),
            acquires: Vec::new(),
        }
    }
}

/// The per-job trace sink: event rings, histograms, barrier and DOALL
/// aggregates.  Owned by the fault plane, shared (via `Arc`) with each
/// process's thread-local context at install time.
pub struct TraceSink {
    origin: Instant,
    capacity: usize,
    rings: Vec<Ring>,
    /// Per-construct time-in-construct (enter→exit) histograms.
    construct_time: Vec<Histogram>,
    /// Per-construct blocked-wait (park→unpark) histograms.
    construct_wait: Vec<Histogram>,
    /// Per-construct enter counts.
    construct_enters: Vec<CachePadded<AtomicU64>>,
    named: Mutex<NamedTable>,
    /// First-arrival stamp of the open barrier episode (arrivals are
    /// serialized under `BARWIN`, so a plain slot suffices).
    barrier_open: AtomicU64,
    barrier_spread: Histogram,
    /// Per-pid DOALL trips executed (accumulated over the job).
    doall_trips: Vec<CachePadded<AtomicU64>>,
}

impl TraceSink {
    /// A fresh sink for a force of `nproc` processes.
    pub fn new(nproc: usize, config: TraceConfig) -> Arc<TraceSink> {
        let capacity = config.rounded_capacity();
        Arc::new(TraceSink {
            origin: Instant::now(),
            capacity,
            rings: (0..nproc).map(|_| Ring::new(capacity)).collect(),
            construct_time: (0..NCONSTRUCTS).map(|_| Histogram::new()).collect(),
            construct_wait: (0..NCONSTRUCTS).map(|_| Histogram::new()).collect(),
            construct_enters: (0..NCONSTRUCTS)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            named: Mutex::new(NamedTable::new()),
            barrier_open: AtomicU64::new(0),
            barrier_spread: Histogram::new(),
            doall_trips: (0..nproc)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        })
    }

    /// Ring capacity (rounded up from the configured value).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of processes the sink covers.
    pub fn nproc(&self) -> usize {
        self.rings.len()
    }

    /// Nanoseconds since the sink's monotonic origin.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    #[inline]
    fn emit(&self, pid: usize, t_ns: u64, kind: EventKind, construct: Construct, id: u32) {
        if let Some(ring) = self.rings.get(pid) {
            ring.push(t_ns, kind, construct, id);
        }
    }

    /// Clear the sink in place for the next job (same per-job semantics
    /// as `FaultPlane::reset_for_job`).  Must only run between jobs.
    pub fn reset(&self) {
        for ring in &self.rings {
            ring.reset();
        }
        for h in self.construct_time.iter().chain(&self.construct_wait) {
            h.reset();
        }
        for c in &self.construct_enters {
            c.store(0, Ordering::Relaxed);
        }
        {
            let mut named = self.named.lock();
            *named = NamedTable::new();
        }
        self.barrier_open.store(0, Ordering::Relaxed);
        self.barrier_spread.reset();
        for t in &self.doall_trips {
            t.store(0, Ordering::Relaxed);
        }
    }

    /// Intern a named lock, returning its stable id for this job.
    pub fn intern_named_lock(&self, name: &str) -> u32 {
        let mut named = self.named.lock();
        if let Some(&id) = named.index.get(name) {
            named.acquires[id as usize] += 1;
            return id;
        }
        let id = named.names.len() as u32;
        named.index.insert(name.to_string(), id);
        named.names.push(name.to_string());
        named.wait.push(Arc::new(Histogram::new()));
        named.hold.push(Arc::new(Histogram::new()));
        named.acquires.push(1);
        id
    }

    /// Record the time a process waited to enter named lock `id`.
    pub fn record_named_wait(&self, id: u32, ns: u64) {
        if let Some(h) = self.named.lock().wait.get(id as usize) {
            h.record(ns);
        }
    }

    /// Record the time a process held named lock `id`.
    pub fn record_named_hold(&self, id: u32, ns: u64) {
        if let Some(h) = self.named.lock().hold.get(id as usize) {
            h.record(ns);
        }
    }

    fn record_construct_time(&self, construct: Construct, ns: u64) {
        self.construct_time[construct.index()].record(ns);
    }

    fn record_construct_wait(&self, construct: Construct, ns: u64) {
        self.construct_wait[construct.index()].record(ns);
    }

    fn record_barrier_arrival(&self, t_ns: u64, first: bool, last: bool) {
        if first {
            self.barrier_open.store(t_ns, Ordering::Relaxed);
        }
        if last {
            let open = self.barrier_open.load(Ordering::Relaxed);
            self.barrier_spread.record(t_ns.saturating_sub(open));
        }
    }

    /// Summarize the job into a plain-data [`ProfileReport`].  Call only
    /// at job quiescence (no process of the job still running).
    pub fn report(&self) -> ProfileReport {
        let mut constructs = Vec::new();
        for (i, c) in (0..NCONSTRUCTS).map(|i| (i, Construct::from_index(i))) {
            let enters = self.construct_enters[i].load(Ordering::Relaxed);
            let time_dirty = self.construct_time[i].is_dirty();
            let wait_dirty = self.construct_wait[i].is_dirty();
            if enters == 0 && !time_dirty && !wait_dirty {
                continue;
            }
            let snap = |dirty: bool, h: &Histogram| {
                if dirty {
                    h.snapshot()
                } else {
                    HistogramSnapshot::default()
                }
            };
            constructs.push(ConstructProfile {
                construct: c.name(),
                enters,
                time: snap(time_dirty, &self.construct_time[i]),
                wait: snap(wait_dirty, &self.construct_wait[i]),
            });
        }
        let named_locks = {
            let named = self.named.lock();
            named
                .names
                .iter()
                .enumerate()
                .map(|(i, name)| NamedLockProfile {
                    name: name.clone(),
                    acquires: named.acquires[i],
                    wait: named.wait[i].snapshot(),
                    hold: named.hold[i].snapshot(),
                })
                .collect()
        };
        let mut events = Vec::new();
        let mut dropped_events = 0;
        for (pid, ring) in self.rings.iter().enumerate() {
            dropped_events += ring.drain(pid, &mut events);
        }
        events.sort_by_key(|e| e.t_ns);
        ProfileReport {
            nproc: self.nproc(),
            constructs,
            named_locks,
            barrier_spread: if self.barrier_spread.is_dirty() {
                self.barrier_spread.snapshot()
            } else {
                HistogramSnapshot::default()
            },
            doall_trips: self
                .doall_trips
                .iter()
                .map(|t| t.load(Ordering::Relaxed))
                .collect(),
            events,
            dropped_events,
        }
    }
}

/// Wait/hold profile of one construct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstructProfile {
    /// The construct name (see [`Construct::name`]).
    pub construct: &'static str,
    /// Times a process entered the construct.
    pub enters: u64,
    /// Time spent inside the construct (enter→exit), nanoseconds.
    pub time: HistogramSnapshot,
    /// Time spent blocked (parked) attributed to the construct,
    /// nanoseconds.
    pub wait: HistogramSnapshot,
}

/// Wait/hold profile of one named lock (critical-section name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedLockProfile {
    /// The lock/critical-section name.
    pub name: String,
    /// Times the lock was acquired through its named critical section.
    pub acquires: u64,
    /// Time waited to acquire, nanoseconds.
    pub wait: HistogramSnapshot,
    /// Time held, nanoseconds.
    pub hold: HistogramSnapshot,
}

/// The per-job profile surfaced by `Force::last_job_profile` and
/// `Engine::last_job_profile`: a plain-data snapshot, detached from the
/// live sink, so a later job cannot mutate an already-taken report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileReport {
    /// Number of processes in the profiled job.
    pub nproc: usize,
    /// Per-construct profiles (constructs that were never entered are
    /// omitted).
    pub constructs: Vec<ConstructProfile>,
    /// Per-named-lock profiles, in first-acquire order.
    pub named_locks: Vec<NamedLockProfile>,
    /// Barrier arrival spread (last arrival − first arrival) per episode,
    /// nanoseconds.
    pub barrier_spread: HistogramSnapshot,
    /// DOALL trips executed per pid, accumulated over the job.
    pub doall_trips: Vec<u64>,
    /// Retained trace events, time-ordered across pids.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wrap-around (oldest-first overwrite).
    pub dropped_events: u64,
}

impl ProfileReport {
    /// Whether the job recorded nothing at all.
    pub fn is_empty(&self) -> bool {
        self.constructs.is_empty()
            && self.named_locks.is_empty()
            && self.events.is_empty()
            && self.barrier_spread.is_empty()
            && self.doall_trips.iter().all(|&t| t == 0)
    }

    /// The profile of one construct by name, if it was entered.
    pub fn construct(&self, name: &str) -> Option<&ConstructProfile> {
        self.constructs.iter().find(|c| c.construct == name)
    }

    /// The profile of one named lock, if it was acquired.
    pub fn named_lock(&self, name: &str) -> Option<&NamedLockProfile> {
        self.named_locks.iter().find(|l| l.name == name)
    }

    /// Per-pid trip imbalance of the job's DOALLs: `(max, min)` executed
    /// trips across pids (`None` when no DOALL ran).  A large gap under a
    /// static policy on a skewed workload is exactly what the dynamic
    /// policies exist to close.
    pub fn doall_trip_spread(&self) -> Option<(u64, u64)> {
        if self.doall_trips.is_empty() || self.doall_trips.iter().all(|&t| t == 0) {
            return None;
        }
        let max = *self.doall_trips.iter().max().unwrap();
        let min = *self.doall_trips.iter().min().unwrap();
        Some((max, min))
    }

    /// DOALL imbalance: max per-pid trips over mean per-pid trips (1.0 =
    /// perfectly balanced; 0.0 when no DOALL ran).
    pub fn doall_imbalance(&self) -> f64 {
        let total: u64 = self.doall_trips.iter().sum();
        if total == 0 || self.doall_trips.is_empty() {
            return 0.0;
        }
        let mean = total as f64 / self.doall_trips.len() as f64;
        let max = *self.doall_trips.iter().max().unwrap() as f64;
        max / mean
    }

    /// Render the retained events as Chrome `trace_event` JSON (the
    /// `{"traceEvents": [...]}` object form, loadable in `chrome://tracing`
    /// and Perfetto).  Construct enter/exit pairs become `B`/`E` duration
    /// events named after the construct; everything else becomes an
    /// instant event.  `tid` is the Force pid; `pid` is the process id
    /// given here (useful to merge several machines into one trace).
    pub fn chrome_trace_json_as(&self, process_id: usize, process_name: &str) -> String {
        let mut out = String::new();
        self.push_chrome_events(&mut out, process_id, process_name);
        format!("{{\"traceEvents\":[{out}]}}")
    }

    /// Single-process convenience form of
    /// [`chrome_trace_json_as`](Self::chrome_trace_json_as).
    pub fn chrome_trace_json(&self) -> String {
        self.chrome_trace_json_as(0, "force")
    }

    /// Append this report's Chrome trace events (comma-separated JSON
    /// objects, no surrounding brackets) to `out` — the building block
    /// for multi-machine merged traces.
    pub fn push_chrome_events(&self, out: &mut String, process_id: usize, process_name: &str) {
        use std::fmt::Write as _;
        let mut first = out.is_empty();
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };
        sep(out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{process_id},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(process_name)
        );
        for e in &self.events {
            let ts = e.t_ns as f64 / 1000.0;
            sep(out);
            match e.kind {
                EventKind::ConstructEnter => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"cat\":\"construct\",\"ph\":\"B\",\
                         \"ts\":{ts:.3},\"pid\":{process_id},\"tid\":{}}}",
                        e.construct.name(),
                        e.pid
                    );
                }
                EventKind::ConstructExit => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"cat\":\"construct\",\"ph\":\"E\",\
                         \"ts\":{ts:.3},\"pid\":{process_id},\"tid\":{}}}",
                        e.construct.name(),
                        e.pid
                    );
                }
                kind => {
                    let name = match self.named_locks.get(e.id as usize) {
                        Some(l)
                            if matches!(kind, EventKind::LockAcquire | EventKind::LockContend)
                                && e.id != u32::MAX =>
                        {
                            &l.name
                        }
                        _ => kind.name(),
                    };
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"cat\":\"sync\",\"ph\":\"i\",\"s\":\"t\",\
                         \"ts\":{ts:.3},\"pid\":{process_id},\"tid\":{},\
                         \"args\":{{\"construct\":\"{}\"}}}}",
                        escape_json(name),
                        e.pid,
                        e.construct.name()
                    );
                }
            }
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Hot-path hooks.  Every function below is a no-op (one thread-local
// Option test) unless the current thread runs under a force whose plane
// has tracing armed.
// ---------------------------------------------------------------------

/// Whether the current thread is tracing (its force armed a sink).
#[inline]
pub fn active() -> bool {
    fault::with_trace(|_, _, _| ()).is_some()
}

/// Stamp an event with the current construct attribution.
#[inline]
pub fn event(kind: EventKind, id: u32) {
    fault::with_trace(|sink, pid, construct| {
        let t = sink.now_ns();
        sink.emit(pid, t, kind, construct, id);
    });
}

/// Hook: a lock acquisition succeeded (`contended` = not on the first
/// attempt).  Called by every `RawLock` implementation.
#[inline]
pub fn lock_acquired(contended: bool) {
    fault::with_trace(|sink, pid, construct| {
        let t = sink.now_ns();
        if contended {
            sink.emit(pid, t, EventKind::LockContend, construct, 0);
        }
        sink.emit(pid, t, EventKind::LockAcquire, construct, 0);
    });
}

/// Hook: a full/empty produce completed (cell became FULL-bound).
#[inline]
pub fn fe_produced() {
    event(EventKind::Produce, 0);
}

/// Hook: a full/empty consume completed (cell became EMPTY-bound).
#[inline]
pub fn fe_consumed() {
    event(EventKind::Consume, 0);
}

/// Hook: a barrier arrival under `BARWIN`.  `first`/`last` flag the
/// episode's first and last arrivers (serialized by the lock), which
/// bound the episode's arrival spread.
#[inline]
pub fn barrier_arrive(first: bool, last: bool) {
    fault::with_trace(|sink, pid, construct| {
        let t = sink.now_ns();
        sink.emit(pid, t, EventKind::BarrierArrive, construct, 0);
        sink.record_barrier_arrival(t, first, last);
    });
}

/// Hook: a barrier departure under `BARWOT` (`last` = the departer that
/// re-opens the episode).
#[inline]
pub fn barrier_release(last: bool) {
    fault::with_trace(|sink, pid, construct| {
        let t = sink.now_ns();
        sink.emit(
            pid,
            t,
            EventKind::BarrierRelease,
            construct,
            u32::from(last),
        );
    });
}

/// Hook: this process executed `trips` trips of a DOALL occurrence.
#[inline]
pub fn doall_trips(trips: u64) {
    if trips == 0 {
        return;
    }
    fault::with_trace(|sink, pid, _| {
        if let Some(slot) = sink.doall_trips.get(pid) {
            slot.fetch_add(trips, Ordering::Relaxed);
        }
    });
}

/// Intern a named lock (critical-section name) on the current sink,
/// counting one acquire.  Returns `None` when not tracing — callers use
/// that to skip the instrumented path entirely.
#[inline]
pub fn named_lock_id(name: &str) -> Option<u32> {
    fault::with_trace(|sink, _, _| sink.intern_named_lock(name))
}

/// Nanoseconds on the current sink's clock (`None` when not tracing).
#[inline]
pub fn now_ns() -> Option<u64> {
    fault::with_trace(|sink, _, _| sink.now_ns())
}

/// Record a named-lock wait time measured by the caller.
#[inline]
pub fn named_wait(id: u32, ns: u64) {
    fault::with_trace(|sink, _, _| sink.record_named_wait(id, ns));
}

/// Record a named-lock hold time measured by the caller.
#[inline]
pub fn named_hold(id: u32, ns: u64) {
    fault::with_trace(|sink, _, _| sink.record_named_hold(id, ns));
}

/// Internal hook for `fault::enter`: stamp the enter event and return
/// the start time for the matching exit.
pub(crate) fn construct_entered(sink: &TraceSink, pid: usize, construct: Construct) -> u64 {
    let t = sink.now_ns();
    sink.construct_enters[construct.index()].fetch_add(1, Ordering::Relaxed);
    sink.emit(pid, t, EventKind::ConstructEnter, construct, 0);
    t
}

/// Internal hook for `ConstructGuard::drop`: stamp the exit event and
/// record time-in-construct.
pub(crate) fn construct_exited(sink: &TraceSink, pid: usize, construct: Construct, t0: u64) {
    let t = sink.now_ns();
    sink.emit(pid, t, EventKind::ConstructExit, construct, 0);
    sink.record_construct_time(construct, t.saturating_sub(t0));
}

/// Internal hook for `fault::parked`: stamp the park event and return the
/// start time for the matching unpark.
pub(crate) fn park_begun(sink: &TraceSink, pid: usize, construct: Construct) -> u64 {
    let t = sink.now_ns();
    sink.emit(pid, t, EventKind::Park, construct, 0);
    t
}

/// Internal hook for `ParkGuard::drop`: stamp the unpark event and record
/// the blocked-wait time against the parked construct.
pub(crate) fn park_ended(sink: &TraceSink, pid: usize, construct: Construct, t0: u64) {
    let t = sink.now_ns();
    sink.emit(pid, t, EventKind::Unpark, construct, 0);
    sink.record_construct_wait(construct, t.saturating_sub(t0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles_are_conservative_bounds() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.mean(), 221);
        // p50 is the 3rd of 5 values (3) → bucket [2,4) upper bound 3.
        assert_eq!(s.percentile(0.5), 3);
        // p100 covers 1000 → bucket [512,1024) upper bound 1023.
        assert_eq!(s.percentile(1.0), 1023);
        assert_eq!(s.max(), 1023);
        assert_eq!(s.percentile(0.0), 1, "rank clamps to the first value");
    }

    #[test]
    fn snapshot_record_matches_live_histogram_bucketing() {
        let live = Histogram::new();
        let mut snap = HistogramSnapshot::default();
        for v in [0u64, 1, 3, 100, 1000, u64::MAX] {
            live.record(v);
            snap.record(v);
        }
        let live_snap = live.snapshot();
        assert_eq!(snap.buckets, live_snap.buckets);
        assert_eq!(snap.count(), live_snap.count());
        // The live sum wraps (relaxed u64 add); the snapshot saturates —
        // compare percentiles, which only read buckets.
        assert_eq!(snap.percentile(0.5), live_snap.percentile(0.5));
        assert_eq!(snap.max(), live_snap.max());
    }

    #[test]
    fn snapshot_merge_sums_counts() {
        let mut a = HistogramSnapshot::default();
        let mut b = HistogramSnapshot::default();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [100u64, 1000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum, 1106);
        assert_eq!(a.max(), 1023);
        // Merging an empty snapshot is the identity.
        let before = a;
        a.merge(&HistogramSnapshot::default());
        assert_eq!(a, before);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0);
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn ring_keeps_the_newest_events_and_counts_drops() {
        let ring = Ring::new(4);
        for i in 0..7u64 {
            ring.push(i, EventKind::LockAcquire, Construct::Critical, i as u32);
        }
        let mut out = Vec::new();
        let dropped = ring.drain(2, &mut out);
        assert_eq!(dropped, 3);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].t_ns, 3, "oldest retained event");
        assert_eq!(out[3].t_ns, 6, "newest event");
        assert!(out.iter().all(|e| e.pid == 2));
        assert!(out.iter().all(|e| e.kind == EventKind::LockAcquire));
        assert!(out.iter().all(|e| e.construct == Construct::Critical));
        assert_eq!(out[3].id, 6);
    }

    #[test]
    fn sink_round_trips_events_and_histograms() {
        let sink = TraceSink::new(2, TraceConfig::default());
        sink.emit(0, 10, EventKind::BarrierArrive, Construct::Barrier, 0);
        sink.emit(1, 5, EventKind::Park, Construct::Consume, 0);
        sink.record_construct_time(Construct::Barrier, 100);
        sink.record_construct_wait(Construct::Consume, 50);
        sink.construct_enters[Construct::Barrier.index()].fetch_add(1, Ordering::Relaxed);
        let id = sink.intern_named_lock("HOT");
        sink.record_named_wait(id, 7);
        sink.record_named_hold(id, 9);
        sink.record_barrier_arrival(100, true, false);
        sink.record_barrier_arrival(160, false, true);
        if let Some(slot) = sink.doall_trips.first() {
            slot.fetch_add(12, Ordering::Relaxed);
        }

        let r = sink.report();
        assert!(!r.is_empty());
        assert_eq!(r.nproc, 2);
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.events[0].t_ns, 5, "events are time-ordered across pids");
        assert_eq!(r.events[0].pid, 1);
        assert_eq!(r.dropped_events, 0);
        let b = r.construct("barrier").expect("barrier profiled");
        assert_eq!(b.enters, 1);
        assert_eq!(b.time.count(), 1);
        let c = r.construct("consume").expect("consume profiled");
        assert_eq!(c.wait.count(), 1);
        let l = r.named_lock("HOT").expect("named lock profiled");
        assert_eq!(l.acquires, 1);
        assert_eq!(l.wait.count(), 1);
        assert_eq!(l.hold.count(), 1);
        assert_eq!(r.barrier_spread.count(), 1);
        assert!(r.barrier_spread.percentile(1.0) >= 60);
        assert_eq!(r.doall_trips, vec![12, 0]);
        assert!((r.doall_imbalance() - 2.0).abs() < 1e-9, "12 vs mean 6");
        assert_eq!(r.doall_trip_spread(), Some((12, 0)));
    }

    #[test]
    fn trip_spread_is_none_without_doalls() {
        let sink = TraceSink::new(3, TraceConfig::default());
        assert_eq!(sink.report().doall_trip_spread(), None);
    }

    #[test]
    fn steal_events_round_trip_with_their_victim() {
        let sink = TraceSink::new(2, TraceConfig::default());
        sink.emit(0, 42, EventKind::Steal, Construct::Askfor, 1);
        let r = sink.report();
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].kind, EventKind::Steal);
        assert_eq!(r.events[0].id, 1, "id carries the victim pid");
        let json = r.chrome_trace_json();
        assert!(json.contains("\"name\":\"steal\""), "{json}");
    }

    #[test]
    fn reset_clears_everything() {
        let sink = TraceSink::new(1, TraceConfig { ring_capacity: 16 });
        sink.emit(0, 1, EventKind::LockAcquire, Construct::Critical, 0);
        sink.record_construct_time(Construct::Critical, 5);
        let id = sink.intern_named_lock("L");
        sink.record_named_hold(id, 2);
        sink.record_barrier_arrival(3, true, true);
        sink.doall_trips[0].fetch_add(4, Ordering::Relaxed);
        assert!(!sink.report().is_empty());
        sink.reset();
        assert!(sink.report().is_empty(), "reset leaves a blank job profile");
    }

    #[test]
    fn chrome_export_is_structured() {
        let sink = TraceSink::new(1, TraceConfig::default());
        sink.emit(0, 1000, EventKind::ConstructEnter, Construct::Critical, 0);
        sink.emit(0, 3000, EventKind::ConstructExit, Construct::Critical, 0);
        sink.emit(0, 2000, EventKind::LockAcquire, Construct::Critical, 0);
        let r = sink.report();
        let json = r.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"critical\""));
        assert!(json.contains("\"ts\":1.000"), "ns become µs: {json}");
    }

    #[test]
    fn hooks_are_inert_outside_a_force() {
        assert!(!active());
        event(EventKind::LockAcquire, 0);
        lock_acquired(true);
        fe_produced();
        fe_consumed();
        barrier_arrive(true, true);
        barrier_release(true);
        doall_trips(10);
        named_wait(0, 1);
        named_hold(0, 1);
        assert_eq!(named_lock_id("X"), None);
        assert_eq!(now_ns(), None);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\u000ay");
    }
}
