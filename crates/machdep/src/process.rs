//! Process creation and termination models — §4.1.1.
//!
//! The paper encountered three models:
//!
//! * the **standard UNIX fork/join** model (Encore, Sequent), where "a
//!   complete copy of the data and stack is produced for each forked
//!   process" — high creation cost, child starts with a copy of the
//!   parent's private data ([`ProcessModel::ForkJoinCopy`]);
//! * the **Alliant variation** "where all data segments are shared and
//!   only the stack is considered private" — the child's private state is
//!   a fresh stack ([`ProcessModel::SharedDataFork`]);
//! * the **HEP** model, where "one can create processes with a subroutine
//!   call" and a return terminates the process independently of the
//!   caller — very cheap creation, fresh locals
//!   ([`ProcessModel::SpawnByCall`]).
//!
//! All are realized on host threads; the observable differences are (a)
//! what a child sees of the parent's private data at spawn
//! ([`ChildPrivateInit`]) and (b) the simulated creation cost charged by
//! the cost model.

use std::sync::Arc;

use crate::fault::{self, Cancelled, Construct, FaultConfig, FaultPlane, ProcessFault};
use crate::portable::{Condvar, Mutex};
use crate::stats::OpStats;

/// How a child process's private storage is initialized at spawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildPrivateInit {
    /// The child starts with a copy of the parent's private data at the
    /// moment of the fork (UNIX fork/join model).
    CopyOfParent,
    /// The child starts with fresh (zero) private storage: only the stack
    /// is private (Alliant) or the process begins in a new subroutine
    /// activation (HEP).
    Zeroed,
}

/// One of the paper's process-creation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessModel {
    /// UNIX fork/join with full copy of data and stack (Encore, Sequent).
    ForkJoinCopy,
    /// Fork sharing all data segments; only the stack is private (Alliant).
    SharedDataFork,
    /// Process creation by subroutine call; return terminates the process
    /// (HEP).
    SpawnByCall,
}

impl ProcessModel {
    /// The paper's description of the model.
    pub fn name(self) -> &'static str {
        match self {
            ProcessModel::ForkJoinCopy => "UNIX fork/join (data+stack copied)",
            ProcessModel::SharedDataFork => "fork with shared data, private stack",
            ProcessModel::SpawnByCall => "process creation by subroutine call",
        }
    }

    /// What the child sees of the parent's private data.
    pub fn child_private_init(self) -> ChildPrivateInit {
        match self {
            ProcessModel::ForkJoinCopy => ChildPrivateInit::CopyOfParent,
            ProcessModel::SharedDataFork | ProcessModel::SpawnByCall => ChildPrivateInit::Zeroed,
        }
    }

    /// Whether creation is cheap enough for fine-grained parallelism
    /// (§4.1.1: the fork/join model "prevents fine grained parallelism").
    pub fn fine_grained(self) -> bool {
        matches!(self, ProcessModel::SpawnByCall)
    }
}

/// Extract a printable message from a caught panic payload.
fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The fault-plane-aware run loop for one process of a force, shared by
/// the scoped spawner ([`spawn_force_plane`]) and the resident
/// [`crate::pool::ForcePool`] workers.
///
/// Installs the plane's thread-local fault context for `pid`, runs
/// `body`, and traps its panic: a genuine panic trips the plane (with
/// construct attribution and the original payload preserved), a
/// [`Cancelled`] unwind from a peer's fault is absorbed, and either way
/// the pid is marked finished on the wait board before returning.
/// Returns `Some` of the body's result only on a clean completion.
pub(crate) fn run_as_process<R>(
    plane: &Arc<FaultPlane>,
    pid: usize,
    body: impl FnOnce() -> R,
) -> Option<R> {
    let _ctx = fault::install(plane, pid);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    let result = match outcome {
        Ok(r) => Some(r),
        Err(payload) => {
            if !payload.is::<Cancelled>() {
                let construct = fault::take_panicked_construct().unwrap_or(Construct::Body);
                plane.trip(
                    ProcessFault {
                        pid,
                        construct: construct.name(),
                        payload: describe_panic(payload.as_ref()),
                    },
                    Some(payload),
                );
            }
            None
        }
    };
    plane.finish(pid);
    result
}

/// Spawn a force of `nproc` processes under a [`FaultPlane`] and join
/// them all — the Force driver's create/`Join` cycle with fault
/// containment.
///
/// Every process runs `body(pid)` with the plane's thread-local fault
/// context installed, so every blocking wait in the machine-dependent
/// layer observes the plane's cancellation token.  Each process's panic
/// is caught individually: the *first* genuine fault trips the plane
/// (promptly unwinding any peers blocked in a barrier, lock, `Consume`,
/// etc.), later faults and cancellation unwinds are absorbed, and after
/// every process has been joined the first fault is returned as a
/// structured [`ProcessFault`].  When the plane's config asks for a
/// deadlock watchdog, one runs on a helper thread for the duration of the
/// force.
///
/// On success, returns each process's result in pid order.
pub fn spawn_force_plane<R, F>(plane: &Arc<FaultPlane>, body: F) -> Result<Vec<R>, ProcessFault>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let nproc = plane.nproc();
    assert!(nproc > 0, "a force needs at least one process");
    OpStats::add(&plane.stats().processes_created, nproc as u64);
    let body = &body;
    let watchdog_stop = Arc::new((Mutex::new(false), Condvar::new()));
    std::thread::scope(|scope| {
        let watchdog = plane.watchdog_interval().map(|_| {
            let plane = Arc::clone(plane);
            let stop = Arc::clone(&watchdog_stop);
            scope.spawn(move || plane.run_watchdog(&stop.0, &stop.1))
        });
        let handles: Vec<_> = (0..nproc)
            .map(|pid| {
                let plane = Arc::clone(plane);
                scope.spawn(move || run_as_process(&plane, pid, || body(pid)))
            })
            .collect();
        let mut results = Vec::with_capacity(nproc);
        for (pid, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results.push(r),
                Err(_) => {
                    // The body's panic was already caught inside the thread;
                    // a join error means the harness itself died.  Trip
                    // defensively so peers cannot hang on the lost process.
                    plane.trip(
                        ProcessFault {
                            pid,
                            construct: Construct::Body.name(),
                            payload: "process thread died outside the fault harness".to_string(),
                        },
                        None,
                    );
                    results.push(None);
                }
            }
        }
        if watchdog.is_some() {
            *watchdog_stop.0.lock() = true;
            watchdog_stop.1.notify_all();
        }
        if let Some(w) = watchdog {
            let _ = w.join();
        }
        match plane.take_fault() {
            Some(fault) => Err(fault),
            // A pre-tripped plane (reused without reset_for_job) cancels
            // every process without recording a fresh fault.
            None if plane.is_tripped() => Err(crate::pool::stale_trip_fault()),
            None => Ok(results
                .into_iter()
                .map(|r| r.expect("no fault recorded, so every process completed"))
                .collect()),
        }
    })
}

/// Spawn a force of `nproc` processes and join them all — the Force
/// driver's create/`Join` cycle.
///
/// Every process runs `body(pid)`; the call returns each process's result
/// in pid order.  Runs under a default [`FaultPlane`] (no watchdog, no
/// injection): a panicking process trips the plane, blocked peers unwind
/// promptly instead of hanging, and the *first* panic's original payload
/// is re-raised after all processes have been joined, so the force is
/// never abandoned half-alive.
pub fn spawn_force<R, F>(nproc: usize, stats: &Arc<OpStats>, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let plane = FaultPlane::new(nproc, Arc::clone(stats), FaultConfig::default());
    match spawn_force_plane(&plane, body) {
        Ok(results) => results,
        Err(fault) => match plane.take_payload() {
            Some(payload) => std::panic::resume_unwind(payload),
            None => panic!("{fault}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn model_metadata() {
        assert_eq!(
            ProcessModel::ForkJoinCopy.child_private_init(),
            ChildPrivateInit::CopyOfParent
        );
        assert_eq!(
            ProcessModel::SharedDataFork.child_private_init(),
            ChildPrivateInit::Zeroed
        );
        assert_eq!(
            ProcessModel::SpawnByCall.child_private_init(),
            ChildPrivateInit::Zeroed
        );
        assert!(ProcessModel::SpawnByCall.fine_grained());
        assert!(!ProcessModel::ForkJoinCopy.fine_grained());
    }

    #[test]
    fn spawn_force_runs_every_pid_once() {
        let stats = Arc::new(OpStats::new());
        let hits = AtomicUsize::new(0);
        let results = spawn_force(6, &stats, |pid| {
            hits.fetch_add(1, Ordering::Relaxed);
            pid * 2
        });
        assert_eq!(results, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(hits.load(Ordering::Relaxed), 6);
        assert_eq!(stats.snapshot().processes_created, 6);
    }

    #[test]
    fn spawn_force_propagates_panics_after_join() {
        let stats = Arc::new(OpStats::new());
        let survivors = AtomicUsize::new(0);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            spawn_force(4, &stats, |pid| {
                if pid == 2 {
                    panic!("process 2 died");
                }
                survivors.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(res.is_err());
        // The other three processes completed before the panic resurfaced.
        assert_eq!(survivors.load(Ordering::Relaxed), 3);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_rejected() {
        let stats = Arc::new(OpStats::new());
        let _ = spawn_force(0, &stats, |_| ());
    }

    #[test]
    fn spawn_force_plane_reports_the_first_faulting_pid() {
        let stats = Arc::new(OpStats::new());
        let plane = FaultPlane::new(4, Arc::clone(&stats), FaultConfig::default());
        let err = spawn_force_plane(&plane, |pid| {
            if pid == 1 {
                panic!("pid one dies");
            }
            // Peers park until cancellation reaches them (or they finish).
        })
        .expect_err("a panicking process must fault the force");
        assert_eq!(err.pid, 1);
        assert_eq!(err.construct, "body");
        assert_eq!(err.payload, "pid one dies");
        assert_eq!(stats.snapshot().faults_detected, 1);
    }

    #[test]
    fn cancellation_unblocks_a_peer_stuck_on_a_lock() {
        use crate::lock::{LockState, RawLock};
        use crate::spin::SpinLock;

        let stats = Arc::new(OpStats::new());
        let plane = FaultPlane::new(2, Arc::clone(&stats), FaultConfig::default());
        // pid 1 blocks on a lock nobody will ever release; pid 0 panics.
        // Without cancellation this join would hang forever.
        let wedge = SpinLock::new(LockState::Unlocked, Arc::clone(&stats));
        wedge.lock();
        let err = spawn_force_plane(&plane, |pid| {
            if pid == 0 {
                // Give pid 1 a moment to actually block.
                std::thread::sleep(std::time::Duration::from_millis(20));
                panic!("boom");
            }
            wedge.lock();
        })
        .expect_err("the panic must surface");
        assert_eq!(err.pid, 0);
        assert!(stats.snapshot().cancellations_observed >= 1);
    }

    #[test]
    fn multiple_panics_keep_the_first_fault() {
        let stats = Arc::new(OpStats::new());
        let plane = FaultPlane::new(4, Arc::clone(&stats), FaultConfig::default());
        let err = spawn_force_plane(&plane, |pid| {
            panic!("pid {pid} dies");
        })
        .expect_err("every process panics");
        assert!(err.payload.starts_with("pid "), "{}", err.payload);
        // All four genuine panics were detected, one was reported.
        assert_eq!(stats.snapshot().faults_detected, 4);
    }

    #[test]
    fn successful_force_leaves_the_plane_untripped() {
        let stats = Arc::new(OpStats::new());
        let plane = FaultPlane::new(3, Arc::clone(&stats), FaultConfig::default());
        let results = spawn_force_plane(&plane, |pid| pid + 1).expect("no faults");
        assert_eq!(results, vec![1, 2, 3]);
        assert!(!plane.is_tripped());
        assert_eq!(stats.snapshot().faults_detected, 0);
    }
}
