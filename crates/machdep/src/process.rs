//! Process creation and termination models — §4.1.1.
//!
//! The paper encountered three models:
//!
//! * the **standard UNIX fork/join** model (Encore, Sequent), where "a
//!   complete copy of the data and stack is produced for each forked
//!   process" — high creation cost, child starts with a copy of the
//!   parent's private data ([`ProcessModel::ForkJoinCopy`]);
//! * the **Alliant variation** "where all data segments are shared and
//!   only the stack is considered private" — the child's private state is
//!   a fresh stack ([`ProcessModel::SharedDataFork`]);
//! * the **HEP** model, where "one can create processes with a subroutine
//!   call" and a return terminates the process independently of the
//!   caller — very cheap creation, fresh locals
//!   ([`ProcessModel::SpawnByCall`]).
//!
//! All are realized on host threads; the observable differences are (a)
//! what a child sees of the parent's private data at spawn
//! ([`ChildPrivateInit`]) and (b) the simulated creation cost charged by
//! the cost model.

use std::sync::Arc;

use crate::stats::OpStats;

/// How a child process's private storage is initialized at spawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildPrivateInit {
    /// The child starts with a copy of the parent's private data at the
    /// moment of the fork (UNIX fork/join model).
    CopyOfParent,
    /// The child starts with fresh (zero) private storage: only the stack
    /// is private (Alliant) or the process begins in a new subroutine
    /// activation (HEP).
    Zeroed,
}

/// One of the paper's process-creation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessModel {
    /// UNIX fork/join with full copy of data and stack (Encore, Sequent).
    ForkJoinCopy,
    /// Fork sharing all data segments; only the stack is private (Alliant).
    SharedDataFork,
    /// Process creation by subroutine call; return terminates the process
    /// (HEP).
    SpawnByCall,
}

impl ProcessModel {
    /// The paper's description of the model.
    pub fn name(self) -> &'static str {
        match self {
            ProcessModel::ForkJoinCopy => "UNIX fork/join (data+stack copied)",
            ProcessModel::SharedDataFork => "fork with shared data, private stack",
            ProcessModel::SpawnByCall => "process creation by subroutine call",
        }
    }

    /// What the child sees of the parent's private data.
    pub fn child_private_init(self) -> ChildPrivateInit {
        match self {
            ProcessModel::ForkJoinCopy => ChildPrivateInit::CopyOfParent,
            ProcessModel::SharedDataFork | ProcessModel::SpawnByCall => ChildPrivateInit::Zeroed,
        }
    }

    /// Whether creation is cheap enough for fine-grained parallelism
    /// (§4.1.1: the fork/join model "prevents fine grained parallelism").
    pub fn fine_grained(self) -> bool {
        matches!(self, ProcessModel::SpawnByCall)
    }
}

/// Spawn a force of `nproc` processes and join them all — the Force
/// driver's create/`Join` cycle.
///
/// Every process runs `body(pid)`; the call returns each process's result
/// in pid order.  A panicking process propagates its panic after all
/// processes have been joined, so the force is never abandoned half-alive.
pub fn spawn_force<R, F>(nproc: usize, stats: &Arc<OpStats>, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(nproc > 0, "a force needs at least one process");
    OpStats::add(&stats.processes_created, nproc as u64);
    let body = &body;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nproc)
            .map(|pid| {
                scope
                    .spawn(move || body(pid))
            })
            .collect();
        let mut results = Vec::with_capacity(nproc);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(r) => results.push(r),
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn model_metadata() {
        assert_eq!(
            ProcessModel::ForkJoinCopy.child_private_init(),
            ChildPrivateInit::CopyOfParent
        );
        assert_eq!(
            ProcessModel::SharedDataFork.child_private_init(),
            ChildPrivateInit::Zeroed
        );
        assert_eq!(
            ProcessModel::SpawnByCall.child_private_init(),
            ChildPrivateInit::Zeroed
        );
        assert!(ProcessModel::SpawnByCall.fine_grained());
        assert!(!ProcessModel::ForkJoinCopy.fine_grained());
    }

    #[test]
    fn spawn_force_runs_every_pid_once() {
        let stats = Arc::new(OpStats::new());
        let hits = AtomicUsize::new(0);
        let results = spawn_force(6, &stats, |pid| {
            hits.fetch_add(1, Ordering::Relaxed);
            pid * 2
        });
        assert_eq!(results, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(hits.load(Ordering::Relaxed), 6);
        assert_eq!(stats.snapshot().processes_created, 6);
    }

    #[test]
    fn spawn_force_propagates_panics_after_join() {
        let stats = Arc::new(OpStats::new());
        let survivors = AtomicUsize::new(0);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            spawn_force(4, &stats, |pid| {
                if pid == 2 {
                    panic!("process 2 died");
                }
                survivors.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(res.is_err());
        // The other three processes completed before the panic resurfaced.
        assert_eq!(survivors.load(Ordering::Relaxed), 3);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_rejected() {
        let stats = Arc::new(OpStats::new());
        let _ = spawn_force(0, &stats, |_| ());
    }
}
