//! Per-process work deques with stealing — the machine-level substrate of
//! the scheduling plane.
//!
//! The paper leaves the *choice* of work distribution to the programmer
//! (prescheduled vs selfscheduled DOALL, §3.3/§4.2; the Askfor pot of
//! \[LO83\]) precisely because no single policy wins on every machine.  This
//! module makes the policy a first-class runtime value
//! ([`SchedulePolicy`]) and provides the one primitive the dynamic
//! policies need that the original toolkit lacked: a hermetic per-process
//! work deque ([`WorkQueues`]) with local LIFO push/pop and FIFO stealing,
//! built only on the portable primitives of [`crate::portable`] — no new
//! dependencies, no unsafe code.
//!
//! The deque discipline is the classic work-stealing split: an owner
//! treats its deque as a stack (newest first, good locality), a thief
//! takes from the opposite end (oldest first, likely the largest remaining
//! unit of work).  Steal traffic is visible to the accounting layer
//! through the `steals` / `steal_attempts_failed` counters in
//! [`crate::stats::OpStats`].

use std::collections::VecDeque;

use crate::portable::{CachePadded, Mutex};

/// How a work-distribution construct hands trips to processes.
///
/// The first three are the paper's own menu (§3.3/§4.2); `Guided` and
/// `Steal` are the two classic successors, added so the reproduction can
/// measure what the original machines could not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Prescheduled, cyclic: process `p` takes trips `p, p+NP, p+2·NP, …`
    /// — the paper's machine-independent `Presched DO`.
    Cyclic,
    /// Prescheduled, contiguous blocks: the trip space is cut into `NP`
    /// nearly equal runs, one per process.
    Block,
    /// Selfscheduled through a shared counter, claiming `chunk` trips per
    /// lock round-trip.  `chunk: 1` is the paper's §4.2 `Selfsched DO`.
    Selfsched {
        /// Trips claimed per counter acquisition; must be positive.
        chunk: u64,
    },
    /// Guided selfscheduling: chunk sizes taper with the remaining work
    /// (`max(remaining / (2·NP), min_chunk)`), so the early claims are
    /// big and the tail is balanced at single-trip granularity.
    Guided {
        /// Smallest chunk the taper is allowed to reach (at least 1).
        min_chunk: u64,
    },
    /// Work stealing: every process is seeded with a block of trips in
    /// its own deque and steals FIFO from the others when it runs dry.
    Steal,
}

impl Default for SchedulePolicy {
    /// The paper's default dynamic policy: §4.2 selfscheduling, one trip
    /// per claim.
    fn default() -> Self {
        SchedulePolicy::Selfsched { chunk: 1 }
    }
}

impl SchedulePolicy {
    /// A short stable name for reports and benchmark artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::Cyclic => "cyclic",
            SchedulePolicy::Block => "block",
            SchedulePolicy::Selfsched { chunk: 1 } => "selfsched",
            SchedulePolicy::Selfsched { .. } => "selfsched_chunked",
            SchedulePolicy::Guided { .. } => "guided",
            SchedulePolicy::Steal => "steal",
        }
    }

    /// Every policy family with representative parameters, in a stable
    /// order (used by benchmarks and structural tests).
    pub fn all() -> [SchedulePolicy; 6] {
        [
            SchedulePolicy::Cyclic,
            SchedulePolicy::Block,
            SchedulePolicy::Selfsched { chunk: 1 },
            SchedulePolicy::Selfsched { chunk: 16 },
            SchedulePolicy::Guided { min_chunk: 1 },
            SchedulePolicy::Steal,
        ]
    }
}

/// Outcome of one steal sweep over the other processes' deques.
#[derive(Debug)]
pub struct StealOutcome<T> {
    /// The stolen item and the pid it was taken from, if any victim had
    /// work.
    pub taken: Option<(usize, T)>,
    /// Number of empty deques probed during the sweep (the
    /// `steal_attempts_failed` contribution).
    pub failed_probes: u64,
}

/// One work deque per process: owner pushes and pops LIFO at the back,
/// thieves steal FIFO from the front.
///
/// Built only on [`crate::portable::Mutex`] — a mutex per deque, cache
/// padded so two owners never share a line.  Uncontended operations take
/// exactly one short critical section; there is no global lock.
#[derive(Debug)]
pub struct WorkQueues<T> {
    queues: Vec<CachePadded<Mutex<VecDeque<T>>>>,
}

impl<T> WorkQueues<T> {
    /// One empty deque per process (`nproc` is clamped to at least 1).
    pub fn new(nproc: usize) -> Self {
        let n = nproc.max(1);
        WorkQueues {
            queues: (0..n)
                .map(|_| CachePadded::new(Mutex::new(VecDeque::new())))
                .collect(),
        }
    }

    /// Number of per-process deques.
    pub fn nqueues(&self) -> usize {
        self.queues.len()
    }

    /// Push onto `pid`'s own deque (LIFO end).  `pid` out of range folds
    /// onto deque 0 so a caller outside a force still has a home deque.
    pub fn push(&self, pid: usize, item: T) {
        let q = &self.queues[if pid < self.queues.len() { pid } else { 0 }];
        q.lock().push_back(item);
    }

    /// Pop from `pid`'s own deque: newest item first (LIFO).
    pub fn pop(&self, pid: usize) -> Option<T> {
        let q = &self.queues[if pid < self.queues.len() { pid } else { 0 }];
        q.lock().pop_back()
    }

    /// Sweep the other deques starting at `pid + 1`, taking the *oldest*
    /// item (FIFO end) of the first non-empty one.
    ///
    /// The caller is responsible for feeding `failed_probes` (and a
    /// success) into the machine's operation counters; the deque itself
    /// stays accounting-free so it can be used outside any machine.
    pub fn steal(&self, pid: usize) -> StealOutcome<T> {
        let n = self.queues.len();
        let mut failed_probes = 0u64;
        for k in 1..n {
            let victim = (pid + k) % n;
            if let Some(item) = self.queues[victim].lock().pop_front() {
                return StealOutcome {
                    taken: Some((victim, item)),
                    failed_probes,
                };
            }
            failed_probes += 1;
        }
        StealOutcome {
            taken: None,
            failed_probes,
        }
    }

    /// True when every deque is empty at the instant each is inspected.
    ///
    /// Not a global snapshot: the deques are checked one at a time, so
    /// concurrent pushes can race this.  Callers that need a stable
    /// answer must hold their own serialization (the Askfor termination
    /// protocol checks under its pot mutex, through which every post
    /// passes).
    pub fn all_empty(&self) -> bool {
        self.queues.iter().all(|q| q.lock().is_empty())
    }

    /// Number of items currently in `pid`'s deque.
    pub fn len(&self, pid: usize) -> usize {
        let q = &self.queues[if pid < self.queues.len() { pid } else { 0 }];
        q.lock().len()
    }

    /// True when `pid`'s own deque is empty.
    pub fn is_empty(&self, pid: usize) -> bool {
        self.len(pid) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_papers_selfsched() {
        assert_eq!(
            SchedulePolicy::default(),
            SchedulePolicy::Selfsched { chunk: 1 }
        );
    }

    #[test]
    fn policy_names_are_stable_and_distinct() {
        let names: Vec<&str> = SchedulePolicy::all().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "cyclic",
                "block",
                "selfsched",
                "selfsched_chunked",
                "guided",
                "steal"
            ]
        );
    }

    #[test]
    fn owner_pops_lifo() {
        let q = WorkQueues::new(2);
        q.push(0, 1);
        q.push(0, 2);
        q.push(0, 3);
        assert_eq!(q.pop(0), Some(3));
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(0), Some(1));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn thief_steals_fifo_from_the_first_nonempty_victim() {
        let q = WorkQueues::new(3);
        q.push(2, 10);
        q.push(2, 11);
        // pid 0 sweeps 1 (empty, one failed probe) then 2.
        let s = q.steal(0);
        assert_eq!(s.taken, Some((2, 10)));
        assert_eq!(s.failed_probes, 1);
        // The owner's next pop still sees its newest item.
        assert_eq!(q.pop(2), Some(11));
    }

    #[test]
    fn steal_from_all_empty_reports_every_probe_failed() {
        let q: WorkQueues<u32> = WorkQueues::new(4);
        let s = q.steal(1);
        assert!(s.taken.is_none());
        assert_eq!(s.failed_probes, 3);
        assert!(q.all_empty());
    }

    #[test]
    fn a_thief_never_steals_from_itself() {
        let q = WorkQueues::new(2);
        q.push(1, 42);
        let s = q.steal(1);
        assert!(s.taken.is_none(), "{s:?}");
        assert_eq!(q.len(1), 1);
    }

    #[test]
    fn out_of_range_pid_folds_onto_deque_zero() {
        let q = WorkQueues::new(1);
        q.push(7, 5);
        assert_eq!(q.len(0), 1);
        assert_eq!(q.pop(9), Some(5));
    }

    #[test]
    fn zero_process_queues_are_clamped_to_one() {
        let q: WorkQueues<u8> = WorkQueues::new(0);
        assert_eq!(q.nqueues(), 1);
        assert!(q.steal(0).taken.is_none());
        assert_eq!(q.steal(0).failed_probes, 0);
    }

    #[test]
    fn concurrent_push_pop_steal_is_exact() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let nproc = 4;
        let per = 500u64;
        let q = WorkQueues::new(nproc);
        for pid in 0..nproc {
            for v in 0..per {
                q.push(pid, v + 1);
            }
        }
        let sum = AtomicU64::new(0);
        let taken = AtomicU64::new(0);
        std::thread::scope(|s| {
            for pid in 0..nproc {
                let (q, sum, taken) = (&q, &sum, &taken);
                s.spawn(move || loop {
                    let item = q.pop(pid).or_else(|| {
                        let s = q.steal(pid);
                        s.taken.map(|(_, it)| it)
                    });
                    match item {
                        Some(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                            taken.fetch_add(1, Ordering::Relaxed);
                        }
                        None => break,
                    }
                });
            }
        });
        // Every seeded item consumed exactly once.  (Workers may exit
        // while another still holds items, but nothing is seeded after
        // start, so a miss would show up as a short count.)
        let expect = nproc as u64 * per * (per + 1) / 2;
        let drained: u64 = (0..nproc).map(|p| q.len(p) as u64).sum();
        assert_eq!(taken.load(Ordering::Relaxed) + drained, nproc as u64 * per);
        assert!(sum.load(Ordering::Relaxed) <= expect);
        assert_eq!(
            sum.load(Ordering::Relaxed)
                + (0..nproc)
                    .map(|p| {
                        let mut rest = 0;
                        while let Some(v) = q.pop(p) {
                            rest += v;
                        }
                        rest
                    })
                    .sum::<u64>(),
            expect
        );
    }
}
