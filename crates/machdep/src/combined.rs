//! Combined lock — the Flex/32 lock personality.
//!
//! §4.1.3: "combined lock: spinlock for limited time, then make operating
//! system call (Flex)".  The acquire path spins on a test&set word for a
//! bounded number of attempts; if the lock is still held it falls back to
//! parking in the "operating system" (mutex + condvar).  Short critical
//! sections therefore pay spin-lock cost, long ones syscall cost — the
//! rationale behind the Flex design, measured in EXP-5.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::fault;
use crate::lock::{LockKind, LockState, RawLock};
use crate::portable::{Backoff, Condvar, Mutex};
use crate::stats::OpStats;

/// Default number of spin attempts before falling back to the OS.
pub const DEFAULT_SPIN_LIMIT: u32 = 64;

/// A spin-then-park binary semaphore.
pub struct CombinedLock {
    locked: AtomicBool,
    /// Guards the sleep/wake protocol only; the lock state itself lives in
    /// `locked` so the fast path never touches the mutex.
    wait: Mutex<()>,
    cond: Condvar,
    spin_limit: u32,
    stats: Arc<OpStats>,
}

impl CombinedLock {
    /// Create a combined lock with the default spin limit.
    pub fn new(initial: LockState, stats: Arc<OpStats>) -> Self {
        Self::with_spin_limit(initial, DEFAULT_SPIN_LIMIT, stats)
    }

    /// Create a combined lock that spins `spin_limit` times before parking.
    pub fn with_spin_limit(initial: LockState, spin_limit: u32, stats: Arc<OpStats>) -> Self {
        OpStats::count(&stats.locks_created);
        CombinedLock {
            locked: AtomicBool::new(initial == LockState::Locked),
            wait: Mutex::new(()),
            cond: Condvar::new(),
            spin_limit,
            stats,
        }
    }
}

impl RawLock for CombinedLock {
    fn lock(&self) {
        // Phase 1: bounded spin.  An injected spurious failure is accounted
        // as one failed attempt.
        let backoff = Backoff::new();
        let mut spun: u64 = u64::from(fault::spurious_lock_failure());
        for _ in 0..self.spin_limit {
            if !self.locked.swap(true, Ordering::Acquire) {
                OpStats::count(&self.stats.lock_acquires);
                if spun > 0 {
                    OpStats::count(&self.stats.lock_contended);
                    OpStats::add(&self.stats.spin_retries, spun);
                }
                crate::trace::lock_acquired(spun > 0);
                return;
            }
            spun += 1;
            backoff.spin();
        }
        OpStats::add(&self.stats.spin_retries, spun);
        OpStats::count(&self.stats.lock_contended);

        // Phase 2: give up the processor.  Holding `wait` while testing the
        // flag and while the releaser notifies closes the missed-wakeup
        // window.
        OpStats::count(&self.stats.syscalls);
        let mut guard = self.wait.lock();
        if !self.locked.swap(true, Ordering::Acquire) {
            OpStats::count(&self.stats.lock_acquires);
            crate::trace::lock_acquired(true);
            return;
        }
        // One park per blocking episode (a cancellable wait is sliced into
        // short timed waits, which must not each be billed as a park).
        OpStats::count(&self.stats.parks);
        let _park = fault::parked(fault::Construct::Lock);
        loop {
            fault::cancellable_wait(&self.cond, &mut guard);
            if !self.locked.swap(true, Ordering::Acquire) {
                OpStats::count(&self.stats.lock_acquires);
                crate::trace::lock_acquired(true);
                return;
            }
        }
    }

    fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
        // Take the wait mutex so a waiter between its flag test and its
        // `wait()` cannot miss this notification.
        let _guard = self.wait.lock();
        self.cond.notify_one();
        OpStats::count(&self.stats.lock_releases);
    }

    fn try_lock(&self) -> bool {
        // Test first (see `SpinLock::try_lock`): a failed try must not
        // write to the lock word.
        if self.locked.load(Ordering::Relaxed) || self.locked.swap(true, Ordering::Acquire) {
            OpStats::count(&self.stats.lock_contended);
            return false;
        }
        OpStats::count(&self.stats.lock_acquires);
        true
    }

    fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    fn kind(&self) -> LockKind {
        LockKind::Combined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    fn mk(initial: LockState) -> (Arc<CombinedLock>, Arc<OpStats>) {
        let stats = Arc::new(OpStats::new());
        (
            Arc::new(CombinedLock::new(initial, Arc::clone(&stats))),
            stats,
        )
    }

    #[test]
    fn uncontended_acquire_never_syscalls() {
        let (l, stats) = mk(LockState::Unlocked);
        l.lock();
        l.unlock();
        let s = stats.snapshot();
        assert_eq!(s.syscalls, 0, "fast path must avoid the OS");
        assert_eq!(s.lock_acquires, 1);
    }

    #[test]
    fn long_hold_forces_parking() {
        let (l, stats) = mk(LockState::Locked);
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || {
            l2.lock();
            l2.unlock();
        });
        // Keep it held long enough that the waiter exhausts its spin budget.
        std::thread::sleep(Duration::from_millis(50));
        l.unlock();
        t.join().unwrap();
        let s = stats.snapshot();
        assert!(s.syscalls >= 1, "waiter should have fallen back to the OS");
        assert!(s.spin_retries >= 1, "waiter should have spun first");
    }

    #[test]
    fn initially_locked_and_cross_thread_unlock() {
        let (l, _) = mk(LockState::Locked);
        assert!(!l.try_lock());
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || l2.unlock());
        l.lock();
        t.join().unwrap();
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let (l, _) = mk(LockState::Unlocked);
        let counter = Arc::new(AtomicU64::new(0));
        let inside = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let l = Arc::clone(&l);
                let counter = Arc::clone(&counter);
                let inside = Arc::clone(&inside);
                s.spawn(move || {
                    for _ in 0..300 {
                        l.lock();
                        assert!(!inside.swap(true, Ordering::SeqCst));
                        counter.fetch_add(1, Ordering::Relaxed);
                        inside.store(false, Ordering::SeqCst);
                        l.unlock();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 300);
    }

    #[test]
    fn custom_spin_limit_zero_goes_straight_to_os() {
        let stats = Arc::new(OpStats::new());
        let l = Arc::new(CombinedLock::with_spin_limit(
            LockState::Locked,
            0,
            Arc::clone(&stats),
        ));
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || {
            l2.lock();
        });
        std::thread::sleep(Duration::from_millis(10));
        l.unlock();
        t.join().unwrap();
        assert!(stats.snapshot().syscalls >= 1);
    }
}
