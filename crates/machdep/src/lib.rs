//! # force-machdep — the machine-dependent layer of The Force
//!
//! This crate is the Rust rendering of §4.1 of Jordan, Benten, Alaghband &
//! Jakob, *The Force: A Highly Portable Parallel Programming Language*
//! (ICPP 1989): the small set of machine-dependent primitives on which the
//! whole language is built, together with six simulated *machine
//! personalities* standing in for the multiprocessors that hosted the
//! original implementation.
//!
//! The paper's machine-dependent macro list maps to this crate as follows:
//!
//! | paper macro | here |
//! |---|---|
//! | `force_environment` | [`env::ForceEnvironment`] |
//! | `define_lock` / `init_lock` / `lock` / `unlock` | [`lock::RawLock`] and its four implementations |
//! | `shared` / `shared_common` / `async` / `private` | [`sharedmem::SharingModel`] + [`sharedmem::SharedRegion`] |
//! | process creation / driver / `Join` | [`process::ProcessModel`], [`process::spawn_force`] |
//!
//! Everything above this crate (force-core, force-prep, force-fortran) is
//! machine independent and consumes only these interfaces — which is the
//! paper's portability thesis made into a crate boundary.

#![warn(missing_docs)]

pub mod combined;
pub mod cost;
pub mod env;
pub mod fault;
pub mod fullempty;
pub mod linkreg;
pub mod lock;
pub mod lockpool;
pub mod machine;
pub mod pool;
pub mod portable;
pub mod process;
pub mod serve;
pub mod sharedmem;
pub mod spin;
pub mod stats;
pub mod syscall_lock;
pub mod trace;
pub mod workq;

pub use cost::{CostModel, CycleAccount};
pub use env::ForceEnvironment;
pub use fault::{
    Construct, ExecutorChoice, FaultConfig, FaultInjection, FaultPlane, ProcessFault, RunOptions,
};
pub use fullempty::{FullEmptyState, HepLock};
pub use lock::{with_lock, LockHandle, LockKind, LockState, RawLock};
pub use machine::{Machine, MachineId, MachineSpec};
pub use pool::ForcePool;
pub use portable::{Backoff, CachePadded, Condvar, Mutex, XorShift64};
pub use process::{spawn_force, spawn_force_plane, ChildPrivateInit, ProcessModel};
pub use serve::{
    ForceServer, JobCx, JobError, JobHandle, JobOutcome, JobRunner, JobSpec, JobYield, Priority,
    RejectReason, ServerConfig, ServerReport, Submit, TenantRollup,
};
pub use sharedmem::{
    BlockRequest, SharedLayout, SharedRegion, SharingError, SharingModel, SharingModelId,
};
pub use stats::{OpStats, StatsSnapshot};
pub use trace::{
    ConstructProfile, HistogramSnapshot, NamedLockProfile, ProfileReport, TraceConfig, TraceEvent,
    TraceSink,
};
pub use workq::{SchedulePolicy, StealOutcome, WorkQueues};
