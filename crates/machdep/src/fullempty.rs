//! Hardware full/empty access state — the HEP personality.
//!
//! The Denelcor HEP attached a full/empty bit to *every* memory cell and
//! implemented produce/consume waits in hardware (§4.1.3, §4.2).  A
//! [`FullEmptyState`] reproduces that state machine: a word is EMPTY,
//! FULL, or momentarily BUSY while a produce/consume is transferring the
//! value.  The BUSY window is what lets a separate (non-atomic) value slot
//! be written race-free next to the state word.
//!
//! On the HEP, locks were just full/empty words: `lock` = consume a token,
//! `unlock` = produce it back.  [`HepLock`] implements [`RawLock`] that way.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crate::fault;
use crate::lock::{LockKind, LockState, RawLock};
use crate::portable::Backoff;
use crate::stats::OpStats;

const EMPTY: u8 = 0;
const FULL: u8 = 1;
const BUSY: u8 = 2;

/// The full/empty tag of one memory cell, with HEP-style blocking
/// transitions.
pub struct FullEmptyState {
    state: AtomicU8,
    stats: Arc<OpStats>,
}

impl FullEmptyState {
    /// Create a cell whose tag starts EMPTY.
    pub fn new_empty(stats: Arc<OpStats>) -> Self {
        FullEmptyState {
            state: AtomicU8::new(EMPTY),
            stats,
        }
    }

    /// Create a cell whose tag starts FULL.
    pub fn new_full(stats: Arc<OpStats>) -> Self {
        FullEmptyState {
            state: AtomicU8::new(FULL),
            stats,
        }
    }

    fn transition(&self, from: u8, to: u8) {
        let backoff = Backoff::new();
        let mut park = None;
        loop {
            match self
                .state
                .compare_exchange(from, to, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(_) => {
                    // Blocked on the cell's tag: publish that on the wait
                    // board and stay responsive to cancellation (a HEP wait
                    // has no OS to deschedule into, so it spins).
                    park.get_or_insert_with(|| fault::parked(fault::Construct::Lock));
                    fault::check_cancel();
                    OpStats::count(&self.stats.spin_retries);
                    backoff.snooze();
                }
            }
        }
    }

    fn try_transition(&self, from: u8, to: u8) -> bool {
        // Test first: a compare-exchange is a RMW that takes the line
        // exclusive even when it fails, so `Async::void`/`is_full` polling
        // loops would otherwise storm the coherence protocol.
        if self.state.load(Ordering::Relaxed) != from {
            return false;
        }
        self.state
            .compare_exchange(from, to, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Begin a consume: wait until FULL, then claim exclusive access.
    /// Must be followed by [`release_empty`](Self::release_empty).
    pub fn acquire_full(&self) {
        self.transition(FULL, BUSY);
        OpStats::count(&self.stats.fe_consumes);
        crate::trace::fe_consumed();
    }

    /// Finish a consume: the cell becomes EMPTY.
    pub fn release_empty(&self) {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), BUSY);
        self.state.store(EMPTY, Ordering::Release);
    }

    /// Begin a produce: wait until EMPTY, then claim exclusive access.
    /// Must be followed by [`release_full`](Self::release_full).
    pub fn acquire_empty(&self) {
        self.transition(EMPTY, BUSY);
        OpStats::count(&self.stats.fe_produces);
        crate::trace::fe_produced();
    }

    /// Finish a produce: the cell becomes FULL.
    pub fn release_full(&self) {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), BUSY);
        self.state.store(FULL, Ordering::Release);
    }

    /// Non-blocking consume attempt. On success the caller holds the BUSY
    /// window and must call [`release_empty`](Self::release_empty).
    pub fn try_acquire_full(&self) -> bool {
        let ok = self.try_transition(FULL, BUSY);
        if ok {
            OpStats::count(&self.stats.fe_consumes);
            crate::trace::fe_consumed();
        }
        ok
    }

    /// Non-blocking produce attempt. On success the caller holds the BUSY
    /// window and must call [`release_full`](Self::release_full).
    pub fn try_acquire_empty(&self) -> bool {
        let ok = self.try_transition(EMPTY, BUSY);
        if ok {
            OpStats::count(&self.stats.fe_produces);
            crate::trace::fe_produced();
        }
        ok
    }

    /// Force the tag to EMPTY regardless of its previous state (the Void
    /// operation, §4.2).  Waits out any in-flight BUSY window.
    pub fn void(&self) {
        let backoff = Backoff::new();
        loop {
            match self.state.load(Ordering::Acquire) {
                EMPTY => return,
                FULL => {
                    if self.try_transition(FULL, EMPTY) {
                        return;
                    }
                }
                _ => {
                    fault::check_cancel();
                    backoff.snooze();
                }
            }
        }
    }

    /// Whether the tag is currently FULL.  Inherently racy; the Force only
    /// uses it for state *tests* (§3.4).
    pub fn is_full(&self) -> bool {
        self.state.load(Ordering::Acquire) == FULL
    }
}

/// A HEP lock: a full/empty word used as a binary semaphore.
///
/// Unlocked = the word holds a token (FULL); `lock` consumes it, `unlock`
/// produces it back.
pub struct HepLock {
    fe: FullEmptyState,
    stats: Arc<OpStats>,
}

impl HepLock {
    /// Create a HEP lock in the given initial state.
    pub fn new(initial: LockState, stats: Arc<OpStats>) -> Self {
        OpStats::count(&stats.locks_created);
        let fe = match initial {
            LockState::Unlocked => FullEmptyState::new_full(Arc::clone(&stats)),
            LockState::Locked => FullEmptyState::new_empty(Arc::clone(&stats)),
        };
        HepLock { fe, stats }
    }
}

impl RawLock for HepLock {
    fn lock(&self) {
        // Consume the token: FULL -> BUSY -> EMPTY.  Contention shows up
        // in the trace as park/unpark around the transition, so the
        // acquire event itself is stamped uncontended.
        self.fe.acquire_full();
        self.fe.release_empty();
        OpStats::count(&self.stats.lock_acquires);
        crate::trace::lock_acquired(false);
    }

    fn unlock(&self) {
        // Produce the token back: EMPTY -> BUSY -> FULL.
        self.fe.acquire_empty();
        self.fe.release_full();
        OpStats::count(&self.stats.lock_releases);
    }

    fn try_lock(&self) -> bool {
        if self.fe.try_acquire_full() {
            self.fe.release_empty();
            OpStats::count(&self.stats.lock_acquires);
            true
        } else {
            OpStats::count(&self.stats.lock_contended);
            false
        }
    }

    fn is_locked(&self) -> bool {
        !self.fe.is_full()
    }

    fn kind(&self) -> LockKind {
        LockKind::FullEmpty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn stats() -> Arc<OpStats> {
        Arc::new(OpStats::new())
    }

    #[test]
    fn produce_then_consume_round_trip() {
        let fe = FullEmptyState::new_empty(stats());
        assert!(!fe.is_full());
        fe.acquire_empty();
        fe.release_full();
        assert!(fe.is_full());
        fe.acquire_full();
        fe.release_empty();
        assert!(!fe.is_full());
    }

    #[test]
    fn void_from_any_state() {
        let st = stats();
        let fe = FullEmptyState::new_full(Arc::clone(&st));
        fe.void();
        assert!(!fe.is_full());
        fe.void(); // idempotent on EMPTY
        assert!(!fe.is_full());
    }

    #[test]
    fn try_acquire_reflects_state() {
        let fe = FullEmptyState::new_empty(stats());
        assert!(!fe.try_acquire_full());
        assert!(fe.try_acquire_empty());
        fe.release_full();
        assert!(fe.try_acquire_full());
        fe.release_empty();
    }

    #[test]
    fn consume_blocks_until_produced() {
        let st = stats();
        let fe = Arc::new(FullEmptyState::new_empty(st));
        let fe2 = Arc::clone(&fe);
        let t = std::thread::spawn(move || {
            fe2.acquire_full(); // blocks until main produces
            fe2.release_empty();
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        fe.acquire_empty();
        fe.release_full();
        t.join().unwrap();
        assert!(!fe.is_full());
    }

    #[test]
    fn hep_lock_semantics() {
        let st = stats();
        let l = HepLock::new(LockState::Unlocked, Arc::clone(&st));
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
        assert_eq!(l.kind(), LockKind::FullEmpty);
    }

    #[test]
    fn hep_lock_mutual_exclusion() {
        let st = stats();
        let l = Arc::new(HepLock::new(LockState::Unlocked, st));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let l = Arc::clone(&l);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..300 {
                        l.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        l.unlock();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 300);
    }

    #[test]
    fn token_conservation_under_concurrency() {
        // Many producers and consumers alternating on one cell: the number
        // of completed consumes can never exceed completed produces.
        let st = stats();
        let fe = Arc::new(FullEmptyState::new_empty(Arc::clone(&st)));
        let n = 4;
        let rounds = 200;
        std::thread::scope(|s| {
            for _ in 0..n {
                let fe = Arc::clone(&fe);
                s.spawn(move || {
                    for _ in 0..rounds {
                        fe.acquire_empty();
                        fe.release_full();
                        fe.acquire_full();
                        fe.release_empty();
                    }
                });
            }
        });
        let snap = st.snapshot();
        assert_eq!(snap.fe_produces, snap.fe_consumes);
        assert_eq!(snap.fe_produces, n * rounds);
        assert!(!fe.is_full());
    }
}
