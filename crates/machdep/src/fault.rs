//! The fault plane: cancellation propagation, construct attribution, a
//! deadlock watchdog, and deterministic fault injection.
//!
//! The paper's force model assumes every process survives to `Join`.  A
//! panic in one process would therefore leave its peers blocked forever
//! in a barrier, a `Consume`, an `Askfor` idle wait, or a lock queue.
//! This module makes that failure mode *structured*: every force runs
//! under a [`FaultPlane`] holding a cancellation token that every
//! blocking wait loop in the machine-dependent layer observes.
//!
//! The pieces:
//!
//! * [`FaultPlane`] — per-force token + wait board + configuration.  A
//!   panic (trapped per thread by [`crate::process::spawn_force_plane`])
//!   or an interpreter runtime error ([`trip_current`]) *trips* the
//!   plane; the first fault wins and is reported as a [`ProcessFault`].
//! * A thread-local context, installed by `spawn_force_plane` for each
//!   process of the force, through which the lock/full-empty wait loops
//!   observe the token without threading a handle through every
//!   constructor ([`check_cancel`], [`cancellable_wait`]).
//! * Construct markers ([`enter`]) — an RAII stack recording which Force
//!   construct a process is executing, so faults and watchdog reports can
//!   say *where* ("barrier", "critical", "consume", ...) a process died
//!   or is parked.
//! * A wait board ([`parked`]) — per-pid state (running/parked/finished)
//!   sampled by the deadlock watchdog ([`FaultPlane::run_watchdog`]),
//!   which declares a fault when every live process is parked and no
//!   progress counter has moved for a full watchdog bound.
//! * Fault injection ([`FaultInjection`]) — a hermetic,
//!   [`XorShift64`]-seeded layer that can inject panics and delays at
//!   construct boundaries and spurious failures into lock acquisition,
//!   to exercise all of the above deterministically in tests.
//!
//! Cancellation unwinds a blocked process with a private [`Cancelled`]
//! payload via `resume_unwind` (bypassing the panic hook, so cancelled
//! peers do not spam stderr with backtraces); `spawn_force_plane` absorbs
//! those unwinds and reports only the originating fault.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::portable::{CachePadded, Condvar, Mutex, MutexGuard, XorShift64};
use crate::stats::OpStats;
use crate::trace::{self, ProfileReport, TraceConfig, TraceSink};
use crate::workq::SchedulePolicy;

/// Which Force construct a process is executing or blocked in.  Used for
/// fault attribution ("pid 2 faulted in critical") and watchdog reports
/// ("pid 1 parked in consume").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Construct {
    /// Plain program text outside any construct.
    Body,
    /// A raw lock acquisition not attributable to a higher construct.
    Lock,
    /// A barrier (two-lock or any of the \[AJ87\] suite).
    Barrier,
    /// A named critical section.
    Critical,
    /// `Produce` on an asynchronous variable.
    Produce,
    /// `Consume` on an asynchronous variable.
    Consume,
    /// `Copy` on an asynchronous variable.
    Copy,
    /// `Void` on an asynchronous variable.
    Void,
    /// The Askfor work pot (including its idle wait).
    Askfor,
    /// A DOALL loop (prescheduled or selfscheduled).
    Doall,
    /// A Pcase statement.
    Pcase,
    /// A Resolve component.
    Resolve,
    /// Interpreted Force-Fortran code (`force-fortran` engine).
    Interpreter,
}

/// The board/construct table, indexable by discriminant.
const CONSTRUCTS: [Construct; 13] = [
    Construct::Body,
    Construct::Lock,
    Construct::Barrier,
    Construct::Critical,
    Construct::Produce,
    Construct::Consume,
    Construct::Copy,
    Construct::Void,
    Construct::Askfor,
    Construct::Doall,
    Construct::Pcase,
    Construct::Resolve,
    Construct::Interpreter,
];

impl Construct {
    /// Human-readable construct name, matching the paper's vocabulary.
    pub fn name(self) -> &'static str {
        match self {
            Construct::Body => "body",
            Construct::Lock => "lock",
            Construct::Barrier => "barrier",
            Construct::Critical => "critical",
            Construct::Produce => "produce",
            Construct::Consume => "consume",
            Construct::Copy => "copy",
            Construct::Void => "void",
            Construct::Askfor => "askfor",
            Construct::Doall => "doall",
            Construct::Pcase => "pcase",
            Construct::Resolve => "resolve",
            Construct::Interpreter => "interpreter",
        }
    }

    /// Stable discriminant of the construct (its position in the
    /// board/construct table); the inverse of [`from_index`](Self::from_index).
    pub fn index(self) -> usize {
        CONSTRUCTS
            .iter()
            .position(|&c| c == self)
            .expect("in table")
    }

    /// The construct with the given discriminant (`Body` when out of
    /// range).
    pub fn from_index(i: usize) -> Construct {
        CONSTRUCTS.get(i).copied().unwrap_or(Construct::Body)
    }
}

/// A structured process fault: which process failed, in which construct,
/// and the fault description (panic message, interpreter error, or
/// watchdog report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessFault {
    /// The faulting process identifier (for a watchdog trip, a parked
    /// representative).
    pub pid: usize,
    /// The construct the process faulted in (see [`Construct::name`]).
    pub construct: &'static str,
    /// The fault payload: a panic message, an interpreter error, or the
    /// watchdog's no-progress report.
    pub payload: String,
}

impl fmt::Display for ProcessFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "process {} faulted in {}: {}",
            self.pid, self.construct, self.payload
        )
    }
}

impl std::error::Error for ProcessFault {}

/// The private unwind payload used to cancel blocked peers.  Carried via
/// `resume_unwind`, so the panic hook never fires for a cancellation.
pub struct Cancelled;

/// Deterministic fault-injection configuration.  All probabilities are in
/// per-mille (0..=1000) and are rolled on a per-process [`XorShift64`]
/// stream derived from `seed` and the pid, so a given (config, program,
/// nproc) triple injects the same faults in the same processes on every
/// run — the layer is hermetic by construction.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjection {
    /// Base seed; each process derives its own stream from `seed ^ f(pid)`.
    pub seed: u64,
    /// Per-mille chance that a construct boundary panics.
    pub panic_per_mille: u32,
    /// Per-mille chance that a construct boundary sleeps a few microseconds
    /// (perturbs interleavings without changing results).
    pub delay_per_mille: u32,
    /// Per-mille chance that a lock acquisition reports one spurious
    /// failed attempt before proceeding (exercises contended paths).
    pub spurious_per_mille: u32,
}

impl FaultInjection {
    /// An inert configuration with the given seed (no faults until a
    /// probability is raised).
    pub fn with_seed(seed: u64) -> Self {
        FaultInjection {
            seed,
            panic_per_mille: 0,
            delay_per_mille: 0,
            spurious_per_mille: 0,
        }
    }
}

/// Which executor a language front end uses for compiled program units.
///
/// The machine-dependent layer defines the knob (it lives in the shared
/// [`RunOptions`]) but attaches no behavior to it; the `force-fortran`
/// engine reads it to pick between its bytecode VM and the original
/// tree-walking interpreter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExecutorChoice {
    /// Consult the `FORCE_EXECUTOR` environment variable (`tree` /
    /// `bytecode`); when unset, use the bytecode VM.
    #[default]
    Auto,
    /// The compiled bytecode VM (the default execution path).
    Bytecode,
    /// The AST tree-walking interpreter (the reference semantics).
    TreeWalk,
}

/// Per-force fault-plane configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Deadlock watchdog bound; `None` (the default) disables the
    /// watchdog.
    pub watchdog: Option<Duration>,
    /// Fault injection; `None` (the default) injects nothing.
    pub injection: Option<FaultInjection>,
    /// Construct-level tracing ([`crate::trace`]); `None` (the default)
    /// records nothing and keeps every trace hook a single thread-local
    /// `Option` test.
    pub trace: Option<TraceConfig>,
    /// Work-distribution policy used by scheduling constructs that do not
    /// carry an explicit per-loop override.  Defaults to the paper's §4.2
    /// selfscheduling (`Selfsched { chunk: 1 }`).
    pub default_schedule: SchedulePolicy,
    /// Executor used by the language front end for this run (ignored by
    /// the native API).
    pub executor: ExecutorChoice,
}

/// Per-run options for a reusable execution session: the deadlock
/// watchdog bound and the fault injection applied to *one* job.  An
/// alias of [`FaultConfig`] — a resident session re-arms its plane with
/// these at the start of every run
/// ([`FaultPlane::reset_for_job`]), so a shared pooled force or engine
/// can be configured per job without `&mut` access.
pub type RunOptions = FaultConfig;

/// Wait-board states (low two bits of each board word).
const RUNNING: usize = 0;
const PARKED: usize = 1;
const FINISHED: usize = 2;
const STATE_MASK: usize = 0b11;

/// The per-force fault plane: cancellation token, first-fault slot, wait
/// board, and configuration.  One is created per force execution (or per
/// [`crate::process::spawn_force`] call) and shared by every process.
pub struct FaultPlane {
    nproc: usize,
    stats: Arc<OpStats>,
    /// Per-job configuration.  Behind a mutex so a resident session can
    /// swap it between jobs ([`reset_for_job`](Self::reset_for_job));
    /// the hot injection path never touches it — each process snapshots
    /// the injection config into its thread-local context at install.
    config: Mutex<FaultConfig>,
    /// The cancellation token.  Set (with `Release`) only after the first
    /// fault has been recorded, so an observer that sees the trip can
    /// read the fault.
    tripped: AtomicBool,
    fault: Mutex<Option<ProcessFault>>,
    /// The first genuine panic's original payload, kept so the legacy
    /// panic-propagating entry points can re-raise it verbatim.
    payload: Mutex<Option<Box<dyn Any + Send>>>,
    /// Wait board: per-pid `state | construct_index << 2`.
    board: Vec<CachePadded<AtomicUsize>>,
    /// The job's trace sink, when tracing is armed.  Behind a mutex for
    /// the same reason as `config`; each process snapshots the `Arc` into
    /// its thread-local context at install, so trace hooks never take it.
    trace: Mutex<Option<Arc<TraceSink>>>,
}

impl FaultPlane {
    /// A fresh, untripped plane for a force of `nproc` processes.
    pub fn new(nproc: usize, stats: Arc<OpStats>, config: FaultConfig) -> Arc<FaultPlane> {
        Arc::new(FaultPlane {
            nproc,
            stats,
            config: Mutex::new(config),
            tripped: AtomicBool::new(false),
            fault: Mutex::new(None),
            payload: Mutex::new(None),
            board: (0..nproc)
                .map(|_| CachePadded::new(AtomicUsize::new(RUNNING)))
                .collect(),
            trace: Mutex::new(config.trace.map(|t| TraceSink::new(nproc, t))),
        })
    }

    /// Number of processes the plane covers.
    pub fn nproc(&self) -> usize {
        self.nproc
    }

    /// The machine stats the plane accounts to.
    pub fn stats(&self) -> &Arc<OpStats> {
        &self.stats
    }

    /// The configured watchdog bound, if any.
    pub fn watchdog_interval(&self) -> Option<Duration> {
        self.config.lock().watchdog
    }

    /// The configured fault injection, if any.
    pub fn injection(&self) -> Option<FaultInjection> {
        self.config.lock().injection
    }

    /// The job's default work-distribution policy.
    pub fn default_schedule(&self) -> SchedulePolicy {
        self.config.lock().default_schedule
    }

    /// Re-arm the plane for a new job on a resident session: swap in the
    /// job's configuration, clear the cancellation token, the first-fault
    /// and payload slots, and return every wait-board entry to `RUNNING`.
    ///
    /// Must only be called between jobs (no process of a previous job
    /// still running under this plane); the session layers serialize
    /// their runs to guarantee that.  After the reset, a fault tripped by
    /// job *N* is invisible to job *N + 1*.
    pub fn reset_for_job(&self, config: FaultConfig) {
        {
            let mut sink = self.trace.lock();
            match config.trace {
                // Reuse the resident sink when its shape still fits (the
                // common pooled case): resetting in place is much cheaper
                // than reallocating rings every job.
                Some(t) => match sink.as_ref() {
                    Some(s) if s.capacity() == t.rounded_capacity() && s.nproc() == self.nproc => {
                        s.reset()
                    }
                    _ => *sink = Some(TraceSink::new(self.nproc, t)),
                },
                None => *sink = None,
            }
        }
        *self.config.lock() = config;
        *self.fault.lock() = None;
        *self.payload.lock() = None;
        for slot in &self.board {
            slot.store(RUNNING, Ordering::Release);
        }
        self.tripped.store(false, Ordering::Release);
    }

    /// The job's trace sink, when tracing is armed (shared; hot paths
    /// read the copy snapshotted into the thread-local context instead).
    pub fn trace_sink(&self) -> Option<Arc<TraceSink>> {
        self.trace.lock().clone()
    }

    /// Summarize the job's trace into a [`ProfileReport`] (`None` when
    /// tracing was not armed).  Call only at job quiescence.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.trace.lock().as_ref().map(|s| s.report())
    }

    /// Whether the cancellation token has been tripped.  Any blocking
    /// wait loop observing `true` must unwind via [`check_cancel`].
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }

    /// Trip the plane with a fault.  The first fault wins (later trips
    /// are counted but not recorded); `payload` optionally preserves the
    /// original panic payload for verbatim re-raising.
    pub fn trip(&self, fault: ProcessFault, payload: Option<Box<dyn Any + Send>>) {
        OpStats::count(&self.stats.faults_detected);
        {
            let mut slot = self.fault.lock();
            if slot.is_none() {
                *slot = Some(fault);
                if let Some(p) = payload {
                    *self.payload.lock() = Some(p);
                }
            }
        }
        self.tripped.store(true, Ordering::Release);
    }

    /// Take the recorded first fault (None if the plane never tripped).
    pub fn take_fault(&self) -> Option<ProcessFault> {
        self.fault.lock().take()
    }

    /// Take the preserved original panic payload, if any.
    pub fn take_payload(&self) -> Option<Box<dyn Any + Send>> {
        self.payload.lock().take()
    }

    fn set_board(&self, pid: usize, state: usize, construct: Construct) {
        if let Some(slot) = self.board.get(pid) {
            slot.store(state | (construct.index() << 2), Ordering::Release);
        }
    }

    /// Mark `pid` finished on the wait board (it can no longer deadlock).
    pub(crate) fn finish(&self, pid: usize) {
        self.set_board(pid, FINISHED, Construct::Body);
    }

    /// If every non-finished process is parked (and at least one is),
    /// return the lowest parked pid and its construct.
    fn all_parked(&self) -> Option<(usize, Construct)> {
        let mut witness = None;
        for (pid, slot) in self.board.iter().enumerate() {
            let word = slot.load(Ordering::Acquire);
            match word & STATE_MASK {
                FINISHED => {}
                PARKED => {
                    if witness.is_none() {
                        witness = Some((pid, Construct::from_index(word >> 2)));
                    }
                }
                _ => return None,
            }
        }
        witness
    }

    /// Counters whose movement proves the force is making progress.
    /// Excludes retry/park counters, which parked processes keep
    /// incrementing while stuck.
    fn progress_signature(&self) -> u64 {
        let g = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        g(&self.stats.lock_acquires)
            .wrapping_add(g(&self.stats.lock_releases))
            .wrapping_add(g(&self.stats.fe_produces))
            .wrapping_add(g(&self.stats.fe_consumes))
            .wrapping_add(g(&self.stats.barrier_episodes))
            .wrapping_add(g(&self.stats.processes_created))
    }

    /// The deadlock watchdog loop, run on its own thread by
    /// `spawn_force_plane` when a bound is configured.  Samples the wait
    /// board and the progress counters four times per bound; when every
    /// live process has stayed parked with no counter movement for a full
    /// bound, trips the plane with a report naming a parked pid and its
    /// construct.  Returns when `stop` is set (force joined), when the
    /// plane trips for any reason, or after its own trip.
    pub fn run_watchdog(&self, stop: &Mutex<bool>, stop_signal: &Condvar) {
        let Some(bound) = self.watchdog_interval() else {
            return;
        };
        let tick = (bound / 4).max(Duration::from_millis(1));
        let mut last_sig = self.progress_signature();
        let mut stagnant = 0u32;
        loop {
            {
                let mut stopped = stop.lock();
                if *stopped {
                    return;
                }
                stop_signal.wait_for(&mut stopped, tick);
                if *stopped {
                    return;
                }
            }
            if self.is_tripped() {
                return;
            }
            let sig = self.progress_signature();
            let parked = self.all_parked();
            if parked.is_some() && sig == last_sig {
                stagnant += 1;
            } else {
                stagnant = 0;
            }
            last_sig = sig;
            if stagnant >= 4 {
                let (pid, construct) = parked.expect("stagnant implies parked");
                OpStats::count(&self.stats.watchdog_trips);
                self.trip(
                    ProcessFault {
                        pid,
                        construct: construct.name(),
                        payload: format!(
                            "deadlock watchdog: no progress for {bound:?} with every live \
                             process parked (pid {pid} parked in {})",
                            construct.name()
                        ),
                    },
                    None,
                );
                return;
            }
        }
    }
}

/// The per-thread fault context: which plane and pid this thread belongs
/// to, plus the construct-marker stack top and the injection RNG.
struct Ctx {
    plane: Arc<FaultPlane>,
    pid: usize,
    construct: Cell<Construct>,
    /// The construct that was active when this thread started panicking
    /// (recorded by the innermost marker guard during unwind).
    panicked_in: Cell<Option<Construct>>,
    /// Injection config snapshotted at install time, so the per-operation
    /// roll never takes the plane's config mutex.
    injection: Option<FaultInjection>,
    /// Trace sink snapshotted at install time, for the same reason: the
    /// per-event hooks never take the plane's trace mutex.
    trace: Option<Arc<TraceSink>>,
    /// Default schedule snapshotted at install time, so scheduling
    /// constructs read the job's policy without taking the config mutex.
    schedule: SchedulePolicy,
    rng: RefCell<Option<XorShift64>>,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// RAII guard restoring the previous thread-local fault context.
pub(crate) struct CtxGuard {
    prev: Option<Ctx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Install the fault context for one force process on the current thread
/// (called by `spawn_force_plane`; nestable, the guard restores the outer
/// context).
pub(crate) fn install(plane: &Arc<FaultPlane>, pid: usize) -> CtxGuard {
    CTX.with(|c| {
        let prev = c.borrow_mut().replace(Ctx {
            plane: Arc::clone(plane),
            pid,
            construct: Cell::new(Construct::Body),
            panicked_in: Cell::new(None),
            injection: plane.injection(),
            trace: plane.trace_sink(),
            schedule: plane.default_schedule(),
            rng: RefCell::new(None),
        });
        CtxGuard { prev }
    })
}

/// Take the construct recorded at the moment the current thread started
/// panicking (used by `spawn_force_plane` to attribute a caught panic).
pub(crate) fn take_panicked_construct() -> Option<Construct> {
    CTX.with(|c| c.borrow().as_ref().and_then(|ctx| ctx.panicked_in.take()))
}

/// Run `f` with the current thread's trace sink, pid, and innermost
/// construct marker; `None` when the thread is outside a force or its
/// force is not tracing.  The single entry point for every trace hook.
#[inline]
pub(crate) fn with_trace<R>(f: impl FnOnce(&TraceSink, usize, Construct) -> R) -> Option<R> {
    CTX.with(|c| {
        let borrowed = c.borrow();
        let ctx = borrowed.as_ref()?;
        let sink = ctx.trace.as_ref()?;
        Some(f(sink, ctx.pid, ctx.construct.get()))
    })
}

/// RAII construct marker: the innermost active marker names the construct
/// for fault attribution and park reports.
pub struct ConstructGuard {
    prev: Option<Construct>,
    /// When tracing: the construct to close out and its enter stamp.
    timed: Option<(Construct, u64)>,
}

impl Drop for ConstructGuard {
    fn drop(&mut self) {
        let Some(prev) = self.prev else { return };
        let timed = self.timed.take();
        CTX.with(|c| {
            if let Some(ctx) = c.borrow().as_ref() {
                if std::thread::panicking() && ctx.panicked_in.get().is_none() {
                    ctx.panicked_in.set(Some(ctx.construct.get()));
                }
                ctx.construct.set(prev);
                if let Some((construct, t0)) = timed {
                    if let Some(sink) = ctx.trace.as_ref() {
                        trace::construct_exited(sink, ctx.pid, construct, t0);
                    }
                }
            }
        });
    }
}

/// Mark the current thread as executing `construct` until the returned
/// guard drops.  A no-op outside a force.
pub fn enter(construct: Construct) -> ConstructGuard {
    CTX.with(|c| match c.borrow().as_ref() {
        Some(ctx) => {
            let prev = ctx.construct.replace(construct);
            // Re-entering the construct already being executed (e.g. a
            // barrier primitive marked inside the barrier *statement*'s
            // own marker) keeps the fault attribution but does not open
            // a second trace span — the enclosing marker already times
            // the whole episode, and a nested span would double-count
            // the histogram and double the event volume.
            let timed = (prev != construct)
                .then(|| {
                    ctx.trace.as_ref().map(|sink| {
                        (
                            construct,
                            trace::construct_entered(sink, ctx.pid, construct),
                        )
                    })
                })
                .flatten();
            ConstructGuard {
                prev: Some(prev),
                timed,
            }
        }
        None => ConstructGuard {
            prev: None,
            timed: None,
        },
    })
}

/// The default work-distribution policy of the current thread's run
/// (snapshotted at process start; [`SchedulePolicy::default`] outside a
/// force).
pub fn current_default_schedule() -> SchedulePolicy {
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| ctx.schedule)
            .unwrap_or_default()
    })
}

/// The pid of the current thread within its force (`None` outside a
/// force).  Scheduling code uses this to address per-pid work deques
/// from contexts that do not carry a player reference.
pub fn current_pid() -> Option<usize> {
    CTX.with(|c| c.borrow().as_ref().map(|ctx| ctx.pid))
}

/// Account a steal-probe outcome to the current force's machine
/// counters: a successful theft bumps `steals`, and each victim found
/// empty bumps `steal_attempts_failed`.  A no-op outside a force.
pub fn count_steal(taken: bool, failed_probes: u64) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            if taken {
                OpStats::count(&ctx.plane.stats.steals);
            }
            if failed_probes > 0 {
                OpStats::add(&ctx.plane.stats.steal_attempts_failed, failed_probes);
            }
        }
    });
}

/// The construct the current thread is marked as executing (`Body` when
/// unmarked or outside a force).
pub fn current_construct() -> Construct {
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| ctx.construct.get())
            .unwrap_or(Construct::Body)
    })
}

/// Observe the cancellation token: if the force's plane has tripped,
/// unwind this thread with a [`Cancelled`] payload.  Every blocking wait
/// loop calls this once per retry; a no-op outside a force.
#[inline]
pub fn check_cancel() {
    let tripped = CTX.with(|c| {
        c.borrow()
            .as_ref()
            .is_some_and(|ctx| ctx.plane.is_tripped())
    });
    if tripped {
        cancel_now();
    }
}

#[cold]
fn cancel_now() -> ! {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            OpStats::count(&ctx.plane.stats.cancellations_observed);
        }
    });
    std::panic::resume_unwind(Box::new(Cancelled));
}

/// RAII wait-board entry: the pid shows as parked (in the innermost
/// active construct, or `fallback`) until the guard drops.
pub struct ParkGuard {
    plane: Option<Arc<FaultPlane>>,
    pid: usize,
    /// When tracing: the construct the wait was attributed to and its
    /// park stamp.
    trace: Option<(Construct, u64)>,
}

impl Drop for ParkGuard {
    fn drop(&mut self) {
        let Some(plane) = self.plane.take() else {
            return;
        };
        let traced = self.trace.take();
        // Restore `RUNNING` with the innermost *still-active* construct
        // marker, read at drop time — not `Construct::Body`.  A nested
        // blocking wait ending must not erase the enclosing construct's
        // attribution; that stays on the board until the enclosing
        // marker itself drops.
        CTX.with(|c| {
            let borrowed = c.borrow();
            let ctx = borrowed.as_ref();
            let construct = ctx
                .map(|ctx| ctx.construct.get())
                .unwrap_or(Construct::Body);
            plane.set_board(self.pid, RUNNING, construct);
            if let Some((attributed, t0)) = traced {
                if let Some(sink) = ctx.and_then(|ctx| ctx.trace.as_ref()) {
                    trace::park_ended(sink, self.pid, attributed, t0);
                }
            }
        });
    }
}

/// Publish on the wait board that the current process is about to block.
/// A no-op outside a force.
pub fn parked(fallback: Construct) -> ParkGuard {
    CTX.with(|c| match c.borrow().as_ref() {
        Some(ctx) => {
            let construct = match ctx.construct.get() {
                Construct::Body => fallback,
                marked => marked,
            };
            ctx.plane.set_board(ctx.pid, PARKED, construct);
            let trace = ctx
                .trace
                .as_ref()
                .map(|sink| (construct, trace::park_begun(sink, ctx.pid, construct)));
            ParkGuard {
                plane: Some(Arc::clone(&ctx.plane)),
                pid: ctx.pid,
                trace,
            }
        }
        None => ParkGuard {
            plane: None,
            pid: 0,
            trace: None,
        },
    })
}

/// A condvar wait that stays responsive to cancellation: inside a force
/// it waits in short timed slices and re-checks the token after each
/// wake; outside a force it degrades to a plain untimed wait.
pub fn cancellable_wait<T>(cond: &Condvar, guard: &mut MutexGuard<'_, T>) {
    let in_force = CTX.with(|c| c.borrow().is_some());
    if in_force {
        cond.wait_for(guard, Duration::from_millis(1));
        check_cancel();
    } else {
        cond.wait(guard);
    }
}

/// Trip the current force's plane from inside a process (used by the
/// interpreter to report a runtime error without panicking).  Returns
/// `false` when called outside a force.
pub fn trip_current(construct: Construct, payload: String) -> bool {
    let plane_pid = CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| (Arc::clone(&ctx.plane), ctx.pid))
    });
    match plane_pid {
        Some((plane, pid)) => {
            plane.trip(
                ProcessFault {
                    pid,
                    construct: construct.name(),
                    payload,
                },
                None,
            );
            true
        }
        None => false,
    }
}

enum Injected {
    Nothing,
    Delay(u64),
    Panic(usize),
}

fn roll(want_spurious: bool) -> Injected {
    let rolled = CTX.with(|c| {
        let borrowed = c.borrow();
        let ctx = borrowed.as_ref()?;
        let inj = ctx.injection?;
        let mut rng = ctx.rng.borrow_mut();
        let rng = rng.get_or_insert_with(|| {
            XorShift64::new(inj.seed ^ (ctx.pid as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        });
        if want_spurious {
            if inj.spurious_per_mille > 0 && rng.next_below(1000) < inj.spurious_per_mille as u64 {
                OpStats::count(&ctx.plane.stats.faults_injected);
                return Some(Injected::Panic(ctx.pid)); // repurposed: "spurious" marker
            }
            return Some(Injected::Nothing);
        }
        if inj.delay_per_mille > 0 && rng.next_below(1000) < inj.delay_per_mille as u64 {
            OpStats::count(&ctx.plane.stats.faults_injected);
            return Some(Injected::Delay(rng.next_below(50) + 1));
        }
        if inj.panic_per_mille > 0 && rng.next_below(1000) < inj.panic_per_mille as u64 {
            OpStats::count(&ctx.plane.stats.faults_injected);
            return Some(Injected::Panic(ctx.pid));
        }
        Some(Injected::Nothing)
    });
    rolled.unwrap_or(Injected::Nothing)
}

/// Payload prefix carried by every injection-layer panic.  This marker is
/// the stable contract by which upper layers (the job server's retry
/// classifier, tests) distinguish injected/transient faults from genuine
/// program bugs — a deterministic error never carries it.
pub const INJECTED_FAULT_MARKER: &str = "injected fault at";

/// Fault-injection point at a construct boundary: may sleep a few
/// microseconds or unwind with an injected fault, per the plane's
/// [`FaultInjection`] configuration.  A no-op outside a force or without
/// injection configured.
pub fn inject(point: Construct) {
    match roll(false) {
        Injected::Nothing => {}
        Injected::Delay(micros) => std::thread::sleep(Duration::from_micros(micros)),
        Injected::Panic(pid) => std::panic::resume_unwind(Box::new(format!(
            "{INJECTED_FAULT_MARKER} {} (pid {pid})",
            point.name()
        ))),
    }
}

/// Fault-injection point inside lock acquisition: returns `true` when the
/// attempt should be treated as one spurious failure (the caller records
/// a contended attempt and retries).  Never panics.
pub fn spurious_lock_failure() -> bool {
    matches!(roll(true), Injected::Panic(_))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(nproc: usize, config: FaultConfig) -> Arc<FaultPlane> {
        FaultPlane::new(nproc, Arc::new(OpStats::new()), config)
    }

    #[test]
    fn first_trip_wins() {
        let p = plane(2, FaultConfig::default());
        assert!(!p.is_tripped());
        p.trip(
            ProcessFault {
                pid: 1,
                construct: "barrier",
                payload: "first".into(),
            },
            None,
        );
        p.trip(
            ProcessFault {
                pid: 0,
                construct: "body",
                payload: "second".into(),
            },
            None,
        );
        assert!(p.is_tripped());
        let f = p.take_fault().expect("tripped");
        assert_eq!(f.pid, 1);
        assert_eq!(f.payload, "first");
        assert_eq!(p.stats().snapshot().faults_detected, 2);
    }

    #[test]
    fn fault_display_is_structured() {
        let f = ProcessFault {
            pid: 3,
            construct: "consume",
            payload: "boom".into(),
        };
        assert_eq!(f.to_string(), "process 3 faulted in consume: boom");
    }

    #[test]
    fn construct_indices_round_trip() {
        for c in CONSTRUCTS {
            assert_eq!(Construct::from_index(c.index()), c);
        }
        assert_eq!(Construct::from_index(usize::MAX >> 2), Construct::Body);
    }

    #[test]
    fn outside_a_force_everything_is_inert() {
        check_cancel(); // must not unwind
        let _g = enter(Construct::Barrier);
        assert_eq!(current_construct(), Construct::Body);
        let _p = parked(Construct::Lock);
        inject(Construct::Barrier);
        assert!(!spurious_lock_failure());
        assert!(!trip_current(Construct::Interpreter, "nope".into()));
    }

    #[test]
    fn default_schedule_is_snapshotted_into_the_context() {
        assert_eq!(
            current_default_schedule(),
            SchedulePolicy::default(),
            "outside a force the paper default applies"
        );
        let p = plane(
            1,
            FaultConfig {
                default_schedule: SchedulePolicy::Steal,
                ..FaultConfig::default()
            },
        );
        assert_eq!(p.default_schedule(), SchedulePolicy::Steal);
        let _ctx = install(&p, 0);
        assert_eq!(current_default_schedule(), SchedulePolicy::Steal);
    }

    #[test]
    fn markers_nest_and_attribute_panics() {
        let p = plane(1, FaultConfig::default());
        let _ctx = install(&p, 0);
        assert_eq!(current_construct(), Construct::Body);
        {
            let _a = enter(Construct::Doall);
            assert_eq!(current_construct(), Construct::Doall);
            {
                let _b = enter(Construct::Critical);
                assert_eq!(current_construct(), Construct::Critical);
            }
            assert_eq!(current_construct(), Construct::Doall);
        }
        assert_eq!(current_construct(), Construct::Body);
        // A panic under a marker records the innermost construct.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _a = enter(Construct::Barrier);
            panic!("die at the barrier");
        }));
        assert!(caught.is_err());
        assert_eq!(take_panicked_construct(), Some(Construct::Barrier));
        assert_eq!(take_panicked_construct(), None, "taken once");
    }

    #[test]
    fn check_cancel_unwinds_with_cancelled_payload() {
        let p = plane(1, FaultConfig::default());
        let _ctx = install(&p, 0);
        p.trip(
            ProcessFault {
                pid: 0,
                construct: "body",
                payload: "x".into(),
            },
            None,
        );
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(check_cancel));
        let payload = caught.expect_err("tripped plane must unwind");
        assert!(payload.is::<Cancelled>());
        assert_eq!(p.stats().snapshot().cancellations_observed, 1);
    }

    #[test]
    fn wait_board_tracks_park_and_finish() {
        let p = plane(2, FaultConfig::default());
        assert_eq!(p.all_parked(), None, "running processes are not parked");
        {
            let _ctx = install(&p, 0);
            let _g = enter(Construct::Consume);
            let _park = parked(Construct::Lock);
            assert_eq!(p.all_parked(), None, "pid 1 still running");
            p.finish(1);
            assert_eq!(p.all_parked(), Some((0, Construct::Consume)));
        }
        // Park guard dropped: pid 0 runs again.
        assert_eq!(p.all_parked(), None);
        p.finish(0);
        assert_eq!(p.all_parked(), None, "all finished is not a deadlock");
    }

    #[test]
    fn park_guard_restores_the_enclosing_construct() {
        let p = plane(1, FaultConfig::default());
        let _ctx = install(&p, 0);
        let _outer = enter(Construct::Doall);
        {
            let _inner = enter(Construct::Consume);
            let park = parked(Construct::Lock);
            let word = p.board[0].load(Ordering::Acquire);
            assert_eq!(word & STATE_MASK, PARKED);
            assert_eq!(Construct::from_index(word >> 2), Construct::Consume);
            drop(park);
            // Regression: the guard used to restore `RUNNING` with
            // `Construct::Body`, erasing the enclosing attribution until
            // the next `enter`.  It must keep the innermost still-active
            // marker.
            let word = p.board[0].load(Ordering::Acquire);
            assert_eq!(word & STATE_MASK, RUNNING);
            assert_eq!(Construct::from_index(word >> 2), Construct::Consume);
        }
        // With the inner marker gone, a new wait attributes to the outer
        // construct, and its end restores that same attribution.
        let park = parked(Construct::Lock);
        drop(park);
        let word = p.board[0].load(Ordering::Acquire);
        assert_eq!(word & STATE_MASK, RUNNING);
        assert_eq!(Construct::from_index(word >> 2), Construct::Doall);
    }

    #[test]
    fn tracing_attributes_constructs_and_waits() {
        let p = plane(
            1,
            FaultConfig {
                trace: Some(TraceConfig::default()),
                ..FaultConfig::default()
            },
        );
        let _ctx = install(&p, 0);
        {
            let _g = enter(Construct::Critical);
            let _park = parked(Construct::Lock);
        }
        let r = p.profile_report().expect("tracing armed");
        let c = r.construct("critical").expect("critical profiled");
        assert_eq!(c.enters, 1);
        assert_eq!(c.time.count(), 1);
        assert_eq!(c.wait.count(), 1, "park wait attributed to critical");
        use crate::trace::EventKind;
        for kind in [
            EventKind::ConstructEnter,
            EventKind::Park,
            EventKind::Unpark,
            EventKind::ConstructExit,
        ] {
            assert!(
                r.events.iter().any(|e| e.kind == kind),
                "missing {kind:?} event"
            );
        }
        assert!(p.trace_sink().is_some());
    }

    #[test]
    fn reset_for_job_rearms_or_drops_the_trace_sink() {
        let p = plane(
            2,
            FaultConfig {
                trace: Some(TraceConfig { ring_capacity: 64 }),
                ..FaultConfig::default()
            },
        );
        let first = p.trace_sink().expect("armed at construction");
        {
            let _ctx = install(&p, 0);
            let _g = enter(Construct::Barrier);
        }
        assert!(!p.profile_report().expect("armed").is_empty());

        // Same shape: the sink is reused, but blank.
        p.reset_for_job(FaultConfig {
            trace: Some(TraceConfig { ring_capacity: 64 }),
            ..FaultConfig::default()
        });
        let second = p.trace_sink().expect("still armed");
        assert!(Arc::ptr_eq(&first, &second), "resident sink reused");
        assert!(p.profile_report().expect("armed").is_empty());

        // Different shape: rebuilt.
        p.reset_for_job(FaultConfig {
            trace: Some(TraceConfig { ring_capacity: 256 }),
            ..FaultConfig::default()
        });
        let third = p.trace_sink().expect("still armed");
        assert!(!Arc::ptr_eq(&first, &third), "capacity change rebuilds");

        // Tracing off: dropped entirely.
        p.reset_for_job(FaultConfig::default());
        assert!(p.trace_sink().is_none());
        assert!(p.profile_report().is_none());
    }

    #[test]
    fn injection_streams_are_deterministic_per_pid() {
        let config = FaultConfig {
            injection: Some(FaultInjection {
                seed: 42,
                panic_per_mille: 0,
                delay_per_mille: 0,
                spurious_per_mille: 500,
            }),
            ..FaultConfig::default()
        };
        let run = |pid: usize| {
            let p = plane(4, config);
            let _ctx = install(&p, pid);
            let outcomes: Vec<bool> = (0..64).map(|_| spurious_lock_failure()).collect();
            (outcomes, p.stats().snapshot().faults_injected)
        };
        let (a, na) = run(2);
        let (b, nb) = run(2);
        assert_eq!(a, b, "same pid, same seed: same stream");
        assert_eq!(na, nb);
        assert!(na > 0, "a 50% rate over 64 rolls must fire");
        let (c, _) = run(3);
        assert_ne!(a, c, "different pids draw different streams");
    }

    #[test]
    fn injected_panics_carry_the_construct_and_pid() {
        let config = FaultConfig {
            injection: Some(FaultInjection {
                seed: 7,
                panic_per_mille: 1000,
                delay_per_mille: 0,
                spurious_per_mille: 0,
            }),
            ..FaultConfig::default()
        };
        let p = plane(1, config);
        let _ctx = install(&p, 0);
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inject(Construct::Barrier)));
        let payload = caught.expect_err("per-mille 1000 always fires");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "injected fault at barrier (pid 0)");
        assert_eq!(p.stats().snapshot().faults_injected, 1);
    }

    #[test]
    fn watchdog_trips_on_a_parked_stagnant_force() {
        let p = plane(
            1,
            FaultConfig {
                watchdog: Some(Duration::from_millis(20)),
                ..FaultConfig::default()
            },
        );
        let _ctx = install(&p, 0);
        let _park = parked(Construct::Consume);
        let stop = Mutex::new(false);
        let signal = Condvar::new();
        p.run_watchdog(&stop, &signal);
        assert!(p.is_tripped());
        let f = p.take_fault().expect("watchdog fault");
        assert_eq!(f.pid, 0);
        assert_eq!(f.construct, "consume");
        assert!(f.payload.contains("deadlock watchdog"), "{}", f.payload);
        assert_eq!(p.stats().snapshot().watchdog_trips, 1);
    }

    #[test]
    fn reset_for_job_clears_trip_board_and_config() {
        let p = plane(
            2,
            FaultConfig {
                watchdog: Some(Duration::from_secs(1)),
                ..FaultConfig::default()
            },
        );
        p.trip(
            ProcessFault {
                pid: 0,
                construct: "consume",
                payload: "job 1 fault".into(),
            },
            Some(Box::new("original payload")),
        );
        p.finish(0);
        p.finish(1);
        assert!(p.is_tripped());

        p.reset_for_job(FaultConfig::default());
        assert!(!p.is_tripped(), "token cleared");
        assert!(p.take_fault().is_none(), "first-fault slot cleared");
        assert!(p.take_payload().is_none(), "payload slot cleared");
        assert_eq!(p.watchdog_interval(), None, "config swapped");
        // The board is back to RUNNING: parking pid 0 alone is not an
        // all-parked state, because pid 1 is no longer FINISHED.
        let _ctx = install(&p, 0);
        let _park = parked(Construct::Barrier);
        assert_eq!(p.all_parked(), None, "board entries reset to RUNNING");
    }

    #[test]
    fn watchdog_stops_promptly_when_signalled() {
        let p = plane(
            1,
            FaultConfig {
                watchdog: Some(Duration::from_secs(3600)),
                ..FaultConfig::default()
            },
        );
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        let p2 = Arc::clone(&p);
        let start = std::time::Instant::now();
        let t = std::thread::spawn(move || p2.run_watchdog(&stop2.0, &stop2.1));
        std::thread::sleep(Duration::from_millis(10));
        *stop.0.lock() = true;
        stop.1.notify_all();
        t.join().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "stop signal must interrupt the tick sleep"
        );
        assert!(!p.is_tripped());
    }
}
