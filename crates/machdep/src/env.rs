//! The Force parallel environment — the `force_environment` macro (§4.1).
//!
//! "declares and initializes the environment variables for the
//! implementation of barriers and selfscheduled loops and a unique
//! process identifier."
//!
//! One [`ForceEnvironment`] is created per force and holds exactly what
//! the macro declares: the barrier locks `BARWIN`/`BARWOT`, the arrival
//! counter `ZZNBAR`, a shared selfscheduled-index cell service, and a
//! named-lock table for critical sections and user lock variables.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::fault::{FaultConfig, FaultPlane};
use crate::lock::{LockHandle, LockState};
use crate::machine::Machine;
use crate::portable::Mutex;

/// The per-force environment variables of the Force implementation.
pub struct ForceEnvironment {
    machine: Arc<Machine>,
    nproc: usize,
    /// `BARWIN`: guards barrier arrival; initially unlocked.
    pub barwin: LockHandle,
    /// `BARWOT`: guards barrier exit; initially locked.
    pub barwot: LockHandle,
    /// `ZZNBAR`: the arrival counter, mutated only while holding one of
    /// the two barrier locks (the atomic is for Rust soundness, not for
    /// synchronization).
    pub zznbar: AtomicUsize,
    /// Named lock variables (`define_lock`), created on first use.
    named_locks: Mutex<HashMap<String, LockHandle>>,
    /// Shared selfscheduled loop-index cells, one per loop label.
    shared_indices: Mutex<HashMap<String, Arc<AtomicI64>>>,
    /// Monotonic process-identifier source for dynamically added players.
    next_pid: AtomicUsize,
    /// The force's fault plane: cancellation token, wait board, watchdog
    /// and injection configuration.
    fault_plane: Arc<FaultPlane>,
}

impl ForceEnvironment {
    /// Initialize the environment for a force of `nproc` processes.
    ///
    /// The barrier locks are *dedicated* locks (they bypass any scarcity
    /// pool): the implementation reserves its own locks before user
    /// programs can exhaust the pool, as the real Cray port had to.
    ///
    /// # Panics
    /// Panics if `nproc` is zero.
    pub fn new(machine: Arc<Machine>, nproc: usize) -> Self {
        let plane = FaultPlane::new(
            nproc.max(1),
            Arc::clone(machine.stats()),
            FaultConfig::default(),
        );
        Self::with_fault_plane(machine, nproc, plane)
    }

    /// Like [`new`](Self::new), but running under a caller-supplied fault
    /// plane (watchdog and fault injection configured by the force
    /// builder).
    ///
    /// # Panics
    /// Panics if `nproc` is zero.
    pub fn with_fault_plane(machine: Arc<Machine>, nproc: usize, plane: Arc<FaultPlane>) -> Self {
        assert!(nproc > 0, "a force needs at least one process");
        ForceEnvironment {
            barwin: machine.make_dedicated_lock(LockState::Unlocked),
            barwot: machine.make_dedicated_lock(LockState::Locked),
            zznbar: AtomicUsize::new(0),
            named_locks: Mutex::new(HashMap::new()),
            shared_indices: Mutex::new(HashMap::new()),
            next_pid: AtomicUsize::new(nproc),
            fault_plane: plane,
            nproc,
            machine,
        }
    }

    /// Number of processes in the force.
    pub fn nproc(&self) -> usize {
        self.nproc
    }

    /// The machine this environment lives on.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// The force's fault plane.
    pub fn fault_plane(&self) -> &Arc<FaultPlane> {
        &self.fault_plane
    }

    /// Whether the force's cancellation token has tripped (a peer process
    /// faulted or the watchdog declared a deadlock).
    pub fn cancel_requested(&self) -> bool {
        self.fault_plane.is_tripped()
    }

    /// Look up (creating on first use) the named lock variable — the
    /// `define_lock(var)` / `init_lock(var)` pair.  Critical sections and
    /// user lock variables share this table, so the same name always
    /// aliases the same lock, exactly like a shared Fortran variable.
    pub fn named_lock(&self, name: &str) -> LockHandle {
        let mut table = self.named_locks.lock();
        Arc::clone(
            table
                .entry(name.to_string())
                .or_insert_with(|| self.machine.make_lock(LockState::Unlocked)),
        )
    }

    /// Look up (creating on first use) the shared loop-index cell for a
    /// selfscheduled loop label (`K_shared` in the §4.2 expansion).
    pub fn shared_index(&self, label: &str) -> Arc<AtomicI64> {
        let mut table = self.shared_indices.lock();
        Arc::clone(table.entry(label.to_string()).or_default())
    }

    /// Hand out a fresh unique process identifier beyond the initial
    /// force (used by Askfor-style dynamic helpers in extensions).
    pub fn fresh_pid(&self) -> usize {
        self.next_pid.fetch_add(1, Ordering::Relaxed)
    }

    /// Count of named locks created so far.
    pub fn named_lock_count(&self) -> usize {
        self.named_locks.lock().len()
    }

    /// Restore the environment to its initial state for a session's
    /// next run: `BARWIN` unlocked, `BARWOT` locked, `ZZNBAR` zero, the
    /// named-lock and shared-index tables empty, and the dynamic-pid
    /// source back at `nproc`.  Dropping the lock tables (rather than
    /// unlocking each entry) matches the macro semantics — every run's
    /// driver re-executes `init_lock`, so locks a faulted run stranded
    /// in the locked state simply cease to exist.  Must only be called
    /// while no process of the force is running.
    pub fn reset(&self) {
        if self.barwin.is_locked() {
            self.barwin.unlock();
        }
        let _ = self.barwot.try_lock();
        self.zznbar.store(0, Ordering::Relaxed);
        self.named_locks.lock().clear();
        self.shared_indices.lock().clear();
        self.next_pid.store(self.nproc, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineId;

    #[test]
    fn barrier_locks_have_the_canonical_initial_states() {
        let m = Machine::new(MachineId::EncoreMultimax);
        let env = ForceEnvironment::new(m, 4);
        assert!(!env.barwin.is_locked(), "BARWIN starts unlocked");
        assert!(env.barwot.is_locked(), "BARWOT starts locked");
        assert_eq!(env.zznbar.load(Ordering::Relaxed), 0);
        assert_eq!(env.nproc(), 4);
    }

    #[test]
    fn named_locks_alias_by_name() {
        let m = Machine::new(MachineId::Flex32);
        let env = ForceEnvironment::new(m, 2);
        let a = env.named_lock("LOOP100");
        let b = env.named_lock("LOOP100");
        let c = env.named_lock("LOOP200");
        a.lock();
        assert!(!b.try_lock(), "same name = same lock");
        assert!(c.try_lock(), "different name = different lock");
        a.unlock();
        c.unlock();
        assert_eq!(env.named_lock_count(), 2);
    }

    #[test]
    fn shared_indices_alias_by_label() {
        let m = Machine::new(MachineId::Hep);
        let env = ForceEnvironment::new(m, 2);
        let k1 = env.shared_index("100");
        let k2 = env.shared_index("100");
        k1.store(7, Ordering::SeqCst);
        assert_eq!(k2.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn fresh_pids_do_not_collide_with_the_force() {
        let m = Machine::new(MachineId::Cray2);
        let env = ForceEnvironment::new(m, 3);
        let p = env.fresh_pid();
        let q = env.fresh_pid();
        assert!(p >= 3 && q >= 3 && p != q);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_proc_force_rejected() {
        let m = Machine::new(MachineId::Hep);
        let _ = ForceEnvironment::new(m, 0);
    }
}
