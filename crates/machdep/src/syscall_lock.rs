//! System-call lock — the Cray-2 lock personality.
//!
//! §4.1.3: "system call locks: operating system handles a list of locked
//! processes in cooperation with the scheduler (Cray)".  Every operation
//! goes through the "operating system" (here a mutex + condvar from
//! [`crate::portable`], i.e. a futex on Linux) and blocked processes are
//! parked, not spinning.  Each acquire and release is accounted as a
//! system call.

use std::sync::Arc;

use crate::fault;
use crate::lock::{LockKind, LockState, RawLock};
use crate::portable::{Condvar, Mutex};
use crate::stats::OpStats;

/// An OS-managed binary semaphore: waiters are descheduled.
pub struct SyscallLock {
    state: Mutex<bool>, // true = locked
    cond: Condvar,
    stats: Arc<OpStats>,
}

impl SyscallLock {
    /// Create a system-call lock in the given initial state.
    pub fn new(initial: LockState, stats: Arc<OpStats>) -> Self {
        OpStats::count(&stats.locks_created);
        SyscallLock {
            state: Mutex::new(initial == LockState::Locked),
            cond: Condvar::new(),
            stats,
        }
    }
}

impl RawLock for SyscallLock {
    fn lock(&self) {
        OpStats::count(&self.stats.syscalls);
        let mut locked = self.state.lock();
        // An injected spurious failure is accounted as one contended attempt.
        let mut waited = fault::spurious_lock_failure();
        if *locked {
            // One park per blocking episode: under a tripped-token check the
            // wait is sliced into short timed waits, which must not each be
            // billed as a separate descheduling.
            waited = true;
            OpStats::count(&self.stats.parks);
            let _park = fault::parked(fault::Construct::Lock);
            while *locked {
                fault::cancellable_wait(&self.cond, &mut locked);
            }
        }
        *locked = true;
        OpStats::count(&self.stats.lock_acquires);
        if waited {
            OpStats::count(&self.stats.lock_contended);
        }
        crate::trace::lock_acquired(waited);
    }

    fn unlock(&self) {
        OpStats::count(&self.stats.syscalls);
        {
            let mut locked = self.state.lock();
            *locked = false;
        }
        self.cond.notify_one();
        OpStats::count(&self.stats.lock_releases);
    }

    fn try_lock(&self) -> bool {
        OpStats::count(&self.stats.syscalls);
        let mut locked = self.state.lock();
        if *locked {
            false
        } else {
            *locked = true;
            OpStats::count(&self.stats.lock_acquires);
            true
        }
    }

    fn is_locked(&self) -> bool {
        *self.state.lock()
    }

    fn kind(&self) -> LockKind {
        LockKind::Syscall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    fn mk(initial: LockState) -> (Arc<SyscallLock>, Arc<OpStats>) {
        let stats = Arc::new(OpStats::new());
        (
            Arc::new(SyscallLock::new(initial, Arc::clone(&stats))),
            stats,
        )
    }

    #[test]
    fn basic_lock_unlock() {
        let (l, _) = mk(LockState::Unlocked);
        l.lock();
        assert!(l.is_locked());
        assert!(!l.try_lock());
        l.unlock();
        assert!(!l.is_locked());
    }

    #[test]
    fn initially_locked_blocks_until_released() {
        let (l, _) = mk(LockState::Locked);
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            l2.unlock();
        });
        l.lock(); // must block ~20ms then acquire
        t.join().unwrap();
        assert!(l.is_locked());
    }

    #[test]
    fn waiters_park_instead_of_spin() {
        let (l, stats) = mk(LockState::Locked);
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || {
            l2.lock();
            l2.unlock();
        });
        std::thread::sleep(Duration::from_millis(20));
        l.unlock();
        t.join().unwrap();
        let s = stats.snapshot();
        assert!(s.parks >= 1, "waiter should have parked, stats: {s:?}");
        assert_eq!(s.spin_retries, 0, "a syscall lock never spins");
        assert!(s.syscalls >= 3, "every op is a syscall");
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let (l, _) = mk(LockState::Unlocked);
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let l = Arc::clone(&l);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..200 {
                        l.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        l.unlock();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 200);
    }
}
