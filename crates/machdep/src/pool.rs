//! A resident force pool: long-lived worker threads with a job mailbox.
//!
//! The paper's process-management suppression ("the number of processes
//! is a run-time parameter") was implemented on machines where process
//! creation was expensive — the UNIX fork/join ports paid a full
//! data-and-stack copy per process per run.  A production embedding
//! amortizes that cost the obvious way: create the force **once** and
//! keep it resident, dispatching successive jobs onto the same worker
//! threads.  [`ForcePool`] is that resident force.
//!
//! Design:
//!
//! * `size` worker threads are created by [`ForcePool::new`] and live
//!   until the pool is dropped.  Process-creation cost is charged to the
//!   machine once, at pool construction, not per job.
//! * A **job mailbox** (generation counter + job slot, under one mutex)
//!   broadcasts each job to the workers.  A job of `nproc <= size`
//!   processes occupies workers `0..nproc`; the rest skip the
//!   generation and keep waiting.
//! * Each participating worker runs the job body under the same
//!   fault-plane-aware run loop as the scoped spawner
//!   ([`crate::process::spawn_force_plane`]): thread-local fault context
//!   installed, panics trapped and attributed, the first genuine fault
//!   trips the job's [`FaultPlane`], cancellation unwinds are absorbed,
//!   and the pid is marked finished on the wait board.  A fault is
//!   contained to its job: the worker thread survives and the *caller*
//!   re-arms the plane before the next job
//!   ([`FaultPlane::reset_for_job`]).
//! * [`ForcePool::run_plane`] blocks until every participant has
//!   finished, so job closures may borrow from the caller's stack — the
//!   same guarantee `std::thread::scope` gives the one-shot path.
#![allow(unsafe_code)]

use std::sync::Arc;
use std::thread::JoinHandle;

use crate::fault::{FaultPlane, ProcessFault};
use crate::portable::{Condvar, Mutex};
use crate::process::run_as_process;
use crate::stats::OpStats;

/// The type-erased per-pid job body handed to the workers.
///
/// The `'static` is a lie told to the compiler: the referent lives on
/// [`ForcePool::run_plane`]'s stack, and is sound because `run_plane`
/// does not return until every participating worker has finished the
/// job and bumped the completion count (the classic scoped-threadpool
/// argument).
type JobBody = &'static (dyn Fn(usize) + Sync);

/// One published job: the erased body and how many workers participate.
struct Job {
    body: JobBody,
    nproc: usize,
}

/// Mailbox state, under the pool's mutex.
struct PoolState {
    /// Bumped once per published job; workers use it to recognize a job
    /// they have not run yet.
    generation: u64,
    /// The current job; `Some` from publication until the submitter
    /// observes completion and clears it.
    job: Option<Job>,
    /// How many participants have finished the current job.
    done: usize,
    /// Total jobs completed over the pool's lifetime.
    jobs_completed: u64,
    /// Set by `Drop`; workers exit their loop.
    shutdown: bool,
}

struct PoolShared {
    size: usize,
    state: Mutex<PoolState>,
    /// Workers wait here for a new generation (or shutdown).
    job_ready: Condvar,
    /// Submitters wait here for completion and for the job slot to free.
    job_done: Condvar,
}

/// A resident pool of force worker threads.
///
/// Create one sized to the largest force you will run, then dispatch
/// jobs onto it with [`run_plane`](Self::run_plane).  Worker threads are
/// created once; each job reuses them, so per-job cost is a mailbox
/// broadcast instead of `nproc` thread creations.  Jobs are serialized:
/// a second `run_plane` call blocks until the current job completes.
///
/// ```
/// use std::sync::Arc;
/// use force_machdep::{FaultConfig, FaultPlane, ForcePool, OpStats};
///
/// let stats = Arc::new(OpStats::new());
/// let pool = ForcePool::new(4, &stats);
/// for job in 0..3 {
///     let plane = FaultPlane::new(4, Arc::clone(&stats), FaultConfig::default());
///     let results = pool.run_plane(&plane, |pid| pid + job).unwrap();
///     assert_eq!(results, vec![job, 1 + job, 2 + job, 3 + job]);
/// }
/// assert_eq!(pool.jobs_completed(), 3);
/// ```
pub struct ForcePool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl ForcePool {
    /// Create a resident pool of `size` worker threads, charging `size`
    /// process creations to `stats` (the one-time cost the pool exists
    /// to amortize).
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn new(size: usize, stats: &Arc<OpStats>) -> ForcePool {
        assert!(size > 0, "a force pool needs at least one worker");
        OpStats::add(&stats.processes_created, size as u64);
        let shared = Arc::new(PoolShared {
            size,
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                done: 0,
                jobs_completed: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let workers = (0..size)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("force-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn pool worker")
            })
            .collect();
        ForcePool { shared, workers }
    }

    /// Number of resident worker threads (the largest force a job may
    /// request).
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Total jobs completed over the pool's lifetime.
    pub fn jobs_completed(&self) -> u64 {
        self.shared.state.lock().jobs_completed
    }

    /// Run one job on the resident workers: `body(pid)` for every pid in
    /// `0..plane.nproc()`, under `plane`'s fault containment, blocking
    /// until all participants have finished.  Results are returned in
    /// pid order; a fault in any process is reported as the job's first
    /// [`ProcessFault`], exactly like
    /// [`spawn_force_plane`](crate::process::spawn_force_plane).
    ///
    /// The caller owns plane hygiene: a resident session re-arms the
    /// plane with [`FaultPlane::reset_for_job`] before each job so a
    /// fault cannot leak into the next one.  When the plane's config
    /// asks for a deadlock watchdog, one runs on a helper thread for the
    /// duration of the job.
    ///
    /// # Panics
    /// Panics if the job wants more processes than the pool has workers.
    pub fn run_plane<R, F>(&self, plane: &Arc<FaultPlane>, body: F) -> Result<Vec<R>, ProcessFault>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let nproc = plane.nproc();
        assert!(nproc > 0, "a force needs at least one process");
        assert!(
            nproc <= self.shared.size,
            "job of {nproc} processes exceeds the pool's {} workers",
            self.shared.size
        );
        let results: Vec<Mutex<Option<R>>> = (0..nproc).map(|_| Mutex::new(None)).collect();
        let job_plane = Arc::clone(plane);
        let run_one = |pid: usize| {
            let r = run_as_process(&job_plane, pid, || body(pid));
            *results[pid].lock() = r;
        };
        let watchdog_stop = Arc::new((Mutex::new(false), Condvar::new()));
        let watchdog = plane.watchdog_interval().map(|_| {
            let plane = Arc::clone(plane);
            let stop = Arc::clone(&watchdog_stop);
            std::thread::spawn(move || plane.run_watchdog(&stop.0, &stop.1))
        });
        // SAFETY: the erased reference outlives its use — `run_plane`
        // blocks below until `done == nproc`, i.e. until every worker
        // that received this body has returned from it, and the job slot
        // is cleared before we return, so no worker can see the body
        // afterwards.  `run_one` is `Sync` (it captures `&F: Sync`,
        // `Arc<FaultPlane>` and `&[Mutex<Option<R>>]` with `R: Send`),
        // so sharing it across the worker threads is sound.
        let erased: JobBody =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), JobBody>(&run_one) };
        {
            let mut st = self.shared.state.lock();
            while st.job.is_some() {
                // Another submitter's job is in flight; queue behind it.
                self.shared.job_done.wait(&mut st);
            }
            st.generation += 1;
            st.done = 0;
            st.job = Some(Job {
                body: erased,
                nproc,
            });
            self.shared.job_ready.notify_all();
            while st.done < nproc {
                self.shared.job_done.wait(&mut st);
            }
            st.job = None;
            st.jobs_completed += 1;
            // Wake any submitter queued on the job slot.
            self.shared.job_done.notify_all();
        }
        if let Some(w) = watchdog {
            *watchdog_stop.0.lock() = true;
            watchdog_stop.1.notify_all();
            let _ = w.join();
        }
        match plane.take_fault() {
            Some(fault) => Err(fault),
            // A plane tripped by an earlier job (and not re-armed) cancels
            // every process without recording a new fault; report that as
            // a structured fault instead of pretending the job ran.
            None if plane.is_tripped() => Err(stale_trip_fault()),
            None => Ok(results
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("no fault recorded, so every process completed")
                })
                .collect()),
        }
    }
}

/// The fault reported when a job ran under a plane whose token was still
/// tripped from an earlier job (the session forgot
/// [`FaultPlane::reset_for_job`]).
pub(crate) fn stale_trip_fault() -> ProcessFault {
    ProcessFault {
        pid: 0,
        construct: crate::fault::Construct::Body.name(),
        payload: "force cancelled by a plane still tripped from an earlier job \
                  (missing reset_for_job between jobs)"
            .to_string(),
    }
}

impl Drop for ForcePool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The resident worker: wait for a generation this worker has not seen,
/// run the job body if this worker participates, report completion.
fn worker_loop(shared: &PoolShared, index: usize) {
    let mut last_gen = 0u64;
    loop {
        let job: Option<JobBody> = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation > last_gen {
                    last_gen = st.generation;
                    match &st.job {
                        // A job this worker sits out (nproc < size), or
                        // one that already completed while this worker
                        // slept (it cannot have been a participant —
                        // completion waits for all participants).
                        Some(job) if index < job.nproc => break Some(job.body),
                        _ => break None,
                    }
                }
                shared.job_ready.wait(&mut st);
            }
        };
        if let Some(body) = job {
            // The body's own harness (`run_as_process`) traps panics and
            // absorbs cancellations, so the worker thread survives any
            // job fault and stays available for the next job.
            body(index);
            let mut st = shared.state.lock();
            st.done += 1;
            shared.job_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn pool_and_stats(size: usize) -> (ForcePool, Arc<OpStats>) {
        let stats = Arc::new(OpStats::new());
        (ForcePool::new(size, &stats), stats)
    }

    fn plane(nproc: usize, stats: &Arc<OpStats>) -> Arc<FaultPlane> {
        FaultPlane::new(nproc, Arc::clone(stats), FaultConfig::default())
    }

    #[test]
    fn jobs_reuse_the_resident_workers() {
        let (pool, stats) = pool_and_stats(4);
        assert_eq!(stats.snapshot().processes_created, 4);
        for job in 0..10 {
            let p = plane(4, &stats);
            let r = pool.run_plane(&p, |pid| pid * 10 + job).unwrap();
            assert_eq!(r, vec![job, 10 + job, 20 + job, 30 + job]);
        }
        // No per-job process creation: the count stays at pool size.
        assert_eq!(stats.snapshot().processes_created, 4);
        assert_eq!(pool.jobs_completed(), 10);
    }

    #[test]
    fn smaller_jobs_use_a_prefix_of_the_pool() {
        let (pool, stats) = pool_and_stats(6);
        let hits = AtomicUsize::new(0);
        let p = plane(2, &stats);
        let r = pool
            .run_plane(&p, |pid| {
                hits.fetch_add(1, Ordering::Relaxed);
                pid
            })
            .unwrap();
        assert_eq!(r, vec![0, 1]);
        assert_eq!(hits.load(Ordering::Relaxed), 2, "only 2 of 6 workers ran");
        // The idle workers are still usable afterwards.
        let p = plane(6, &stats);
        let r = pool.run_plane(&p, |pid| pid).unwrap();
        assert_eq!(r, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn a_fault_is_contained_to_its_job() {
        let (pool, stats) = pool_and_stats(3);
        let p = plane(3, &stats);
        let err = pool
            .run_plane(&p, |pid| {
                if pid == 1 {
                    panic!("job one dies");
                }
            })
            .expect_err("the panic must surface");
        assert_eq!(err.pid, 1);
        assert_eq!(err.payload, "job one dies");
        // The workers survived; after a plane reset the next job is clean.
        p.reset_for_job(FaultConfig::default());
        let r = pool.run_plane(&p, |pid| pid + 100).unwrap();
        assert_eq!(r, vec![100, 101, 102]);
        assert_eq!(stats.snapshot().faults_detected, 1);
    }

    #[test]
    fn without_a_reset_a_tripped_plane_cancels_the_next_job() {
        // Documents why reset_for_job matters: the plane is the
        // cancellation token, and a stale trip kills the following job.
        let (pool, stats) = pool_and_stats(2);
        let p = plane(2, &stats);
        let _ = pool
            .run_plane(&p, |_pid| panic!("trip it"))
            .expect_err("faulted");
        let err = pool
            .run_plane(&p, |_pid| {
                crate::fault::check_cancel();
            })
            .expect_err("stale trip must cancel");
        assert!(
            err.payload.contains("still tripped from an earlier job"),
            "{}",
            err.payload
        );
    }

    #[test]
    fn pooled_watchdog_reports_a_wedged_job() {
        let (pool, stats) = pool_and_stats(2);
        let p = FaultPlane::new(
            2,
            Arc::clone(&stats),
            FaultConfig {
                watchdog: Some(Duration::from_millis(20)),
                ..FaultConfig::default()
            },
        );
        let err = pool
            .run_plane(&p, |_pid| {
                let _park = crate::fault::parked(crate::fault::Construct::Consume);
                loop {
                    crate::fault::check_cancel();
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
            .expect_err("the watchdog must trip");
        assert!(err.payload.contains("deadlock watchdog"), "{}", err.payload);
        // The pool survives a watchdog trip too.
        p.reset_for_job(FaultConfig::default());
        let r = pool.run_plane(&p, |pid| pid).unwrap();
        assert_eq!(r, vec![0, 1]);
    }

    #[test]
    fn concurrent_submitters_serialize() {
        let (pool, stats) = pool_and_stats(2);
        let pool = Arc::new(pool);
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let stats = Arc::clone(&stats);
                let total = &total;
                s.spawn(move || {
                    for _ in 0..5 {
                        let p = plane(2, &stats);
                        let r = pool.run_plane(&p, |pid| pid + 1).unwrap();
                        total.fetch_add(r.iter().sum::<usize>(), Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 5 * 3);
        assert_eq!(pool.jobs_completed(), 20);
    }

    #[test]
    #[should_panic(expected = "exceeds the pool")]
    fn oversized_jobs_are_rejected() {
        let (pool, stats) = pool_and_stats(2);
        let p = plane(3, &stats);
        let _ = pool.run_plane(&p, |pid| pid);
    }

    #[test]
    fn drop_joins_the_workers() {
        let (pool, stats) = pool_and_stats(3);
        let p = plane(3, &stats);
        pool.run_plane(&p, |_| ()).unwrap();
        drop(pool); // must not hang or leak threads
    }
}
