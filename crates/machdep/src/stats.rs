//! Operation accounting for a simulated machine.
//!
//! The paper's portability argument is that different machines force the
//! Force onto different low-level primitives (§4.1).  To make that visible
//! without the original hardware, every machine personality counts the
//! primitive operations it performs.  The counters use relaxed atomics so
//! that accounting never perturbs the synchronization being measured.
//!
//! The counter list is written exactly once, in the `op_counters!`
//! invocation below; the macro generates both [`OpStats`] and
//! [`StatsSnapshot`] plus every whole-struct operation (`snapshot`,
//! `reset`, `since`, `fields`).  A counter added to the list is therefore
//! covered by snapshots and deltas *by construction* — it cannot be
//! silently dropped the way a hand-enumerated field list could drop it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Defines [`OpStats`] and [`StatsSnapshot`] from one field list, plus the
/// operations that must stay in sync with that list.
macro_rules! op_counters {
    ($($(#[$doc:meta])* $name:ident,)+) => {
        /// Per-machine counters of low-level primitive operations.
        ///
        /// All increments are `Relaxed`: the counts are diagnostics, not
        /// synchronization, and exact cross-thread ordering of increments
        /// is irrelevant to their totals.
        #[derive(Debug, Default)]
        pub struct OpStats {
            $($(#[$doc])* pub $name: AtomicU64,)+
        }

        /// A point-in-time copy of [`OpStats`]; fields mirror the counters
        /// there.
        #[allow(missing_docs)]
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $(pub $name: u64,)+
        }

        impl OpStats {
            /// Snapshot the counters into a plain struct for reporting.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }

            /// Reset every counter to zero.
            pub fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)+
            }

            /// Every counter with its name, in declaration order (used by
            /// diagnostics and the exhaustiveness tests).
            pub fn counters(&self) -> Vec<(&'static str, &AtomicU64)> {
                vec![$((stringify!($name), &self.$name),)+]
            }
        }

        impl StatsSnapshot {
            /// Difference of two snapshots (`self - earlier`), saturating
            /// at zero.  Covers every counter by construction (generated
            /// from the same field list as the structs).
            pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)+
                }
            }

            /// Every field with its name, in declaration order.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($name), self.$name),)+]
            }

            /// Add every counter of `other` into `self` (saturating).
            /// Generated from the same field list as the structs, so a
            /// new counter is folded into tenant rollups by construction.
            pub fn merge(&mut self, other: &StatsSnapshot) {
                $(self.$name = self.$name.saturating_add(other.$name);)+
            }
        }
    };
}

op_counters! {
    /// Successful lock acquisitions (all lock kinds).
    lock_acquires,
    /// Lock acquisitions that did not succeed on the first attempt.
    lock_contended,
    /// Lock releases.
    lock_releases,
    /// Simulated operating-system calls (Cray-style system-call locks,
    /// and the parked phase of Flex/32 combined locks).
    syscalls,
    /// Times a process parked (blocked in the OS) waiting for a lock.
    parks,
    /// Busy-wait retry iterations across all spinning locks.
    spin_retries,
    /// Hardware full/empty produce operations (HEP personality).
    fe_produces,
    /// Hardware full/empty consume operations (HEP personality).
    fe_consumes,
    /// Barrier episodes completed.
    barrier_episodes,
    /// Logical locks created.
    locks_created,
    /// Logical locks that aliased an already-used pool slot (scarce-lock
    /// machines only).
    locks_aliased,
    /// Shared-memory words allocated.
    shared_words,
    /// Padding words inserted by the sharing model to keep private data
    /// off shared pages (Encore) or to align blocks to pages (Alliant).
    padding_words,
    /// Processes created.
    processes_created,
    /// Faults deliberately injected by the fault-injection layer
    /// (panics, delays, spurious lock failures).
    faults_injected,
    /// Genuine process faults detected by the fault plane (panics and
    /// interpreter runtime errors trapped at process boundaries).
    faults_detected,
    /// Times a blocked process observed a tripped cancellation token and
    /// unwound instead of waiting forever.
    cancellations_observed,
    /// Times the deadlock watchdog declared a no-progress episode.
    watchdog_trips,
    /// Work items successfully stolen from another process's deque.
    steals,
    /// Steal probes that found the victim's deque empty.
    steal_attempts_failed,
    /// Jobs accepted by a `ForceServer`'s admission control.
    jobs_admitted,
    /// Jobs refused at admission (tenant queue full or server draining).
    jobs_rejected,
    /// Admitted jobs dropped by load shedding before they ran.
    jobs_shed,
    /// Jobs terminated because their deadline passed (queued or running).
    jobs_deadline_exceeded,
    /// Job attempts re-run after a transient fault (retry-with-backoff).
    job_retries,
}

impl OpStats {
    /// A fresh, all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment one counter by one (relaxed).
    #[inline]
    pub fn count(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment one counter by `n` (relaxed).
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Difference of two snapshots (`self - earlier`), saturating at
    /// zero: the per-job operation counts of one run on a resident
    /// session, as opposed to the pool-lifetime cumulative totals the
    /// raw counters accumulate.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        self.since(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = OpStats::new().snapshot();
        assert_eq!(s, StatsSnapshot::default());
    }

    #[test]
    fn count_and_snapshot() {
        let st = OpStats::new();
        OpStats::count(&st.lock_acquires);
        OpStats::count(&st.lock_acquires);
        OpStats::add(&st.spin_retries, 5);
        let s = st.snapshot();
        assert_eq!(s.lock_acquires, 2);
        assert_eq!(s.spin_retries, 5);
        assert_eq!(s.lock_releases, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let st = OpStats::new();
        OpStats::count(&st.syscalls);
        OpStats::count(&st.parks);
        st.reset();
        assert_eq!(st.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn since_subtracts_saturating() {
        let st = OpStats::new();
        OpStats::add(&st.lock_acquires, 10);
        let a = st.snapshot();
        OpStats::add(&st.lock_acquires, 7);
        let b = st.snapshot();
        assert_eq!(b.since(&a).lock_acquires, 7);
        // Saturates instead of underflowing.
        assert_eq!(a.since(&b).lock_acquires, 0);
    }

    #[test]
    fn delta_covers_every_counter_exhaustively() {
        // Bump every counter by a distinct baseline, snapshot, bump each
        // by a distinct per-field delta, and check that `delta` reports
        // exactly that per-field delta for *every* counter.  The counter
        // list is enumerated through `counters()`/`fields()`, which the
        // `op_counters!` macro generates from the same list as `since`,
        // so a future counter cannot be silently dropped from deltas: it
        // is either covered or this test sees a length mismatch.
        let st = OpStats::new();
        for (i, (_, c)) in st.counters().iter().enumerate() {
            OpStats::add(c, 1000 + i as u64 * 13);
        }
        let earlier = st.snapshot();
        for (i, (_, c)) in st.counters().iter().enumerate() {
            OpStats::add(c, i as u64 + 1);
        }
        let later = st.snapshot();
        let d = later.delta(&earlier);
        let fields = d.fields();
        assert_eq!(fields.len(), st.counters().len());
        for (i, (name, v)) in fields.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1, "delta dropped or corrupted `{name}`");
        }
        // The four fault counters of the fault plane are among them.
        for fault_counter in [
            "faults_injected",
            "faults_detected",
            "cancellations_observed",
            "watchdog_trips",
        ] {
            assert!(
                fields.iter().any(|(n, _)| *n == fault_counter),
                "`{fault_counter}` missing from the counter list"
            );
        }
    }

    #[test]
    fn merge_accumulates_every_counter() {
        // Same exhaustiveness trick as the delta test: distinct per-field
        // values prove `merge` covers the whole list.
        let st = OpStats::new();
        for (i, (_, c)) in st.counters().iter().enumerate() {
            OpStats::add(c, i as u64 + 1);
        }
        let snap = st.snapshot();
        let mut acc = StatsSnapshot::default();
        acc.merge(&snap);
        acc.merge(&snap);
        for (i, (name, v)) in acc.fields().iter().enumerate() {
            assert_eq!(*v, 2 * (i as u64 + 1), "merge dropped `{name}`");
        }
        // Saturates instead of wrapping.
        let mut top = snap;
        top.lock_acquires = u64::MAX;
        top.merge(&snap);
        assert_eq!(top.lock_acquires, u64::MAX);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let st = std::sync::Arc::new(OpStats::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let st = std::sync::Arc::clone(&st);
                s.spawn(move || {
                    for _ in 0..1000 {
                        OpStats::count(&st.lock_acquires);
                    }
                });
            }
        });
        assert_eq!(st.snapshot().lock_acquires, 8000);
    }
}
