//! Operation accounting for a simulated machine.
//!
//! The paper's portability argument is that different machines force the
//! Force onto different low-level primitives (§4.1).  To make that visible
//! without the original hardware, every machine personality counts the
//! primitive operations it performs.  The counters use relaxed atomics so
//! that accounting never perturbs the synchronization being measured.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-machine counters of low-level primitive operations.
///
/// All increments are `Relaxed`: the counts are diagnostics, not
/// synchronization, and exact cross-thread ordering of increments is
/// irrelevant to their totals.
#[derive(Debug, Default)]
pub struct OpStats {
    /// Successful lock acquisitions (all lock kinds).
    pub lock_acquires: AtomicU64,
    /// Lock acquisitions that did not succeed on the first attempt.
    pub lock_contended: AtomicU64,
    /// Lock releases.
    pub lock_releases: AtomicU64,
    /// Simulated operating-system calls (Cray-style system-call locks,
    /// and the parked phase of Flex/32 combined locks).
    pub syscalls: AtomicU64,
    /// Times a process parked (blocked in the OS) waiting for a lock.
    pub parks: AtomicU64,
    /// Busy-wait retry iterations across all spinning locks.
    pub spin_retries: AtomicU64,
    /// Hardware full/empty produce operations (HEP personality).
    pub fe_produces: AtomicU64,
    /// Hardware full/empty consume operations (HEP personality).
    pub fe_consumes: AtomicU64,
    /// Barrier episodes completed.
    pub barrier_episodes: AtomicU64,
    /// Logical locks created.
    pub locks_created: AtomicU64,
    /// Logical locks that aliased an already-used pool slot (scarce-lock
    /// machines only).
    pub locks_aliased: AtomicU64,
    /// Shared-memory words allocated.
    pub shared_words: AtomicU64,
    /// Padding words inserted by the sharing model to keep private data
    /// off shared pages (Encore) or to align blocks to pages (Alliant).
    pub padding_words: AtomicU64,
    /// Processes created.
    pub processes_created: AtomicU64,
    /// Faults deliberately injected by the fault-injection layer
    /// (panics, delays, spurious lock failures).
    pub faults_injected: AtomicU64,
    /// Genuine process faults detected by the fault plane (panics and
    /// interpreter runtime errors trapped at process boundaries).
    pub faults_detected: AtomicU64,
    /// Times a blocked process observed a tripped cancellation token and
    /// unwound instead of waiting forever.
    pub cancellations_observed: AtomicU64,
    /// Times the deadlock watchdog declared a no-progress episode.
    pub watchdog_trips: AtomicU64,
}

impl OpStats {
    /// A fresh, all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment one counter by one (relaxed).
    #[inline]
    pub fn count(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment one counter by `n` (relaxed).
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot the counters into a plain struct for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            lock_acquires: g(&self.lock_acquires),
            lock_contended: g(&self.lock_contended),
            lock_releases: g(&self.lock_releases),
            syscalls: g(&self.syscalls),
            parks: g(&self.parks),
            spin_retries: g(&self.spin_retries),
            fe_produces: g(&self.fe_produces),
            fe_consumes: g(&self.fe_consumes),
            barrier_episodes: g(&self.barrier_episodes),
            locks_created: g(&self.locks_created),
            locks_aliased: g(&self.locks_aliased),
            shared_words: g(&self.shared_words),
            padding_words: g(&self.padding_words),
            processes_created: g(&self.processes_created),
            faults_injected: g(&self.faults_injected),
            faults_detected: g(&self.faults_detected),
            cancellations_observed: g(&self.cancellations_observed),
            watchdog_trips: g(&self.watchdog_trips),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        let z = |c: &AtomicU64| c.store(0, Ordering::Relaxed);
        z(&self.lock_acquires);
        z(&self.lock_contended);
        z(&self.lock_releases);
        z(&self.syscalls);
        z(&self.parks);
        z(&self.spin_retries);
        z(&self.fe_produces);
        z(&self.fe_consumes);
        z(&self.barrier_episodes);
        z(&self.locks_created);
        z(&self.locks_aliased);
        z(&self.shared_words);
        z(&self.padding_words);
        z(&self.processes_created);
        z(&self.faults_injected);
        z(&self.faults_detected);
        z(&self.cancellations_observed);
        z(&self.watchdog_trips);
    }
}

/// A point-in-time copy of [`OpStats`]; fields mirror the counters there.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub lock_acquires: u64,
    pub lock_contended: u64,
    pub lock_releases: u64,
    pub syscalls: u64,
    pub parks: u64,
    pub spin_retries: u64,
    pub fe_produces: u64,
    pub fe_consumes: u64,
    pub barrier_episodes: u64,
    pub locks_created: u64,
    pub locks_aliased: u64,
    pub shared_words: u64,
    pub padding_words: u64,
    pub processes_created: u64,
    pub faults_injected: u64,
    pub faults_detected: u64,
    pub cancellations_observed: u64,
    pub watchdog_trips: u64,
}

impl StatsSnapshot {
    /// Difference of two snapshots (`self - earlier`), saturating at
    /// zero: the per-job operation counts of one run on a resident
    /// session, as opposed to the pool-lifetime cumulative totals the
    /// raw counters accumulate.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        self.since(earlier)
    }

    /// Difference of two snapshots (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            lock_acquires: self.lock_acquires.saturating_sub(earlier.lock_acquires),
            lock_contended: self.lock_contended.saturating_sub(earlier.lock_contended),
            lock_releases: self.lock_releases.saturating_sub(earlier.lock_releases),
            syscalls: self.syscalls.saturating_sub(earlier.syscalls),
            parks: self.parks.saturating_sub(earlier.parks),
            spin_retries: self.spin_retries.saturating_sub(earlier.spin_retries),
            fe_produces: self.fe_produces.saturating_sub(earlier.fe_produces),
            fe_consumes: self.fe_consumes.saturating_sub(earlier.fe_consumes),
            barrier_episodes: self
                .barrier_episodes
                .saturating_sub(earlier.barrier_episodes),
            locks_created: self.locks_created.saturating_sub(earlier.locks_created),
            locks_aliased: self.locks_aliased.saturating_sub(earlier.locks_aliased),
            shared_words: self.shared_words.saturating_sub(earlier.shared_words),
            padding_words: self.padding_words.saturating_sub(earlier.padding_words),
            processes_created: self
                .processes_created
                .saturating_sub(earlier.processes_created),
            faults_injected: self.faults_injected.saturating_sub(earlier.faults_injected),
            faults_detected: self.faults_detected.saturating_sub(earlier.faults_detected),
            cancellations_observed: self
                .cancellations_observed
                .saturating_sub(earlier.cancellations_observed),
            watchdog_trips: self.watchdog_trips.saturating_sub(earlier.watchdog_trips),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = OpStats::new().snapshot();
        assert_eq!(s, StatsSnapshot::default());
    }

    #[test]
    fn count_and_snapshot() {
        let st = OpStats::new();
        OpStats::count(&st.lock_acquires);
        OpStats::count(&st.lock_acquires);
        OpStats::add(&st.spin_retries, 5);
        let s = st.snapshot();
        assert_eq!(s.lock_acquires, 2);
        assert_eq!(s.spin_retries, 5);
        assert_eq!(s.lock_releases, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let st = OpStats::new();
        OpStats::count(&st.syscalls);
        OpStats::count(&st.parks);
        st.reset();
        assert_eq!(st.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn since_subtracts_saturating() {
        let st = OpStats::new();
        OpStats::add(&st.lock_acquires, 10);
        let a = st.snapshot();
        OpStats::add(&st.lock_acquires, 7);
        let b = st.snapshot();
        assert_eq!(b.since(&a).lock_acquires, 7);
        // Saturates instead of underflowing.
        assert_eq!(a.since(&b).lock_acquires, 0);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let st = std::sync::Arc::new(OpStats::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let st = std::sync::Arc::clone(&st);
                s.spawn(move || {
                    for _ in 0..1000 {
                        OpStats::count(&st.lock_acquires);
                    }
                });
            }
        });
        assert_eq!(st.snapshot().lock_acquires, 8000);
    }
}
