//! Scarce-lock management — §4.1.3: "In some machines, locks may be scarce
//! resources.  On these machines, some parallel programs may not execute as
//! efficiently as others if a large number of asynchronous variables are
//! needed."
//!
//! The Cray-2 personality owns a fixed pool of OS locks.  While the pool
//! has free slots, every logical lock gets a dedicated slot.  Once the pool
//! is exhausted, new logical locks *alias* existing slots round-robin: the
//! program still works (the lock protocol is untouched) but unrelated
//! logical locks now contend on the same physical lock — the inefficiency
//! the paper warns about, measured in EXP-11.

use std::sync::Arc;

use crate::lock::{LockHandle, LockState};
use crate::portable::Mutex;
use crate::stats::OpStats;

/// Factory that builds one physical lock in a given initial state.
pub type LockFactory = Arc<dyn Fn(LockState) -> LockHandle + Send + Sync>;

/// A fixed-capacity pool of physical locks onto which logical locks map.
pub struct LockPool {
    inner: Mutex<PoolInner>,
    capacity: usize,
    factory: LockFactory,
    stats: Arc<OpStats>,
}

struct PoolInner {
    slots: Vec<LockHandle>,
    cursor: usize,
}

impl LockPool {
    /// Create an empty pool of `capacity` physical lock slots.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a machine with no locks at all
    /// cannot host the Force.
    pub fn new(capacity: usize, factory: LockFactory, stats: Arc<OpStats>) -> Self {
        assert!(capacity > 0, "lock pool capacity must be positive");
        LockPool {
            inner: Mutex::new(PoolInner {
                slots: Vec::with_capacity(capacity),
                cursor: 0,
            }),
            capacity,
            factory,
            stats,
        }
    }

    /// Allocate a logical lock.
    ///
    /// Returns a dedicated physical lock while slots remain; afterwards
    /// returns an aliased handle to an existing slot (and counts the alias).
    /// An aliased allocation ignores `initial`: the physical lock already
    /// has a state that other logical locks depend on.
    pub fn allocate(&self, initial: LockState) -> LockHandle {
        let mut inner = self.inner.lock();
        if inner.slots.len() < self.capacity {
            let lock = (self.factory)(initial);
            inner.slots.push(Arc::clone(&lock));
            lock
        } else {
            OpStats::count(&self.stats.locks_aliased);
            let idx = inner.cursor % self.capacity;
            inner.cursor = inner.cursor.wrapping_add(1);
            Arc::clone(&inner.slots[idx])
        }
    }

    /// Number of physical slots currently in use.
    pub fn allocated(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// Pool capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscall_lock::SyscallLock;

    fn pool(capacity: usize) -> (LockPool, Arc<OpStats>) {
        let stats = Arc::new(OpStats::new());
        let st = Arc::clone(&stats);
        let factory: LockFactory =
            Arc::new(move |init| Arc::new(SyscallLock::new(init, Arc::clone(&st))) as LockHandle);
        (LockPool::new(capacity, factory, Arc::clone(&stats)), stats)
    }

    #[test]
    fn dedicated_until_capacity() {
        let (p, stats) = pool(3);
        let a = p.allocate(LockState::Unlocked);
        let b = p.allocate(LockState::Unlocked);
        let c = p.allocate(LockState::Unlocked);
        assert_eq!(p.allocated(), 3);
        assert_eq!(stats.snapshot().locks_aliased, 0);
        // Distinct physical locks: locking one leaves the others free.
        a.lock();
        assert!(b.try_lock());
        assert!(c.try_lock());
        a.unlock();
        b.unlock();
        c.unlock();
    }

    #[test]
    fn aliases_after_capacity() {
        let (p, stats) = pool(2);
        let a = p.allocate(LockState::Unlocked);
        let _b = p.allocate(LockState::Unlocked);
        let c = p.allocate(LockState::Unlocked); // aliases slot 0 (= a)
        assert_eq!(stats.snapshot().locks_aliased, 1);
        a.lock();
        // c shares a's physical lock, so it is observed locked.
        assert!(!c.try_lock());
        a.unlock();
    }

    #[test]
    fn aliasing_is_round_robin() {
        let (p, _) = pool(2);
        let a = p.allocate(LockState::Unlocked);
        let b = p.allocate(LockState::Unlocked);
        let c = p.allocate(LockState::Unlocked); // slot 0
        let d = p.allocate(LockState::Unlocked); // slot 1
        a.lock();
        assert!(!c.try_lock(), "c aliases a");
        b.lock();
        assert!(!d.try_lock(), "d aliases b");
        a.unlock();
        b.unlock();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = pool(0);
    }
}
