//! Shared-memory designation — §4.1.2 "Parallel Environment".
//!
//! The paper identifies four ways the six machines decide *what is shared*:
//!
//! * **compile time** (HEP, Flex/32): shared declarations simply become
//!   shared COMMON; nothing else to do ([`CompileTimeSharing`]);
//! * **link time** (Sequent Balance): a generated startup routine per
//!   module reports its shared variables, the program is run twice, and
//!   the first run pipes linker commands to a shell
//!   ([`LinkTimeSharing`], backed by [`crate::linkreg::StartupRegistry`]);
//! * **run time, paged** (Encore Multimax): shared variables live in shared
//!   pages and the implementation pads the beginning and end of the shared
//!   area so private data never cohabits a shared page
//!   ([`RunTimePagedSharing`]);
//! * **run time, page-aligned** (Alliant FX/8): like Encore "except that
//!   all sharing must start at the beginning of a page"
//!   ([`PageAlignedSharing`]).
//!
//! A [`SharingModel`] lays out named COMMON blocks into one shared word
//! array; [`SharedRegion`] is that array (word-grained atomics, so any mix
//! of processes may read and write without UB — races, if a Force program
//! has them, show up as value races exactly as they did on the real
//! machines, never as memory unsafety).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::linkreg::StartupRegistry;
use crate::stats::OpStats;

/// Identifies one of the paper's sharing strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingModelId {
    /// Shared at compile time (HEP, Flex/32).
    CompileTime,
    /// Shared at link time via startup-routine registry (Sequent).
    LinkTime,
    /// Shared pages identified at run time, padded front and back (Encore).
    RunTimePaged,
    /// Run-time sharing, every block page-aligned (Alliant).
    PageAligned,
}

impl SharingModelId {
    /// The paper's description of the strategy.
    pub fn name(self) -> &'static str {
        match self {
            SharingModelId::CompileTime => "compile-time shared COMMON",
            SharingModelId::LinkTime => "link-time (startup-routine registry)",
            SharingModelId::RunTimePaged => "run-time shared pages (padded)",
            SharingModelId::PageAligned => "run-time shared pages (page-aligned blocks)",
        }
    }
}

/// A request to place one named COMMON block of `words` 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRequest {
    /// COMMON block name.
    pub name: String,
    /// Size in 64-bit words.
    pub words: usize,
}

impl BlockRequest {
    /// A request for block `name` of `words` words.
    pub fn new(name: impl Into<String>, words: usize) -> Self {
        BlockRequest {
            name: name.into(),
            words,
        }
    }
}

/// The result of laying out blocks: offsets into one shared region.
#[derive(Debug, Clone)]
pub struct SharedLayout {
    /// block name -> (first word offset, length in words)
    offsets: HashMap<String, (usize, usize)>,
    /// Total region size in words, padding included.
    pub total_words: usize,
    /// Words spent on padding/alignment.
    pub padding_words: usize,
    /// Which model produced the layout.
    pub model: SharingModelId,
}

impl SharedLayout {
    /// Offset and length of a named block.
    pub fn block(&self, name: &str) -> Option<(usize, usize)> {
        self.offsets.get(name).copied()
    }

    /// All block names in the layout.
    pub fn block_names(&self) -> impl Iterator<Item = &str> {
        self.offsets.keys().map(|s| s.as_str())
    }

    /// Number of blocks laid out.
    pub fn block_count(&self) -> usize {
        self.offsets.len()
    }
}

/// Errors produced while designating shared memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharingError {
    /// The same block name was requested twice.
    DuplicateBlock(String),
    /// Link-time sharing used before the startup registry was finalized
    /// (the Sequent's "second run" had not happened yet).
    RegistryNotFinalized,
    /// A block was laid out that no startup routine ever registered.
    UnregisteredBlock(String),
    /// A block was registered with one size and laid out with another.
    SizeMismatch {
        /// Block name.
        block: String,
        /// Size the startup routine registered.
        registered: usize,
        /// Size the layout requested.
        requested: usize,
    },
}

impl std::fmt::Display for SharingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SharingError::DuplicateBlock(n) => write!(f, "duplicate shared block `{n}`"),
            SharingError::RegistryNotFinalized => write!(
                f,
                "link-time sharing requires the startup registry to be finalized (run the link pass first)"
            ),
            SharingError::UnregisteredBlock(n) => {
                write!(f, "shared block `{n}` was never registered by a startup routine")
            }
            SharingError::SizeMismatch {
                block,
                registered,
                requested,
            } => write!(
                f,
                "shared block `{block}` registered with {registered} words but laid out with {requested}"
            ),
        }
    }
}

impl std::error::Error for SharingError {}

/// Strategy interface: how a machine designates shared storage.
pub trait SharingModel: Send + Sync {
    /// Which strategy this is.
    fn id(&self) -> SharingModelId;

    /// Lay out the given blocks into one shared region.
    fn layout(&self, blocks: &[BlockRequest]) -> Result<SharedLayout, SharingError>;
}

fn check_duplicates(blocks: &[BlockRequest]) -> Result<(), SharingError> {
    let mut seen = HashMap::new();
    for b in blocks {
        if seen.insert(b.name.as_str(), ()).is_some() {
            return Err(SharingError::DuplicateBlock(b.name.clone()));
        }
    }
    Ok(())
}

/// HEP / Flex/32: declarations are shared by the compiler; blocks pack
/// back to back with no padding.
pub struct CompileTimeSharing;

impl SharingModel for CompileTimeSharing {
    fn id(&self) -> SharingModelId {
        SharingModelId::CompileTime
    }

    fn layout(&self, blocks: &[BlockRequest]) -> Result<SharedLayout, SharingError> {
        check_duplicates(blocks)?;
        let mut offsets = HashMap::new();
        let mut at = 0usize;
        for b in blocks {
            offsets.insert(b.name.clone(), (at, b.words));
            at += b.words;
        }
        Ok(SharedLayout {
            offsets,
            total_words: at,
            padding_words: 0,
            model: SharingModelId::CompileTime,
        })
    }
}

/// Sequent Balance: the linker must be told every shared name; the
/// registry collects them on the first "run" and the layout is only legal
/// after `finalize` (the second run).
pub struct LinkTimeSharing {
    registry: Arc<StartupRegistry>,
}

impl LinkTimeSharing {
    /// Link-time sharing backed by `registry`.
    pub fn new(registry: Arc<StartupRegistry>) -> Self {
        LinkTimeSharing { registry }
    }

    /// The registry backing this model.
    pub fn registry(&self) -> &Arc<StartupRegistry> {
        &self.registry
    }
}

impl SharingModel for LinkTimeSharing {
    fn id(&self) -> SharingModelId {
        SharingModelId::LinkTime
    }

    fn layout(&self, blocks: &[BlockRequest]) -> Result<SharedLayout, SharingError> {
        check_duplicates(blocks)?;
        if !self.registry.is_finalized() {
            return Err(SharingError::RegistryNotFinalized);
        }
        let mut offsets = HashMap::new();
        let mut at = 0usize;
        for b in blocks {
            match self.registry.registered_size(&b.name) {
                None => return Err(SharingError::UnregisteredBlock(b.name.clone())),
                Some(sz) if sz != b.words => {
                    return Err(SharingError::SizeMismatch {
                        block: b.name.clone(),
                        registered: sz,
                        requested: b.words,
                    })
                }
                Some(_) => {}
            }
            offsets.insert(b.name.clone(), (at, b.words));
            at += b.words;
        }
        Ok(SharedLayout {
            offsets,
            total_words: at,
            padding_words: 0,
            model: SharingModelId::LinkTime,
        })
    }
}

fn round_up(x: usize, to: usize) -> usize {
    debug_assert!(to > 0);
    x.div_ceil(to) * to
}

/// Encore Multimax: shared variables live in shared pages; the Force pads
/// "the extra space at the beginning and the end of the shared area to
/// ensure separation of shared and private declarations" (§4.1.2).
pub struct RunTimePagedSharing {
    page_words: usize,
}

impl RunTimePagedSharing {
    /// # Panics
    /// Panics on a zero page size.
    pub fn new(page_words: usize) -> Self {
        assert!(page_words > 0, "page size must be positive");
        RunTimePagedSharing { page_words }
    }
}

impl SharingModel for RunTimePagedSharing {
    fn id(&self) -> SharingModelId {
        SharingModelId::RunTimePaged
    }

    fn layout(&self, blocks: &[BlockRequest]) -> Result<SharedLayout, SharingError> {
        check_duplicates(blocks)?;
        let mut offsets = HashMap::new();
        // A full leading pad page keeps preceding private data off the
        // first shared page.
        let mut at = self.page_words;
        let lead = at;
        for b in blocks {
            offsets.insert(b.name.clone(), (at, b.words));
            at += b.words;
        }
        // Round the end up to a page boundary and add a trailing pad page.
        let data_end = at;
        let rounded = round_up(data_end, self.page_words);
        let total = rounded + self.page_words;
        let padding = lead + (rounded - data_end) + self.page_words;
        Ok(SharedLayout {
            offsets,
            total_words: total,
            padding_words: padding,
            model: SharingModelId::RunTimePaged,
        })
    }
}

/// Alliant FX/8: "very similar to Encore except that all sharing must
/// start at the beginning of a page" — every block is page-aligned.
pub struct PageAlignedSharing {
    page_words: usize,
}

impl PageAlignedSharing {
    /// # Panics
    /// Panics on a zero page size.
    pub fn new(page_words: usize) -> Self {
        assert!(page_words > 0, "page size must be positive");
        PageAlignedSharing { page_words }
    }
}

impl SharingModel for PageAlignedSharing {
    fn id(&self) -> SharingModelId {
        SharingModelId::PageAligned
    }

    fn layout(&self, blocks: &[BlockRequest]) -> Result<SharedLayout, SharingError> {
        check_duplicates(blocks)?;
        let mut offsets = HashMap::new();
        let mut at = 0usize;
        let mut padding = 0usize;
        for b in blocks {
            let aligned = round_up(at, self.page_words);
            padding += aligned - at;
            offsets.insert(b.name.clone(), (aligned, b.words));
            at = aligned + b.words;
        }
        let total = round_up(at, self.page_words);
        padding += total - at;
        Ok(SharedLayout {
            offsets,
            total_words: total,
            padding_words: padding,
            model: SharingModelId::PageAligned,
        })
    }
}

/// The shared word array every process of the force sees.
///
/// Words are `AtomicU64` accessed with `Relaxed` loads/stores by default:
/// this models ordinary shared memory (no implicit synchronization — the
/// Force requires explicit locks/barriers for that, exactly like the
/// original machines) while keeping Rust's memory model intact.
pub struct SharedRegion {
    words: Box<[AtomicU64]>,
    layout: SharedLayout,
}

impl SharedRegion {
    /// Allocate a zero-initialized region for a layout.
    pub fn allocate(layout: SharedLayout, stats: &OpStats) -> Self {
        OpStats::add(&stats.shared_words, layout.total_words as u64);
        OpStats::add(&stats.padding_words, layout.padding_words as u64);
        let words = (0..layout.total_words)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SharedRegion { words, layout }
    }

    /// The layout this region was allocated for.
    pub fn layout(&self) -> &SharedLayout {
        &self.layout
    }

    /// Zero every word in place, restoring the freshly-allocated state
    /// for a session's next run.  Unlike reallocating, this charges no
    /// `shared_words` designation cost — a resident session pays for
    /// shared-memory designation once, not per run.  Must only be called
    /// while no process is accessing the region.
    pub fn reset(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Region length in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Raw word load.
    #[inline]
    pub fn load_raw(&self, offset: usize) -> u64 {
        self.words[offset].load(Ordering::Relaxed)
    }

    /// Raw word store.
    #[inline]
    pub fn store_raw(&self, offset: usize, value: u64) {
        self.words[offset].store(value, Ordering::Relaxed)
    }

    /// Load a word with `Acquire` ordering (used right after a lock
    /// acquisition in the interpreter's synchronization idioms).
    #[inline]
    pub fn load_acquire(&self, offset: usize) -> u64 {
        self.words[offset].load(Ordering::Acquire)
    }

    /// Store a word with `Release` ordering.
    #[inline]
    pub fn store_release(&self, offset: usize, value: u64) {
        self.words[offset].store(value, Ordering::Release)
    }

    /// Signed-integer view of a word.
    #[inline]
    pub fn load_i64(&self, offset: usize) -> i64 {
        self.load_raw(offset) as i64
    }

    /// Store a signed integer.
    #[inline]
    pub fn store_i64(&self, offset: usize, value: i64) {
        self.store_raw(offset, value as u64)
    }

    /// Floating view of a word.
    #[inline]
    pub fn load_f64(&self, offset: usize) -> f64 {
        f64::from_bits(self.load_raw(offset))
    }

    /// Store a float.
    #[inline]
    pub fn store_f64(&self, offset: usize, value: f64) {
        self.store_raw(offset, value.to_bits())
    }

    /// Atomic fetch-add on an integer word (SeqCst: this is a
    /// synchronization operation, used by selfscheduled index service).
    #[inline]
    pub fn fetch_add_i64(&self, offset: usize, delta: i64) -> i64 {
        self.words[offset].fetch_add(delta as u64, Ordering::SeqCst) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(specs: &[(&str, usize)]) -> Vec<BlockRequest> {
        specs
            .iter()
            .map(|(n, w)| BlockRequest::new(*n, *w))
            .collect()
    }

    #[test]
    fn compile_time_packs_tight() {
        let m = CompileTimeSharing;
        let l = m.layout(&blocks(&[("A", 10), ("B", 5)])).unwrap();
        assert_eq!(l.block("A"), Some((0, 10)));
        assert_eq!(l.block("B"), Some((10, 5)));
        assert_eq!(l.total_words, 15);
        assert_eq!(l.padding_words, 0);
    }

    #[test]
    fn duplicate_blocks_rejected() {
        let m = CompileTimeSharing;
        let err = m.layout(&blocks(&[("A", 1), ("A", 2)])).unwrap_err();
        assert_eq!(err, SharingError::DuplicateBlock("A".into()));
    }

    #[test]
    fn encore_pads_front_and_back() {
        let m = RunTimePagedSharing::new(8);
        let l = m.layout(&blocks(&[("A", 3)])).unwrap();
        // one lead pad page, data rounded to a page, one trailing pad page
        assert_eq!(l.block("A"), Some((8, 3)));
        assert_eq!(l.total_words, 8 + 8 + 8);
        assert_eq!(l.padding_words, 8 + 5 + 8);
    }

    #[test]
    fn encore_pad_is_exact_on_page_multiple() {
        let m = RunTimePagedSharing::new(4);
        let l = m.layout(&blocks(&[("A", 8)])).unwrap();
        assert_eq!(l.block("A"), Some((4, 8)));
        assert_eq!(l.total_words, 4 + 8 + 4);
        assert_eq!(l.padding_words, 8);
    }

    #[test]
    fn alliant_aligns_every_block() {
        let m = PageAlignedSharing::new(8);
        let l = m.layout(&blocks(&[("A", 3), ("B", 9)])).unwrap();
        assert_eq!(l.block("A"), Some((0, 3)));
        assert_eq!(l.block("B"), Some((8, 9))); // next page boundary
        assert_eq!(l.total_words, 24); // 8+9 rounded to page
        assert_eq!(l.padding_words, 5 + 7);
    }

    #[test]
    fn link_time_requires_finalized_registry() {
        let reg = Arc::new(StartupRegistry::new());
        let m = LinkTimeSharing::new(Arc::clone(&reg));
        let err = m.layout(&blocks(&[("A", 4)])).unwrap_err();
        assert_eq!(err, SharingError::RegistryNotFinalized);

        reg.register_module("MAIN", &[("A".into(), 4)]);
        reg.finalize();
        let l = m.layout(&blocks(&[("A", 4)])).unwrap();
        assert_eq!(l.block("A"), Some((0, 4)));
    }

    #[test]
    fn link_time_rejects_unregistered_and_mismatched() {
        let reg = Arc::new(StartupRegistry::new());
        reg.register_module("MAIN", &[("A".into(), 4)]);
        reg.finalize();
        let m = LinkTimeSharing::new(reg);
        assert_eq!(
            m.layout(&blocks(&[("B", 4)])).unwrap_err(),
            SharingError::UnregisteredBlock("B".into())
        );
        assert_eq!(
            m.layout(&blocks(&[("A", 5)])).unwrap_err(),
            SharingError::SizeMismatch {
                block: "A".into(),
                registered: 4,
                requested: 5
            }
        );
    }

    #[test]
    fn region_roundtrips_values() {
        let stats = OpStats::new();
        let m = CompileTimeSharing;
        let l = m.layout(&blocks(&[("A", 4)])).unwrap();
        let r = SharedRegion::allocate(l, &stats);
        r.store_i64(0, -7);
        assert_eq!(r.load_i64(0), -7);
        r.store_f64(1, 2.5);
        assert_eq!(r.load_f64(1), 2.5);
        assert_eq!(r.fetch_add_i64(0, 3), -7);
        assert_eq!(r.load_i64(0), -4);
        assert_eq!(stats.snapshot().shared_words, 4);
    }

    #[test]
    fn region_is_visible_across_threads() {
        let stats = OpStats::new();
        let l = CompileTimeSharing.layout(&blocks(&[("A", 1)])).unwrap();
        let r = Arc::new(SharedRegion::allocate(l, &stats));
        let r2 = Arc::clone(&r);
        let t = std::thread::spawn(move || {
            r2.store_release(0, 99);
        });
        t.join().unwrap();
        assert_eq!(r.load_acquire(0), 99);
    }

    #[test]
    fn padding_counted_in_stats() {
        let stats = OpStats::new();
        let l = RunTimePagedSharing::new(8)
            .layout(&blocks(&[("A", 3)]))
            .unwrap();
        let pad = l.padding_words as u64;
        let _r = SharedRegion::allocate(l, &stats);
        assert_eq!(stats.snapshot().padding_words, pad);
    }
}
