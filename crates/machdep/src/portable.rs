//! Portable concurrency primitives — the zero-dependency substrate.
//!
//! The paper's whole argument (§4.1) is that *all* machine dependence can
//! be confined to a small layer of primitives; everything above is
//! portable.  This module is where our reproduction keeps that promise at
//! the build level: every synchronization helper the workspace needs is
//! implemented here over `std` alone, so the default build resolves no
//! external crates at all and works fully offline.
//!
//! Provided primitives:
//!
//! * [`Backoff`] — bounded exponential spin/yield backoff for busy-wait
//!   loops (the role `crossbeam::utils::Backoff` used to play).
//! * [`CachePadded`] — aligns a value to its own cache line so per-process
//!   slots never false-share (replaces `crossbeam::utils::CachePadded`).
//! * [`Mutex`] / [`Condvar`] — thin poison-transparent wrappers over
//!   `std::sync` with the guard-based API the rest of the workspace uses
//!   (replaces `parking_lot`).  A panicked critical section does not wedge
//!   the simulated machine: the lock is simply taken over, which matches
//!   the Fortran original where locks carried no poison state.
//! * [`XorShift64`] — a tiny deterministic PRNG for tests and benches
//!   (replaces the `rand` dev-dependency).

use std::cell::Cell;
use std::fmt;
use std::hint;
use std::ops::{Deref, DerefMut};
use std::thread;

/// Spin attempts double each step up to `1 << SPIN_LIMIT` before
/// [`Backoff::snooze`] switches from spinning to yielding the thread.
const SPIN_LIMIT: u32 = 6;
/// After this many total steps the backoff reports itself completed and
/// callers with a parking fallback should stop spinning altogether.
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff for spin loops.
///
/// `spin` busy-waits with a budget that doubles per call (capped);
/// `snooze` does the same but degrades to `thread::yield_now` once the
/// spin budget is exhausted, so a long wait stops burning a core.
pub struct Backoff {
    step: Cell<u32>,
}

impl Backoff {
    /// A fresh backoff at step zero.
    pub const fn new() -> Self {
        Backoff { step: Cell::new(0) }
    }

    /// Reset to step zero (reusable across acquire attempts).
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Busy-spin, doubling the budget each call up to the spin limit.
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..1u32 << step {
            hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Spin while the budget lasts, then yield the processor.
    pub fn snooze(&self) {
        if self.step.get() <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step.get() {
                hint::spin_loop();
            }
        } else {
            thread::yield_now();
        }
        if self.step.get() <= YIELD_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Whether the spin budget is exhausted and the caller should park if
    /// it can (mirrors the crossbeam API contract).
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }

    /// The jittered retry delay for `attempt` (0-based): `base << attempt`
    /// capped at `base << JITTER_SHIFT_CAP`, then scaled by a uniformly
    /// random factor in `[0.5, 1.0)` drawn from `rng`.
    ///
    /// The jitter decorrelates retries from concurrent submitters that
    /// faulted at the same instant, while the seeded [`XorShift64`] keeps
    /// the whole schedule reproducible — the same seed and attempt
    /// sequence always yields the same delays.  Sleeping is left to
    /// [`Backoff::sleep_jittered`] so tests can inspect the schedule
    /// without waiting it out.
    pub fn jittered_delay(
        base: std::time::Duration,
        attempt: u32,
        rng: &mut XorShift64,
    ) -> std::time::Duration {
        /// Exponential growth stops doubling past this attempt so a long
        /// retry chain cannot overflow or sleep unboundedly (base × 2¹⁰).
        const JITTER_SHIFT_CAP: u32 = 10;
        let shift = attempt.min(JITTER_SHIFT_CAP);
        let ceiling = base.saturating_mul(1u32 << shift);
        // Scale by 1/2 + r/2 with r uniform in [0, 1), using integer
        // nanoseconds to stay exact and platform-independent.
        let nanos = ceiling.as_nanos().min(u64::MAX as u128) as u64;
        let half = nanos / 2;
        let jitter = if half == 0 {
            0
        } else {
            rng.next_below(half.saturating_add(1))
        };
        std::time::Duration::from_nanos(half.saturating_add(jitter))
    }

    /// Sleep for [`Backoff::jittered_delay`]`(base, attempt, rng)` and
    /// return the duration actually requested.
    pub fn sleep_jittered(
        base: std::time::Duration,
        attempt: u32,
        rng: &mut XorShift64,
    ) -> std::time::Duration {
        let d = Self::jittered_delay(base, attempt, rng);
        if !d.is_zero() {
            thread::sleep(d);
        }
        d
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Backoff")
            .field("step", &self.step.get())
            .finish()
    }
}

/// Pads and aligns a value to 128 bytes so adjacent values sit on
/// distinct cache lines (128 covers the pair-prefetch granularity of
/// modern x86 as well as 128-byte-line machines).
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` to its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

/// A mutual-exclusion lock whose `lock` returns the guard directly and
/// ignores poisoning: if a holder panicked, the next locker takes over.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value (poison-transparent).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking; a poisoned lock is taken over.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(MutexGuard {
                inner: Some(poison.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]; unlocks on drop.
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily move
/// the `std` guard out while the thread is blocked; it is `Some` at every
/// other moment.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard vacated during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard vacated during wait")
    }
}

/// A condition variable paired with [`Mutex`], with the in-place
/// `wait(&mut guard)` API (poison-transparent like the mutex).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-acquired (taking over any poison) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard vacated during wait");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|poison| poison.into_inner());
        guard.inner = Some(reacquired);
    }

    /// Like [`wait`](Self::wait) but with a timeout: returns `true` if the
    /// wait timed out, `false` if it was (possibly spuriously) notified.
    /// Used by cancellable waits, which must periodically re-check a
    /// cancellation token even if no notification ever arrives.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard vacated during wait");
        let (reacquired, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poison) => {
                let (g, r) = poison.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(reacquired);
        result.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A deterministic xorshift64* pseudo-random generator for tests and
/// benches.  Not cryptographic; its virtue is that it is seedable,
/// reproducible, and lives in-repo.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded generator (a zero seed is remapped to a fixed constant, as
    /// xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below needs a positive bound");
        self.next_u64() % bound
    }

    /// Uniform usize index in `0..bound`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    pub fn next_i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let v = (self.next_u64() as u128) % span;
        (lo as i128 + v as i128) as i64
    }

    /// A uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn backoff_yields_after_spin_budget() {
        let b = Backoff::new();
        for _ in 0..SPIN_LIMIT + 1 {
            assert!(!b.is_completed(), "budget should not be spent yet");
            b.snooze();
        }
        // Past the spin limit snooze switches to yielding; past the yield
        // limit the backoff reports completion.
        for _ in 0..YIELD_LIMIT {
            b.snooze();
        }
        assert!(
            b.is_completed(),
            "snooze past the yield limit must complete"
        );
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn backoff_spin_never_completes() {
        // `spin` models a pure busy-wait personality: it caps its budget
        // but never reports completion (there is nothing to park on).
        let b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        assert!(!b.is_completed());
    }

    #[test]
    fn cache_padded_alignment_is_at_least_128() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        // Adjacent array elements land on distinct lines.
        let arr = [CachePadded::new(0u64), CachePadded::new(1u64)];
        let a = &*arr[0] as *const u64 as usize;
        let b = &*arr[1] as *const u64 as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn cache_padded_is_transparent() {
        let mut c = CachePadded::new(41u32);
        *c += 1;
        assert_eq!(*c, 42);
        assert_eq!(c.into_inner(), 42);
        assert_eq!(*CachePadded::from(7i64), 7);
    }

    #[test]
    fn mutex_guards_and_try_lock() {
        let m = Mutex::new(5i32);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none(), "held lock must not re-enter");
        }
        assert_eq!(*m.try_lock().expect("free lock"), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_survives_a_poisoned_lock() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A std mutex would now return Err(Poisoned); the wrapper recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
        let mut m = Arc::try_unwrap(m).expect("sole owner");
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiters() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let arrived = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pair = Arc::clone(&pair);
            let arrived = Arc::clone(&arrived);
            handles.push(std::thread::spawn(move || {
                let (lock, cond) = &*pair;
                let mut ready = lock.lock();
                arrived.fetch_add(1, Ordering::SeqCst);
                while !*ready {
                    cond.wait(&mut ready);
                }
            }));
        }
        while arrived.load(Ordering::SeqCst) < 4 {
            std::thread::yield_now();
        }
        let (lock, cond) = &*pair;
        *lock.lock() = true;
        cond.notify_all();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn condvar_survives_poison_during_wait() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cond) = &*pair2;
            let mut n = lock.lock();
            while *n == 0 {
                cond.wait(&mut n);
            }
            *n
        });
        let pair3 = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let (lock, _) = &*pair3;
            let mut n = lock.lock();
            *n = 7;
            panic!("poison while holding");
        })
        .join();
        pair.1.notify_all();
        assert_eq!(waiter.join().unwrap(), 7);
    }

    #[test]
    fn jittered_delay_is_deterministic_per_seed() {
        use std::time::Duration;
        let base = Duration::from_millis(1);
        let mut a = XorShift64::new(99);
        let mut b = XorShift64::new(99);
        for attempt in 0..6 {
            assert_eq!(
                Backoff::jittered_delay(base, attempt, &mut a),
                Backoff::jittered_delay(base, attempt, &mut b),
                "same seed must reproduce the same retry schedule"
            );
        }
        // A different seed decorrelates at least one attempt.
        let mut c = XorShift64::new(100);
        let mut d = XorShift64::new(99);
        let differs = (0..6).any(|attempt| {
            Backoff::jittered_delay(base, attempt, &mut c)
                != Backoff::jittered_delay(base, attempt, &mut d)
        });
        assert!(differs, "distinct seeds should produce distinct jitter");
    }

    #[test]
    fn jittered_delay_bounds_and_growth() {
        use std::time::Duration;
        let base = Duration::from_millis(2);
        let mut rng = XorShift64::new(7);
        for attempt in 0..12 {
            let ceiling = base.saturating_mul(1u32 << attempt.min(10));
            let d = Backoff::jittered_delay(base, attempt, &mut rng);
            assert!(d >= ceiling / 2, "jitter below half the ceiling: {d:?}");
            assert!(d <= ceiling, "jitter above the ceiling: {d:?}");
        }
        // The exponential cap holds: attempt 30 is no larger than the
        // attempt-10 ceiling.
        let d = Backoff::jittered_delay(base, 30, &mut rng);
        assert!(d <= base * (1u32 << 10));
        // A zero base never sleeps.
        assert_eq!(
            Backoff::jittered_delay(Duration::ZERO, 3, &mut rng),
            Duration::ZERO
        );
    }

    #[test]
    fn sleep_jittered_sleeps_at_least_the_requested_delay() {
        use std::time::{Duration, Instant};
        let mut rng = XorShift64::new(11);
        let start = Instant::now();
        let requested = Backoff::sleep_jittered(Duration::from_millis(2), 1, &mut rng);
        assert!(
            requested >= Duration::from_millis(2),
            "attempt 1 of 2ms base"
        );
        assert!(start.elapsed() >= requested);
    }

    #[test]
    fn xorshift_is_deterministic_and_spread() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut seen = std::collections::HashSet::new();
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            seen.insert(r.next_below(64));
        }
        assert!(seen.len() > 50, "values should cover most of 0..64");
        for _ in 0..1000 {
            let v = r.next_i64_in(-3, 3);
            assert!((-3..=3).contains(&v));
        }
        // Zero seed must not wedge the generator.
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), z.next_u64());
    }
}
