//! The Sequent Balance startup-routine registry — §4.1.2.
//!
//! On the Sequent, "sharing of variables is done at link time.  The
//! implementation must provide the linker with the names of all shared
//! variables."  The Force generates a *startup subroutine* in the main
//! program and in every Force subroutine; the main startup calls each
//! subroutine startup so the whole program's shared declarations are
//! reachable.  The program is then run **twice**: the first run executes
//! only the startup routines and pipes linker commands to a UNIX shell,
//! which links and runs the real program the second time.
//!
//! [`StartupRegistry`] models that protocol: modules register their shared
//! blocks (first run), `finalize` produces the linker command stream
//! (the pipe to the shell), and only a finalized registry may back a
//! [`crate::sharedmem::LinkTimeSharing`] layout (second run).

use std::collections::HashMap;

use crate::portable::Mutex;

/// Collects shared-variable declarations from every program module.
pub struct StartupRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    /// module name -> blocks it declared
    modules: Vec<(String, Vec<(String, usize)>)>,
    /// block name -> words (merged across modules; COMMON blocks with the
    /// same name are the same storage, so sizes must agree)
    blocks: HashMap<String, usize>,
    finalized: bool,
    commands: Vec<String>,
}

impl StartupRegistry {
    /// A fresh registry in the "first run" (collecting) phase.
    pub fn new() -> Self {
        StartupRegistry {
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// A module's startup routine reporting its shared blocks.
    ///
    /// Re-registration of the same block name with the same size is legal
    /// (several modules may declare the same COMMON block).
    ///
    /// # Panics
    /// Panics if called after [`finalize`](Self::finalize) (the real
    /// system cannot add linker input after the link), or if a block is
    /// re-registered with a different size (inconsistent COMMON).
    pub fn register_module(&self, module: &str, blocks: &[(String, usize)]) {
        let mut inner = self.inner.lock();
        assert!(
            !inner.finalized,
            "startup routine ran after the link pass (module `{module}`)"
        );
        for (name, words) in blocks {
            match inner.blocks.get(name) {
                Some(&existing) if existing != *words => {
                    panic!("COMMON block `{name}` declared with {existing} words and {words} words")
                }
                Some(_) => {}
                None => {
                    inner.blocks.insert(name.clone(), *words);
                }
            }
        }
        inner.modules.push((module.to_string(), blocks.to_vec()));
    }

    /// End the first run: emit the linker command stream and switch the
    /// registry into the linked phase.  Idempotent.
    pub fn finalize(&self) -> Vec<String> {
        let mut inner = self.inner.lock();
        if !inner.finalized {
            let mut names: Vec<&String> = inner.blocks.keys().collect();
            names.sort();
            inner.commands = names
                .iter()
                .map(|n| format!("-Z SHARED {n} {}", inner.blocks[n.as_str()]))
                .collect();
            inner.finalized = true;
        }
        inner.commands.clone()
    }

    /// Whether the link pass has happened.
    pub fn is_finalized(&self) -> bool {
        self.inner.lock().finalized
    }

    /// Registered size of a block, if any.
    pub fn registered_size(&self, block: &str) -> Option<usize> {
        self.inner.lock().blocks.get(block).copied()
    }

    /// The linker commands produced by the first run (empty before
    /// finalize).
    pub fn linker_commands(&self) -> Vec<String> {
        self.inner.lock().commands.clone()
    }

    /// Modules that have registered, in registration order.
    pub fn modules(&self) -> Vec<String> {
        self.inner
            .lock()
            .modules
            .iter()
            .map(|(m, _)| m.clone())
            .collect()
    }
}

impl Default for StartupRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_pass_protocol() {
        let reg = StartupRegistry::new();
        assert!(!reg.is_finalized());
        reg.register_module("MAIN", &[("ZZCOM".into(), 16)]);
        reg.register_module("SUB1", &[("WORK".into(), 128)]);
        let cmds = reg.finalize();
        assert!(reg.is_finalized());
        assert_eq!(cmds, vec!["-Z SHARED WORK 128", "-Z SHARED ZZCOM 16"]);
        assert_eq!(reg.registered_size("WORK"), Some(128));
        assert_eq!(reg.registered_size("NOPE"), None);
    }

    #[test]
    fn shared_common_may_repeat_with_same_size() {
        let reg = StartupRegistry::new();
        reg.register_module("MAIN", &[("ZZCOM".into(), 16)]);
        reg.register_module("SUB1", &[("ZZCOM".into(), 16)]);
        reg.finalize();
        assert_eq!(reg.registered_size("ZZCOM"), Some(16));
        assert_eq!(reg.modules(), vec!["MAIN", "SUB1"]);
    }

    #[test]
    #[should_panic(expected = "declared with 16 words and 8 words")]
    fn inconsistent_common_sizes_panic() {
        let reg = StartupRegistry::new();
        reg.register_module("MAIN", &[("ZZCOM".into(), 16)]);
        reg.register_module("SUB1", &[("ZZCOM".into(), 8)]);
    }

    #[test]
    #[should_panic(expected = "after the link pass")]
    fn registration_after_finalize_panics() {
        let reg = StartupRegistry::new();
        reg.finalize();
        reg.register_module("LATE", &[("X".into(), 1)]);
    }

    #[test]
    fn finalize_is_idempotent() {
        let reg = StartupRegistry::new();
        reg.register_module("MAIN", &[("A".into(), 2)]);
        let a = reg.finalize();
        let b = reg.finalize();
        assert_eq!(a, b);
    }
}
