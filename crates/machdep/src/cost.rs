//! Simulated cost model.
//!
//! The original six machines differed by orders of magnitude in the price
//! of their primitives (§4.1.1 notes the "large process creation and
//! context switching cost" of the fork/join machines versus HEP's
//! subroutine-call creation).  Running on one host erases those
//! differences, so each machine personality carries a cycle-cost table;
//! the interpreter and the reproduction harness charge it per primitive to
//! recover the *relative* shapes.
//!
//! The numbers are plausible magnitudes for the late-1980s machines, not
//! measurements; only their ratios matter to the experiments.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cycle costs of the machine-dependent primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// One lock or unlock operation, uncontended.
    pub lock_op: u64,
    /// One lock acquisition that had to wait (adds to `lock_op`).
    pub contended_lock: u64,
    /// One operating-system call.
    pub syscall: u64,
    /// Creating one process.
    pub process_create: u64,
    /// One hardware full/empty produce or consume.
    pub fullempty_op: u64,
    /// One shared-memory word access.
    pub shared_access: u64,
}

impl CostModel {
    /// Cost table for a software test&set lock machine with UNIX fork
    /// (Sequent Balance, Encore Multimax).
    pub fn fork_spin() -> Self {
        CostModel {
            lock_op: 12,
            contended_lock: 60,
            syscall: 1_500,
            process_create: 60_000,
            fullempty_op: 80, // emulated with two locks: not hardware
            shared_access: 3,
        }
    }

    /// Alliant FX/8: fork is cheaper (data already shared), vendor locks
    /// are fast.
    pub fn alliant() -> Self {
        CostModel {
            lock_op: 10,
            contended_lock: 50,
            syscall: 1_200,
            process_create: 25_000,
            fullempty_op: 70,
            shared_access: 3,
        }
    }

    /// Flex/32 combined locks: cheap when short, syscall when long.
    pub fn flex() -> Self {
        CostModel {
            lock_op: 15,
            contended_lock: 80,
            syscall: 1_800,
            process_create: 40_000,
            fullempty_op: 90,
            shared_access: 3,
        }
    }

    /// Cray-2: every lock operation is an OS call.
    pub fn cray() -> Self {
        CostModel {
            lock_op: 800,
            contended_lock: 1_600,
            syscall: 800,
            process_create: 80_000,
            fullempty_op: 2_400,
            shared_access: 2,
        }
    }

    /// HEP: hardware full/empty on every cell, process creation by
    /// subroutine call.
    pub fn hep() -> Self {
        CostModel {
            lock_op: 4,
            contended_lock: 8,
            syscall: 2_000,
            process_create: 150,
            fullempty_op: 4,
            shared_access: 4,
        }
    }
}

/// Accumulates simulated cycles for one run.
#[derive(Debug, Default)]
pub struct CycleAccount {
    cycles: AtomicU64,
}

impl CycleAccount {
    /// A zeroed account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `n` cycles.
    #[inline]
    pub fn charge(&self, n: u64) {
        self.cycles.fetch_add(n, Ordering::Relaxed);
    }

    /// Total cycles charged so far.
    pub fn total(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.cycles.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hep_creation_is_orders_cheaper_than_fork() {
        let hep = CostModel::hep();
        let fork = CostModel::fork_spin();
        assert!(fork.process_create / hep.process_create >= 100);
    }

    #[test]
    fn cray_locks_cost_a_syscall() {
        let cray = CostModel::cray();
        assert!(cray.lock_op >= cray.syscall / 2);
        let spin = CostModel::fork_spin();
        assert!(spin.lock_op < spin.syscall / 10);
    }

    #[test]
    fn hep_fullempty_is_hardware_cheap() {
        assert!(CostModel::hep().fullempty_op < CostModel::fork_spin().fullempty_op / 10);
    }

    #[test]
    fn account_accumulates() {
        let acc = CycleAccount::new();
        acc.charge(10);
        acc.charge(5);
        assert_eq!(acc.total(), 15);
        acc.reset();
        assert_eq!(acc.total(), 0);
    }
}
