//! Software test&set spin lock — the Sequent Balance / Encore Multimax
//! lock personality ("spinning with test&set on shared variables", §4.1.3).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::fault;
use crate::lock::{LockKind, LockState, RawLock};
use crate::portable::Backoff;
use crate::stats::OpStats;

/// A test-and-test-and-set spin lock with exponential backoff.
///
/// The acquire path first *tests* (plain load) and only then *sets*
/// (`swap`), the classic optimization that keeps the cache line shared
/// while the lock is held.  Waiters never park: on the Sequent and the
/// Encore the manufacturer primitive was a pure busy wait.
pub struct SpinLock {
    locked: AtomicBool,
    stats: Arc<OpStats>,
}

impl SpinLock {
    /// Create a spin lock in the given initial state.
    pub fn new(initial: LockState, stats: Arc<OpStats>) -> Self {
        OpStats::count(&stats.locks_created);
        SpinLock {
            locked: AtomicBool::new(initial == LockState::Locked),
            stats,
        }
    }
}

impl RawLock for SpinLock {
    fn lock(&self) {
        // An injected spurious failure is accounted as one failed attempt.
        let mut retries: u64 = u64::from(fault::spurious_lock_failure());
        let backoff = Backoff::new();
        // test&set with a preceding test; Acquire pairs with the Release
        // in `unlock` so that everything the unlocker did is visible.
        while self.locked.swap(true, Ordering::Acquire) {
            let _park = fault::parked(fault::Construct::Lock);
            while self.locked.load(Ordering::Relaxed) {
                fault::check_cancel();
                retries += 1;
                backoff.snooze();
            }
        }
        OpStats::count(&self.stats.lock_acquires);
        if retries > 0 {
            OpStats::count(&self.stats.lock_contended);
            OpStats::add(&self.stats.spin_retries, retries);
        }
        crate::trace::lock_acquired(retries > 0);
    }

    fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
        OpStats::count(&self.stats.lock_releases);
    }

    fn try_lock(&self) -> bool {
        // Test-and-test-and-set, like `lock`: a failed attempt must not
        // issue a store (an unconditional `swap` would invalidate the
        // holder's cache line on every call, turning the Async spin loops
        // that poll `try_lock` into a coherence storm).
        if self.locked.load(Ordering::Relaxed) || self.locked.swap(true, Ordering::Acquire) {
            OpStats::count(&self.stats.lock_contended);
            return false;
        }
        OpStats::count(&self.stats.lock_acquires);
        true
    }

    fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    fn kind(&self) -> LockKind {
        LockKind::Spin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn mk(initial: LockState) -> (SpinLock, Arc<OpStats>) {
        let stats = Arc::new(OpStats::new());
        (SpinLock::new(initial, Arc::clone(&stats)), stats)
    }

    #[test]
    fn starts_unlocked_and_locks() {
        let (l, _) = mk(LockState::Unlocked);
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        l.unlock();
        assert!(!l.is_locked());
    }

    #[test]
    fn starts_locked_when_requested() {
        let (l, _) = mk(LockState::Locked);
        assert!(l.is_locked());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
    }

    #[test]
    fn try_lock_fails_when_held() {
        let (l, _) = mk(LockState::Unlocked);
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
    }

    #[test]
    fn cross_thread_unlock_is_allowed() {
        let stats = Arc::new(OpStats::new());
        let l = Arc::new(SpinLock::new(LockState::Locked, stats));
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || {
            l2.unlock(); // releasing a lock acquired "elsewhere"
        });
        l.lock(); // succeeds once the other thread unlocks
        t.join().unwrap();
        assert!(l.is_locked());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let stats = Arc::new(OpStats::new());
        let l = Arc::new(SpinLock::new(LockState::Unlocked, stats));
        let counter = Arc::new(AtomicU64::new(0));
        let inside = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let l = Arc::clone(&l);
                let counter = Arc::clone(&counter);
                let inside = Arc::clone(&inside);
                s.spawn(move || {
                    for _ in 0..500 {
                        l.lock();
                        assert!(!inside.swap(true, Ordering::SeqCst));
                        counter.fetch_add(1, Ordering::Relaxed);
                        inside.store(false, Ordering::SeqCst);
                        l.unlock();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 500);
    }

    #[test]
    fn failed_try_lock_counts_contention() {
        let (l, stats) = mk(LockState::Locked);
        for _ in 0..5 {
            assert!(!l.try_lock());
        }
        let s = stats.snapshot();
        assert_eq!(
            s.lock_contended, 5,
            "each failed try is a contended attempt"
        );
        assert_eq!(s.lock_acquires, 0);
        l.unlock();
        assert!(l.try_lock());
        assert_eq!(stats.snapshot().lock_acquires, 1);
    }

    #[test]
    fn stats_count_acquires_and_releases() {
        let (l, stats) = mk(LockState::Unlocked);
        l.lock();
        l.unlock();
        l.lock();
        l.unlock();
        let s = stats.snapshot();
        assert_eq!(s.lock_acquires, 2);
        assert_eq!(s.lock_releases, 2);
        assert_eq!(s.locks_created, 1);
    }
}
