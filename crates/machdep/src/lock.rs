//! The generic lock interface — the paper's machine-dependent lock macros.
//!
//! §4.1 lists `define_lock`, `init_lock`, `lock` and `unlock` as the only
//! lock operations the machine-independent layer may use.  [`RawLock`] is
//! the Rust rendering of that contract.
//!
//! Two properties matter and are deliberately *not* what `std::sync::Mutex`
//! provides:
//!
//! 1. **Cross-process unlock.**  The Produce/Consume protocol (§4.2) locks
//!    a variable's `E` lock in one process and unlocks it in *another*.  A
//!    `RawLock` is therefore a binary semaphore, not an owned mutex.
//! 2. **Initially-locked creation.**  An empty asynchronous variable starts
//!    with `E` locked and `F` unlocked, so locks must be creatable in
//!    either state ([`LockState`]).

use std::sync::Arc;

/// Initial state of a freshly created lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockState {
    /// The lock starts available; the first `lock()` succeeds immediately.
    Unlocked,
    /// The lock starts held; a `lock()` blocks until some process calls
    /// `unlock()`.
    Locked,
}

/// A generic lock in the sense of the Force's machine-dependent layer.
///
/// Implementations are binary semaphores: `unlock` may be called by a
/// process other than the one that called `lock`, and `unlock` of an
/// already-unlocked lock is a protocol error that implementations are
/// allowed to tolerate silently (the Force macro layer never does it).
pub trait RawLock: Send + Sync {
    /// Acquire the lock, blocking (by whatever mechanism the machine
    /// provides — busy wait, OS call, or a combination) until available.
    fn lock(&self);

    /// Release the lock, waking one waiter if the machine parks waiters.
    fn unlock(&self);

    /// Attempt to acquire the lock without blocking.
    fn try_lock(&self) -> bool;

    /// Whether the lock is currently held.  Inherently racy; useful only
    /// for diagnostics and the async-variable state test.
    fn is_locked(&self) -> bool;

    /// A short machine-flavoured name ("test&set", "system call", ...).
    fn kind(&self) -> LockKind;
}

/// The lock taxonomy of §4.1.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// Software lock: spinning with test&set on a shared variable
    /// (Sequent, Encore).
    Spin,
    /// System-call lock: the operating system manages a queue of blocked
    /// processes (Cray).
    Syscall,
    /// Combined lock: spin for a limited time, then make an OS call
    /// (Flex/32).
    Combined,
    /// Hardware full/empty access state bit used as a lock (HEP).
    FullEmpty,
}

impl LockKind {
    /// Human-readable name matching the paper's wording.
    pub fn name(self) -> &'static str {
        match self {
            LockKind::Spin => "test&set spin",
            LockKind::Syscall => "system call",
            LockKind::Combined => "combined spin/syscall",
            LockKind::FullEmpty => "hardware full/empty",
        }
    }
}

/// Shared handle to a machine lock.
///
/// Cloning the handle aliases the same underlying lock, exactly as two
/// occurrences of the same lock variable name alias one lock in the
/// macro implementation.
pub type LockHandle = Arc<dyn RawLock>;

/// Run `f` with the lock held (convenience used by higher layers).
pub fn with_lock<R>(lock: &dyn RawLock, f: impl FnOnce() -> R) -> R {
    lock.lock();
    // A panic inside `f` must still release the lock: the Force model has
    // no lock poisoning, and a leaked lock would deadlock the force.
    struct Release<'a>(&'a dyn RawLock);
    impl Drop for Release<'_> {
        fn drop(&mut self) {
            self.0.unlock();
        }
    }
    let _release = Release(lock);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spin::SpinLock;
    use crate::stats::OpStats;

    #[test]
    fn lock_kind_names() {
        assert_eq!(LockKind::Spin.name(), "test&set spin");
        assert_eq!(LockKind::Syscall.name(), "system call");
        assert_eq!(LockKind::Combined.name(), "combined spin/syscall");
        assert_eq!(LockKind::FullEmpty.name(), "hardware full/empty");
    }

    #[test]
    fn with_lock_releases_on_success() {
        let stats = Arc::new(OpStats::new());
        let l = SpinLock::new(LockState::Unlocked, stats);
        let out = with_lock(&l, || 42);
        assert_eq!(out, 42);
        assert!(!l.is_locked());
    }

    #[test]
    fn with_lock_releases_on_panic() {
        let stats = Arc::new(OpStats::new());
        let l = SpinLock::new(LockState::Unlocked, stats);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_lock(&l, || panic!("boom"));
        }));
        assert!(res.is_err());
        assert!(!l.is_locked(), "lock must be released after a panic");
    }
}
