//! Force-as-a-service: a fault-contained multi-tenant job server.
//!
//! The paper's model assumes one program owns the machine.  This module
//! supplies the opposite deployment: a [`ForceServer`] accepts many
//! concurrent jobs — native closures and `.force` source alike, packaged
//! as [`JobRunner`]s by the `core`/`fortranish` facades — and feeds them
//! to resident sessions on one shared worker pool.  The robustness spine
//! lives here, above the fault plane:
//!
//! * **Admission control** — bounded per-tenant queues; a full queue or a
//!   draining server answers [`Submit::Rejected`] immediately instead of
//!   growing without bound.
//! * **Deadlines** — each running job may be shadowed by a watcher thread
//!   that, once the deadline passes, trips the job's bound [`FaultPlane`]
//!   so every blocked process unwinds at its next cancellable wait.  The
//!   watcher *keeps* the trip asserted until the dispatcher disarms it,
//!   because a session resets its plane at run start and a single trip
//!   could be erased by that reset.
//! * **Retry with jittered backoff** — a job killed by a fault carrying
//!   [`INJECTED_FAULT_MARKER`] (the injection layer's stable payload
//!   prefix) is transient by contract and is re-run up to
//!   [`JobSpec::max_retries`] times, sleeping a deterministic
//!   [`Backoff::jittered_delay`] between attempts.  Deterministic errors
//!   ([`JobError::Deterministic`] — e.g. a `FortError`) are never
//!   retried.
//! * **Priority-aware dequeue and load shedding** — `High` before
//!   `Normal` before `Low`; when total backlog exceeds the configured
//!   watermark, the newest low-priority jobs are dropped with
//!   [`JobOutcome::Shed`] so accepted high-priority work keeps its
//!   latency.
//! * **Graceful drain** — [`ForceServer::shutdown`] stops admission,
//!   runs every already-admitted job to an outcome, then joins the
//!   dispatcher.
//!
//! Jobs inherit per-job isolation from the layers below for free: the
//! session facades reset the fault plane (`FaultPlane::reset_for_job`),
//! report per-job operation counts (`StatsSnapshot::delta`), and reset
//! trace sinks between runs.  The server rolls those per-job results up
//! into per-tenant aggregates ([`TenantRollup`]) and counts its own five
//! decisions in the machine's [`OpStats`] (`jobs_admitted`,
//! `jobs_rejected`, `jobs_shed`, `jobs_deadline_exceeded`,
//! `job_retries`).
//!
//! Jobs are executed by a single dispatcher thread.  That is not a
//! bottleneck but a reflection of the substrate: `ForcePool`'s mailbox
//! already serializes jobs (the pool runs one force at a time), so a
//! second dispatcher could only queue behind the first inside the pool.

use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::fault::{FaultPlane, ProcessFault, INJECTED_FAULT_MARKER};
use crate::portable::{Backoff, Condvar, Mutex, XorShift64};
use crate::stats::{OpStats, StatsSnapshot};
use crate::trace::{HistogramSnapshot, ProfileReport};

/// Construct name attributed to deadline trips (shows up in
/// `ProcessFault::construct` for deadline-killed jobs).
pub const DEADLINE_CONSTRUCT: &str = "deadline";

/// Dequeue priority of a submitted job.  Order is dequeue order: `High`
/// drains before `Normal`, `Normal` before `Low`; shedding under
/// saturation victimizes the opposite end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Dequeued first; never load-shed.
    High,
    /// The default.
    Normal,
    /// Dequeued last, shed first under saturation.
    Low,
}

impl Priority {
    /// Number of priority classes (queue array size).
    pub const CLASSES: usize = 3;

    fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Per-job submission parameters.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The tenant this job is accounted (and queue-bounded) under.
    pub tenant: String,
    /// Dequeue priority.
    pub priority: Priority,
    /// Deadline measured from submission; `None` means unbounded.  An
    /// expired queued job never runs; an expired running job has its
    /// fault plane tripped and is torn down at its next blocking wait.
    pub deadline: Option<Duration>,
    /// Maximum number of re-runs after *transient* faults (deterministic
    /// errors are never retried regardless of this value).
    pub max_retries: u32,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            tenant: "default".into(),
            priority: Priority::Normal,
            deadline: None,
            max_retries: 2,
        }
    }
}

impl JobSpec {
    /// A default spec accounted under `tenant`.
    pub fn for_tenant(tenant: impl Into<String>) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            ..JobSpec::default()
        }
    }

    /// Set the dequeue priority.
    pub fn with_priority(mut self, priority: Priority) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Set the deadline (measured from submission).
    pub fn with_deadline(mut self, deadline: Duration) -> JobSpec {
        self.deadline = Some(deadline);
        self
    }

    /// Set the transient-fault retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> JobSpec {
        self.max_retries = max_retries;
        self
    }
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum queued (not yet dispatched) jobs per tenant; the
    /// admission bound behind [`RejectReason::QueueFull`].
    pub tenant_queue_capacity: usize,
    /// Total-backlog threshold above which the dispatcher sheds the
    /// newest `Low` (then `Normal`) jobs before dequeuing.
    pub shed_watermark: usize,
    /// Base delay of the retry backoff; attempt `n` sleeps a jittered
    /// value in `[base·2ⁿ/2, base·2ⁿ]` (see [`Backoff::jittered_delay`]).
    pub retry_base: Duration,
    /// Seed for the retry jitter (the whole retry schedule is
    /// deterministic per seed).
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tenant_queue_capacity: 64,
            shed_watermark: 128,
            retry_base: Duration::from_micros(500),
            seed: 0x5eed,
        }
    }
}

/// Why a submission was refused at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's queue is at capacity — backpressure; resubmit later.
    QueueFull {
        /// The tenant whose queue is full.
        tenant: String,
        /// The configured per-tenant capacity.
        capacity: usize,
    },
    /// The server is draining; no new work is admitted.
    ShuttingDown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { tenant, capacity } => {
                write!(f, "tenant `{tenant}` queue full (capacity {capacity})")
            }
            RejectReason::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

/// Admission verdict for one submission.
#[derive(Debug)]
pub enum Submit {
    /// The job was queued; the handle observes its outcome.
    Admitted(JobHandle),
    /// The job was refused and will never run.
    Rejected {
        /// Why admission refused it.
        reason: RejectReason,
    },
}

impl Submit {
    /// The handle, if admitted.
    pub fn admitted(self) -> Option<JobHandle> {
        match self {
            Submit::Admitted(h) => Some(h),
            Submit::Rejected { .. } => None,
        }
    }

    /// The handle, panicking on rejection (test/bench convenience).
    pub fn expect_admitted(self) -> JobHandle {
        match self {
            Submit::Admitted(h) => h,
            Submit::Rejected { reason } => panic!("job rejected: {reason}"),
        }
    }
}

/// How a job attempt failed.  The variant decides retryability: only
/// [`JobError::Fault`]s whose payload carries the injection marker are
/// transient; everything else is deterministic and is never retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// A contained process fault (panic, injected fault, watchdog or
    /// deadline trip) surfaced by the fault plane.
    Fault(ProcessFault),
    /// A deterministic front-end or runtime error (e.g. a `FortError`):
    /// rerunning the same program would fail identically, so the server
    /// never spends retries on it.
    Deterministic(String),
}

impl JobError {
    /// Whether the retry policy may re-run the job after this error.
    pub fn is_transient(&self) -> bool {
        matches!(self, JobError::Fault(f) if f.payload.contains(INJECTED_FAULT_MARKER))
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Fault(fault) => write!(f, "{fault}"),
            JobError::Deterministic(msg) => write!(f, "{msg}"),
        }
    }
}

/// What a successful job attempt hands back to the server.
#[derive(Debug, Default)]
pub struct JobYield {
    /// The job's trace profile, when it ran with tracing; rolled into
    /// the tenant's aggregate.
    pub profile: Option<ProfileReport>,
}

/// The executable body of a job: called once per attempt with the
/// per-attempt [`JobCx`].  Facades build these around
/// `Force::try_execute_with` / `Engine::run_with`; the contract is that
/// the runner binds its session's fault plane via [`JobCx::bind_plane`]
/// *before* starting the run, so deadline trips reach the job.
pub type JobRunner = Box<dyn FnMut(&JobCx) -> Result<JobYield, JobError> + Send>;

/// Terminal state of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job ran to completion (possibly after transparent retries).
    Completed {
        /// How many retries it took (0 = first attempt succeeded).
        retries: u32,
    },
    /// The job failed and the retry policy gave up (deterministic error,
    /// retry budget exhausted, or no backoff slot left before the
    /// deadline).
    Faulted {
        /// The final attempt's error.
        error: JobError,
        /// Retries consumed before giving up.
        retries: u32,
    },
    /// The deadline passed before the job produced a result.
    DeadlineExceeded {
        /// `false` if it expired while still queued; `true` if it was
        /// torn down (or raced the deadline) while running.
        ran: bool,
    },
    /// Dropped by load shedding before it ran.
    Shed,
}

impl JobOutcome {
    /// Whether the job produced its result.
    pub fn is_success(&self) -> bool {
        matches!(self, JobOutcome::Completed { .. })
    }
}

/// Shared state between a [`JobHandle`], the dispatcher, and the
/// deadline watcher.
struct JobShared {
    id: u64,
    tenant: String,
    /// Set by the deadline watcher the moment the deadline passes; read
    /// by the dispatcher to classify the attempt and by runners that
    /// want to cooperate without a fault plane.
    deadline_fired: AtomicBool,
    /// The fault plane of the session currently running this job,
    /// registered by the runner via [`JobCx::bind_plane`]; the deadline
    /// watcher trips it to tear the job down.
    plane: Mutex<Option<Arc<FaultPlane>>>,
    outcome: Mutex<Option<JobOutcome>>,
    done: Condvar,
}

/// Per-attempt context handed to a [`JobRunner`].
pub struct JobCx {
    shared: Arc<JobShared>,
    attempt: u32,
}

impl JobCx {
    /// Register the fault plane executing this attempt so the deadline
    /// watcher can cancel it.  Must be called before the run starts;
    /// rebinding on each attempt is fine.
    pub fn bind_plane(&self, plane: &Arc<FaultPlane>) {
        *self.shared.plane.lock() = Some(Arc::clone(plane));
    }

    /// Whether this job's deadline has already passed.
    pub fn deadline_fired(&self) -> bool {
        self.shared.deadline_fired.load(Ordering::Acquire)
    }

    /// 0-based attempt number (0 = first run, 1 = first retry, …).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Server-assigned job id (unique per server).
    pub fn job_id(&self) -> u64 {
        self.shared.id
    }

    /// The submitting tenant.
    pub fn tenant(&self) -> &str {
        &self.shared.tenant
    }
}

/// Waits for (and reads) one admitted job's outcome.
pub struct JobHandle {
    shared: Arc<JobShared>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.shared.id)
            .field("tenant", &self.shared.tenant)
            .field("outcome", &self.try_outcome())
            .finish()
    }
}

impl JobHandle {
    /// Server-assigned job id.
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Block until the job reaches a terminal state.
    pub fn wait(&self) -> JobOutcome {
        let mut slot = self.shared.outcome.lock();
        while slot.is_none() {
            self.shared.done.wait(&mut slot);
        }
        slot.clone().expect("outcome set")
    }

    /// The outcome if the job already finished, without blocking.
    pub fn try_outcome(&self) -> Option<JobOutcome> {
        self.shared.outcome.lock().clone()
    }
}

/// Per-tenant aggregate of everything the server did on the tenant's
/// behalf.  `ops` and `latency` fold in *all* attempts (a retried
/// attempt consumed real machine operations and real wall time).
#[derive(Debug, Clone, Default)]
pub struct TenantRollup {
    /// Jobs accepted at admission.
    pub admitted: u64,
    /// Jobs refused at admission.
    pub rejected: u64,
    /// Jobs that completed.
    pub completed: u64,
    /// Jobs that ended in [`JobOutcome::Faulted`].
    pub faulted: u64,
    /// Jobs dropped by load shedding.
    pub shed: u64,
    /// Jobs that missed their deadline (queued or running).
    pub deadline_exceeded: u64,
    /// Transient-fault retries spent across all jobs.
    pub retries: u64,
    /// Machine operations consumed by this tenant's attempts
    /// (per-attempt `StatsSnapshot::delta`s, merged).
    pub ops: StatsSnapshot,
    /// Submit→terminal latency of every job (nanoseconds), including
    /// queueing, retries, and backoff sleeps.
    pub latency: HistogramSnapshot,
    /// Jobs that ran with tracing enabled.
    pub traced_jobs: u64,
    /// The most recent traced job's profile.
    pub profile: Option<ProfileReport>,
}

/// Whole-server aggregate: per-tenant rollups summed, plus queue-depth
/// telemetry.
#[derive(Debug, Clone, Default)]
pub struct ServerReport {
    /// Jobs accepted at admission (all tenants).
    pub admitted: u64,
    /// Jobs refused at admission.
    pub rejected: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs ended in [`JobOutcome::Faulted`].
    pub faulted: u64,
    /// Jobs dropped by load shedding.
    pub shed: u64,
    /// Jobs that missed their deadline.
    pub deadline_exceeded: u64,
    /// Transient-fault retries spent.
    pub retries: u64,
    /// Submit→terminal latency across all tenants.
    pub latency: HistogramSnapshot,
    /// Highest instantaneous backlog ever observed (bounded by
    /// `tenants × tenant_queue_capacity` by construction).
    pub peak_backlog: usize,
    /// Per-tenant rollups, sorted by tenant name.
    pub tenants: Vec<(String, TenantRollup)>,
}

/// One queued job awaiting dispatch.
struct QueuedJob {
    shared: Arc<JobShared>,
    runner: JobRunner,
    spec: JobSpec,
    submitted: Instant,
    deadline_at: Option<Instant>,
}

/// Queue state guarded by one mutex.
struct ServeState {
    /// One FIFO per priority class, indexed by `Priority::index`.
    queues: [VecDeque<QueuedJob>; Priority::CLASSES],
    per_tenant_depth: HashMap<String, usize>,
    backlog: usize,
    peak_backlog: usize,
    shutting_down: bool,
}

struct Inner {
    config: ServerConfig,
    stats: Arc<OpStats>,
    state: Mutex<ServeState>,
    /// Signals the dispatcher: new work or shutdown.
    work: Condvar,
    next_id: AtomicU64,
    rollups: Mutex<HashMap<String, TenantRollup>>,
}

impl Inner {
    /// Record a terminal outcome: tenant rollup, server counters, and
    /// the waiter's wake-up.  Never called with `state` held.
    fn complete(
        &self,
        shared: Arc<JobShared>,
        outcome: JobOutcome,
        submitted: Instant,
        ops: StatsSnapshot,
        profile: Option<ProfileReport>,
    ) {
        let elapsed = submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        {
            let mut rollups = self.rollups.lock();
            let r = rollups.entry(shared.tenant.clone()).or_default();
            r.latency.record(elapsed);
            r.ops.merge(&ops);
            match &outcome {
                JobOutcome::Completed { retries } => {
                    r.completed += 1;
                    r.retries += u64::from(*retries);
                    if let Some(p) = profile {
                        r.traced_jobs += 1;
                        r.profile = Some(p);
                    }
                }
                JobOutcome::Faulted { retries, .. } => {
                    r.faulted += 1;
                    r.retries += u64::from(*retries);
                }
                JobOutcome::DeadlineExceeded { .. } => {
                    r.deadline_exceeded += 1;
                    OpStats::count(&self.stats.jobs_deadline_exceeded);
                }
                JobOutcome::Shed => {
                    r.shed += 1;
                    OpStats::count(&self.stats.jobs_shed);
                }
            }
        }
        *shared.outcome.lock() = Some(outcome);
        shared.done.notify_all();
    }

    fn bump_rollup(&self, tenant: &str, f: impl FnOnce(&mut TenantRollup)) {
        let mut rollups = self.rollups.lock();
        f(rollups.entry(tenant.to_owned()).or_default());
    }
}

/// A deadline watcher shadowing one running attempt.  After the deadline
/// passes it marks the job and then *keeps* tripping the bound plane
/// (throttled) until disarmed: the session resets its plane when the run
/// starts, and a one-shot trip landing just before that reset would be
/// erased, letting the job run unbounded.
struct DeadlineWatcher {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: JoinHandle<()>,
}

impl DeadlineWatcher {
    /// How often the post-deadline loop re-asserts the trip.
    const REASSERT_EVERY: Duration = Duration::from_micros(500);

    fn arm(shared: Arc<JobShared>, at: Instant) -> DeadlineWatcher {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name(format!("force-deadline-{}", shared.id))
            .spawn(move || Self::watch(shared, at, stop2))
            .expect("spawn deadline watcher");
        DeadlineWatcher { stop, handle }
    }

    fn watch(shared: Arc<JobShared>, at: Instant, stop: Arc<(Mutex<bool>, Condvar)>) {
        let (lock, cv) = &*stop;
        {
            let mut stopped = lock.lock();
            loop {
                if *stopped {
                    return;
                }
                let now = Instant::now();
                if now >= at {
                    break;
                }
                cv.wait_for(&mut stopped, at - now);
            }
        }
        shared.deadline_fired.store(true, Ordering::Release);
        loop {
            if let Some(plane) = shared.plane.lock().clone() {
                if !plane.is_tripped() {
                    plane.trip(
                        ProcessFault {
                            pid: 0,
                            construct: DEADLINE_CONSTRUCT,
                            payload: format!("job {} deadline exceeded", shared.id),
                        },
                        None,
                    );
                }
            }
            let mut stopped = lock.lock();
            if *stopped {
                return;
            }
            cv.wait_for(&mut stopped, Self::REASSERT_EVERY);
        }
    }

    /// Stop and join the watcher.  After this returns, no further trips
    /// are issued, so the next job on the same session cannot inherit a
    /// late deadline trip (the session's `reset_for_job` clears any trip
    /// already landed).
    fn disarm(self) {
        *self.stop.0.lock() = true;
        self.stop.1.notify_all();
        let _ = self.handle.join();
    }
}

/// The multi-tenant job server.  See the module docs for semantics.
pub struct ForceServer {
    inner: Arc<Inner>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl ForceServer {
    /// Start a server counting its decisions into `stats` (normally the
    /// machine's counter set, so server activity shows up next to lock
    /// and barrier traffic).
    pub fn new(config: ServerConfig, stats: &Arc<OpStats>) -> ForceServer {
        let inner = Arc::new(Inner {
            config,
            stats: Arc::clone(stats),
            state: Mutex::new(ServeState {
                queues: std::array::from_fn(|_| VecDeque::new()),
                per_tenant_depth: HashMap::new(),
                backlog: 0,
                peak_backlog: 0,
                shutting_down: false,
            }),
            work: Condvar::new(),
            next_id: AtomicU64::new(1),
            rollups: Mutex::new(HashMap::new()),
        });
        let dispatcher_inner = Arc::clone(&inner);
        let handle = thread::Builder::new()
            .name("force-serve-dispatch".into())
            .spawn(move || dispatch_loop(dispatcher_inner))
            .expect("spawn dispatcher");
        ForceServer {
            inner,
            dispatcher: Mutex::new(Some(handle)),
        }
    }

    /// Submit one job.  Returns immediately with the admission verdict;
    /// an admitted job's outcome is observed through the handle.
    pub fn submit(&self, spec: JobSpec, runner: JobRunner) -> Submit {
        let reason = {
            let mut st = self.inner.state.lock();
            if st.shutting_down {
                Some(RejectReason::ShuttingDown)
            } else {
                let capacity = self.inner.config.tenant_queue_capacity;
                let depth = st.per_tenant_depth.entry(spec.tenant.clone()).or_insert(0);
                if *depth >= capacity {
                    Some(RejectReason::QueueFull {
                        tenant: spec.tenant.clone(),
                        capacity,
                    })
                } else {
                    *depth += 1;
                    None
                }
            }
        };
        if let Some(reason) = reason {
            OpStats::count(&self.inner.stats.jobs_rejected);
            self.inner.bump_rollup(&spec.tenant, |r| r.rejected += 1);
            return Submit::Rejected { reason };
        }

        let shared = Arc::new(JobShared {
            id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
            tenant: spec.tenant.clone(),
            deadline_fired: AtomicBool::new(false),
            plane: Mutex::new(None),
            outcome: Mutex::new(None),
            done: Condvar::new(),
        });
        let submitted = Instant::now();
        let job = QueuedJob {
            shared: Arc::clone(&shared),
            runner,
            deadline_at: spec.deadline.map(|d| submitted + d),
            submitted,
            spec,
        };
        {
            let mut st = self.inner.state.lock();
            st.backlog += 1;
            st.peak_backlog = st.peak_backlog.max(st.backlog);
            let idx = job.spec.priority.index();
            let tenant = job.spec.tenant.clone();
            st.queues[idx].push_back(job);
            drop(st);
            OpStats::count(&self.inner.stats.jobs_admitted);
            self.inner.bump_rollup(&tenant, |r| r.admitted += 1);
        }
        self.inner.work.notify_all();
        Submit::Admitted(JobHandle { shared })
    }

    /// Jobs currently queued (admitted, not yet dispatched).
    pub fn backlog(&self) -> usize {
        self.inner.state.lock().backlog
    }

    /// Highest backlog ever observed.
    pub fn peak_backlog(&self) -> usize {
        self.inner.state.lock().peak_backlog
    }

    /// Snapshot one tenant's rollup, if the tenant has ever been seen.
    pub fn tenant_report(&self, tenant: &str) -> Option<TenantRollup> {
        self.inner.rollups.lock().get(tenant).cloned()
    }

    /// Snapshot the whole server: summed tenant rollups plus queue
    /// telemetry.
    pub fn server_report(&self) -> ServerReport {
        let mut report = ServerReport::default();
        {
            let rollups = self.inner.rollups.lock();
            let mut tenants: Vec<(String, TenantRollup)> = rollups
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            tenants.sort_by(|a, b| a.0.cmp(&b.0));
            for (_, r) in &tenants {
                report.admitted += r.admitted;
                report.rejected += r.rejected;
                report.completed += r.completed;
                report.faulted += r.faulted;
                report.shed += r.shed;
                report.deadline_exceeded += r.deadline_exceeded;
                report.retries += r.retries;
                report.latency.merge(&r.latency);
            }
            report.tenants = tenants;
        }
        report.peak_backlog = self.peak_backlog();
        report
    }

    /// Stop admission, run every already-admitted job to an outcome,
    /// and join the dispatcher.  Idempotent; also called by `Drop`.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock();
            st.shutting_down = true;
        }
        self.inner.work.notify_all();
        if let Some(handle) = self.dispatcher.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ForceServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run one attempt, converting runner panics into [`JobError`]s so a
/// buggy or deliberately-panicking runner cannot kill the dispatcher.
fn run_attempt(runner: &mut JobRunner, cx: &JobCx) -> Result<JobYield, JobError> {
    match panic::catch_unwind(AssertUnwindSafe(|| runner(cx))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "runner panicked".into());
            if msg.contains(INJECTED_FAULT_MARKER) {
                Err(JobError::Fault(ProcessFault {
                    pid: 0,
                    construct: "runner",
                    payload: msg,
                }))
            } else {
                Err(JobError::Deterministic(format!("runner panicked: {msg}")))
            }
        }
    }
}

/// The dispatcher: sheds, dequeues, runs attempts with deadline shadows
/// and retry/backoff, and records outcomes.  Exits once shutdown is
/// requested and the queues are drained.
fn dispatch_loop(inner: Arc<Inner>) {
    let mut rng = XorShift64::new(inner.config.seed);
    loop {
        // Pull the next job (and any shed victims) under the state lock.
        let mut shed: Vec<QueuedJob> = Vec::new();
        let next: Option<QueuedJob> = {
            let mut st = inner.state.lock();
            loop {
                while st.backlog > inner.config.shed_watermark {
                    // Victimize the newest lowest-priority job; an
                    // all-High backlog is never shed (it is still
                    // admission-bounded per tenant).
                    let victim = st.queues[Priority::Low.index()]
                        .pop_back()
                        .or_else(|| st.queues[Priority::Normal.index()].pop_back());
                    match victim {
                        Some(v) => {
                            st.backlog -= 1;
                            if let Some(d) = st.per_tenant_depth.get_mut(&v.spec.tenant) {
                                *d = d.saturating_sub(1);
                            }
                            shed.push(v);
                        }
                        None => break,
                    }
                }
                let dequeued = st.queues.iter_mut().find_map(VecDeque::pop_front);
                if let Some(job) = dequeued {
                    st.backlog -= 1;
                    if let Some(d) = st.per_tenant_depth.get_mut(&job.spec.tenant) {
                        *d = d.saturating_sub(1);
                    }
                    break Some(job);
                }
                if !shed.is_empty() {
                    // Impossible (shedding leaves the queue non-larger
                    // but we just failed to dequeue after shedding), but
                    // never hold shed completions across a wait.
                    break None;
                }
                if st.shutting_down {
                    break None;
                }
                inner.work.wait(&mut st);
            }
        };
        for victim in shed {
            inner.complete(
                victim.shared,
                JobOutcome::Shed,
                victim.submitted,
                StatsSnapshot::default(),
                None,
            );
        }
        let Some(mut job) = next else {
            let draining = inner.state.lock().shutting_down;
            if draining {
                return;
            }
            continue;
        };

        // Expired while queued: never run it.
        if let Some(at) = job.deadline_at {
            if Instant::now() >= at {
                job.shared.deadline_fired.store(true, Ordering::Release);
                inner.complete(
                    job.shared,
                    JobOutcome::DeadlineExceeded { ran: false },
                    job.submitted,
                    StatsSnapshot::default(),
                    None,
                );
                continue;
            }
        }

        // Attempt loop: run, classify, maybe retry with jittered backoff.
        let mut attempt = 0u32;
        let mut ops = StatsSnapshot::default();
        let mut profile = None;
        let outcome = loop {
            let watcher = job
                .deadline_at
                .map(|at| DeadlineWatcher::arm(Arc::clone(&job.shared), at));
            let cx = JobCx {
                shared: Arc::clone(&job.shared),
                attempt,
            };
            let before = inner.stats.snapshot();
            let result = run_attempt(&mut job.runner, &cx);
            ops.merge(&inner.stats.snapshot().delta(&before));
            if let Some(w) = watcher {
                w.disarm();
            }
            // A fired deadline dominates the attempt's own result: the
            // SLA was missed even if the body's completion raced the
            // trip.  (Documented in DESIGN.md §18.)
            if job.shared.deadline_fired.load(Ordering::Acquire) {
                break JobOutcome::DeadlineExceeded { ran: true };
            }
            match result {
                Ok(y) => {
                    profile = y.profile;
                    break JobOutcome::Completed { retries: attempt };
                }
                Err(error) => {
                    if error.is_transient() && attempt < job.spec.max_retries {
                        // Draw the deterministic jittered delay, then
                        // sleep it only if a retry can still fit before
                        // the deadline (this is `Backoff::sleep_jittered`
                        // split around the budget check).
                        let delay =
                            Backoff::jittered_delay(inner.config.retry_base, attempt, &mut rng);
                        let fits = job.deadline_at.is_none_or(|at| Instant::now() + delay < at);
                        if fits {
                            OpStats::count(&inner.stats.job_retries);
                            if !delay.is_zero() {
                                thread::sleep(delay);
                            }
                            attempt += 1;
                            // Stale plane bindings from the failed
                            // attempt are fine: the next attempt rebinds
                            // before its run starts.
                            continue;
                        }
                    }
                    break JobOutcome::Faulted {
                        error,
                        retries: attempt,
                    };
                }
            }
        };
        inner.complete(job.shared, outcome, job.submitted, ops, profile);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn server() -> (ForceServer, Arc<OpStats>) {
        let stats = Arc::new(OpStats::new());
        let srv = ForceServer::new(ServerConfig::default(), &stats);
        (srv, stats)
    }

    fn ok_runner() -> JobRunner {
        Box::new(|_cx| Ok(JobYield::default()))
    }

    /// A runner that blocks until `release` is set — used to hold the
    /// dispatcher so queue behavior can be observed deterministically.
    fn gate_runner(release: Arc<AtomicBool>) -> JobRunner {
        Box::new(move |_cx| {
            while !release.load(Ordering::Acquire) {
                thread::sleep(Duration::from_micros(200));
            }
            Ok(JobYield::default())
        })
    }

    #[test]
    fn jobs_complete_and_are_counted() {
        let (srv, stats) = server();
        let handles: Vec<JobHandle> = (0..10)
            .map(|_| {
                srv.submit(JobSpec::for_tenant("t"), ok_runner())
                    .expect_admitted()
            })
            .collect();
        for h in handles {
            assert_eq!(h.wait(), JobOutcome::Completed { retries: 0 });
        }
        srv.shutdown();
        assert_eq!(stats.snapshot().jobs_admitted, 10);
        let r = srv.tenant_report("t").expect("tenant seen");
        assert_eq!(r.admitted, 10);
        assert_eq!(r.completed, 10);
        assert_eq!(r.latency.count(), 10);
        assert_eq!(r.retries, 0);
    }

    #[test]
    fn admission_bounds_each_tenant_independently() {
        let stats = Arc::new(OpStats::new());
        let srv = ForceServer::new(
            ServerConfig {
                tenant_queue_capacity: 2,
                ..ServerConfig::default()
            },
            &stats,
        );
        let release = Arc::new(AtomicBool::new(false));
        // Hold the dispatcher on a gate job so submissions stay queued.
        let gate = srv
            .submit(
                JobSpec::for_tenant("gate"),
                gate_runner(Arc::clone(&release)),
            )
            .expect_admitted();
        // Wait until the gate job is actually dispatched (backlog 0).
        while srv.backlog() > 0 {
            thread::yield_now();
        }
        let mut admitted = Vec::new();
        for _ in 0..2 {
            admitted.push(
                srv.submit(JobSpec::for_tenant("a"), ok_runner())
                    .expect_admitted(),
            );
        }
        // Third `a` job bounces; tenant `b` is unaffected.
        match srv.submit(JobSpec::for_tenant("a"), ok_runner()) {
            Submit::Rejected {
                reason: RejectReason::QueueFull { tenant, capacity },
            } => {
                assert_eq!(tenant, "a");
                assert_eq!(capacity, 2);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        let b = srv
            .submit(JobSpec::for_tenant("b"), ok_runner())
            .expect_admitted();
        release.store(true, Ordering::Release);
        assert!(gate.wait().is_success());
        for h in admitted {
            assert!(h.wait().is_success());
        }
        assert!(b.wait().is_success());
        srv.shutdown();
        assert_eq!(stats.snapshot().jobs_rejected, 1);
        assert_eq!(srv.tenant_report("a").unwrap().rejected, 1);
        assert_eq!(srv.tenant_report("b").unwrap().rejected, 0);
    }

    #[test]
    fn dequeue_is_priority_ordered() {
        let (srv, _) = server();
        let release = Arc::new(AtomicBool::new(false));
        let gate = srv
            .submit(
                JobSpec::for_tenant("gate"),
                gate_runner(Arc::clone(&release)),
            )
            .expect_admitted();
        while srv.backlog() > 0 {
            thread::yield_now();
        }
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (name, prio) in [
            ("low", Priority::Low),
            ("normal", Priority::Normal),
            ("high", Priority::High),
        ] {
            let order = Arc::clone(&order);
            handles.push(
                srv.submit(
                    JobSpec::for_tenant("t").with_priority(prio),
                    Box::new(move |_cx| {
                        order.lock().push(name);
                        Ok(JobYield::default())
                    }),
                )
                .expect_admitted(),
            );
        }
        release.store(true, Ordering::Release);
        gate.wait();
        for h in handles {
            assert!(h.wait().is_success());
        }
        assert_eq!(*order.lock(), vec!["high", "normal", "low"]);
        srv.shutdown();
    }

    #[test]
    fn saturation_sheds_newest_low_priority_first() {
        let stats = Arc::new(OpStats::new());
        let srv = ForceServer::new(
            ServerConfig {
                tenant_queue_capacity: 64,
                shed_watermark: 4,
                ..ServerConfig::default()
            },
            &stats,
        );
        let release = Arc::new(AtomicBool::new(false));
        let gate = srv
            .submit(
                JobSpec::for_tenant("gate"),
                gate_runner(Arc::clone(&release)),
            )
            .expect_admitted();
        while srv.backlog() > 0 {
            thread::yield_now();
        }
        // 2 High + 6 Low queued = backlog 8 > watermark 4: the dispatcher
        // sheds Low jobs down to the watermark before running anything.
        let high: Vec<JobHandle> = (0..2)
            .map(|_| {
                srv.submit(
                    JobSpec::for_tenant("t").with_priority(Priority::High),
                    ok_runner(),
                )
                .expect_admitted()
            })
            .collect();
        let low: Vec<JobHandle> = (0..6)
            .map(|_| {
                srv.submit(
                    JobSpec::for_tenant("t").with_priority(Priority::Low),
                    ok_runner(),
                )
                .expect_admitted()
            })
            .collect();
        release.store(true, Ordering::Release);
        gate.wait();
        let outcomes: Vec<JobOutcome> = low.iter().map(JobHandle::wait).collect();
        for h in &high {
            assert!(h.wait().is_success(), "High jobs are never shed");
        }
        let shed = outcomes.iter().filter(|o| **o == JobOutcome::Shed).count();
        assert_eq!(shed, 4, "backlog 8 must shed down to the watermark 4");
        // The *newest* Low jobs are victimized; the oldest survive.
        assert!(outcomes[0].is_success());
        assert_eq!(outcomes[5], JobOutcome::Shed);
        srv.shutdown();
        assert_eq!(stats.snapshot().jobs_shed, 4);
        assert!(srv.peak_backlog() >= 8);
    }

    #[test]
    fn transient_faults_retry_and_recover() {
        let (srv, stats) = server();
        let attempts = Arc::new(AtomicUsize::new(0));
        let attempts2 = Arc::clone(&attempts);
        let h = srv
            .submit(
                JobSpec::for_tenant("t").with_max_retries(5),
                Box::new(move |cx| {
                    attempts2.fetch_add(1, Ordering::SeqCst);
                    if cx.attempt() < 2 {
                        Err(JobError::Fault(ProcessFault {
                            pid: 0,
                            construct: "barrier",
                            payload: format!("{INJECTED_FAULT_MARKER} barrier (pid 0)"),
                        }))
                    } else {
                        Ok(JobYield::default())
                    }
                }),
            )
            .expect_admitted();
        assert_eq!(h.wait(), JobOutcome::Completed { retries: 2 });
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        srv.shutdown();
        assert_eq!(stats.snapshot().job_retries, 2);
        assert_eq!(srv.tenant_report("t").unwrap().retries, 2);
    }

    #[test]
    fn transient_retry_budget_exhausts() {
        let (srv, stats) = server();
        let h = srv
            .submit(
                JobSpec::for_tenant("t").with_max_retries(3),
                Box::new(move |_cx| {
                    Err(JobError::Fault(ProcessFault {
                        pid: 1,
                        construct: "doall",
                        payload: format!("{INJECTED_FAULT_MARKER} doall (pid 1)"),
                    }))
                }),
            )
            .expect_admitted();
        match h.wait() {
            JobOutcome::Faulted { error, retries } => {
                assert_eq!(retries, 3);
                assert!(error.is_transient());
            }
            other => panic!("expected Faulted, got {other:?}"),
        }
        srv.shutdown();
        assert_eq!(stats.snapshot().job_retries, 3);
    }

    #[test]
    fn deterministic_errors_never_retry() {
        let (srv, stats) = server();
        let attempts = Arc::new(AtomicUsize::new(0));
        let attempts2 = Arc::clone(&attempts);
        let h = srv
            .submit(
                JobSpec::for_tenant("t").with_max_retries(5),
                Box::new(move |_cx| {
                    attempts2.fetch_add(1, Ordering::SeqCst);
                    Err(JobError::Deterministic("line 3: divide by zero".into()))
                }),
            )
            .expect_admitted();
        match h.wait() {
            JobOutcome::Faulted { error, retries } => {
                assert_eq!(retries, 0, "deterministic errors must not retry");
                assert!(!error.is_transient());
            }
            other => panic!("expected Faulted, got {other:?}"),
        }
        assert_eq!(attempts.load(Ordering::SeqCst), 1);
        srv.shutdown();
        assert_eq!(stats.snapshot().job_retries, 0);
        // A genuine (non-injected) process fault is deterministic too.
        let real_panic = JobError::Fault(ProcessFault {
            pid: 0,
            construct: "critical",
            payload: "index out of bounds".into(),
        });
        assert!(!real_panic.is_transient());
    }

    #[test]
    fn queued_deadline_expires_without_running() {
        let (srv, stats) = server();
        let release = Arc::new(AtomicBool::new(false));
        let gate = srv
            .submit(
                JobSpec::for_tenant("gate"),
                gate_runner(Arc::clone(&release)),
            )
            .expect_admitted();
        while srv.backlog() > 0 {
            thread::yield_now();
        }
        let ran = Arc::new(AtomicBool::new(false));
        let ran2 = Arc::clone(&ran);
        let h = srv
            .submit(
                JobSpec::for_tenant("t").with_deadline(Duration::from_millis(5)),
                Box::new(move |_cx| {
                    ran2.store(true, Ordering::SeqCst);
                    Ok(JobYield::default())
                }),
            )
            .expect_admitted();
        thread::sleep(Duration::from_millis(20));
        release.store(true, Ordering::Release);
        gate.wait();
        assert_eq!(h.wait(), JobOutcome::DeadlineExceeded { ran: false });
        assert!(!ran.load(Ordering::SeqCst), "expired job must never run");
        srv.shutdown();
        assert_eq!(stats.snapshot().jobs_deadline_exceeded, 1);
    }

    #[test]
    fn running_deadline_fires_and_dominates() {
        let (srv, stats) = server();
        let h = srv
            .submit(
                JobSpec::for_tenant("t").with_deadline(Duration::from_millis(10)),
                Box::new(move |cx| {
                    // A cooperative long job: observes the deadline flag
                    // the way a fault-plane wait observes the trip.
                    while !cx.deadline_fired() {
                        thread::sleep(Duration::from_micros(200));
                    }
                    Ok(JobYield::default())
                }),
            )
            .expect_admitted();
        assert_eq!(h.wait(), JobOutcome::DeadlineExceeded { ran: true });
        srv.shutdown();
        assert_eq!(stats.snapshot().jobs_deadline_exceeded, 1);
    }

    #[test]
    fn deadline_trips_a_bound_fault_plane_through_resets() {
        // The watcher must keep re-asserting the trip: binding a plane
        // and resetting it after the deadline fires (as a session's
        // run-start reset would) still ends with the plane tripped.
        let stats = Arc::new(OpStats::new());
        let plane = FaultPlane::new(2, Arc::clone(&stats), crate::fault::FaultConfig::default());
        let srv = ForceServer::new(ServerConfig::default(), &stats);
        let plane2 = Arc::clone(&plane);
        let h = srv
            .submit(
                JobSpec::for_tenant("t").with_deadline(Duration::from_millis(10)),
                Box::new(move |cx| {
                    cx.bind_plane(&plane2);
                    // Wait for the first trip, then erase it like a
                    // session reset racing the watcher would.
                    while !plane2.is_tripped() {
                        thread::sleep(Duration::from_micros(100));
                    }
                    plane2.reset_for_job(crate::fault::FaultConfig::default());
                    // The watcher re-asserts the trip.
                    while !plane2.is_tripped() {
                        thread::sleep(Duration::from_micros(100));
                    }
                    Err(JobError::Fault(
                        plane2.take_fault().expect("tripped plane has a fault"),
                    ))
                }),
            )
            .expect_admitted();
        assert_eq!(h.wait(), JobOutcome::DeadlineExceeded { ran: true });
        srv.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_jobs_then_rejects() {
        let (srv, _) = server();
        let release = Arc::new(AtomicBool::new(false));
        let gate = srv
            .submit(
                JobSpec::for_tenant("gate"),
                gate_runner(Arc::clone(&release)),
            )
            .expect_admitted();
        while srv.backlog() > 0 {
            thread::yield_now();
        }
        let queued: Vec<JobHandle> = (0..5)
            .map(|_| {
                srv.submit(JobSpec::for_tenant("t"), ok_runner())
                    .expect_admitted()
            })
            .collect();
        // Request shutdown from another thread while the gate holds the
        // dispatcher, then release the gate: every admitted job must
        // still complete.
        let shutdown = {
            let release = Arc::clone(&release);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(5));
                release.store(true, Ordering::Release);
            })
        };
        srv.shutdown();
        shutdown.join().unwrap();
        assert!(gate.wait().is_success());
        for h in queued {
            assert!(h.wait().is_success(), "drain must run admitted jobs");
        }
        match srv.submit(JobSpec::for_tenant("t"), ok_runner()) {
            Submit::Rejected {
                reason: RejectReason::ShuttingDown,
            } => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
    }

    #[test]
    fn panicking_runner_is_contained() {
        let (srv, _) = server();
        let h = srv
            .submit(
                JobSpec::for_tenant("t"),
                Box::new(|_cx| -> Result<JobYield, JobError> {
                    panic!("runner bug");
                }),
            )
            .expect_admitted();
        match h.wait() {
            JobOutcome::Faulted { error, retries } => {
                assert_eq!(retries, 0);
                assert!(error.to_string().contains("runner bug"));
            }
            other => panic!("expected Faulted, got {other:?}"),
        }
        // The dispatcher survived; the server still serves.
        let h = srv
            .submit(JobSpec::for_tenant("t"), ok_runner())
            .expect_admitted();
        assert!(h.wait().is_success());
        srv.shutdown();
    }

    #[test]
    fn server_report_sums_tenants() {
        let (srv, _) = server();
        for tenant in ["a", "b"] {
            for _ in 0..3 {
                srv.submit(JobSpec::for_tenant(tenant), ok_runner())
                    .expect_admitted()
                    .wait();
            }
        }
        srv.shutdown();
        let report = srv.server_report();
        assert_eq!(report.admitted, 6);
        assert_eq!(report.completed, 6);
        assert_eq!(report.latency.count(), 6);
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.tenants[0].0, "a");
        assert_eq!(report.tenants[1].0, "b");
        assert!(report.peak_backlog <= 6);
    }

    #[test]
    fn reject_reasons_display() {
        assert_eq!(
            RejectReason::QueueFull {
                tenant: "acme".into(),
                capacity: 8
            }
            .to_string(),
            "tenant `acme` queue full (capacity 8)"
        );
        assert_eq!(
            RejectReason::ShuttingDown.to_string(),
            "server shutting down"
        );
    }
}
