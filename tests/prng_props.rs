//! Randomized property tests that run in the *default*, dependency-free
//! build.
//!
//! These are ports of the proptest suites (tests/proptests.rs and
//! tests/interpreter_arith.rs, both gated behind the non-default `ext`
//! feature) onto the in-repo [`XorShift64`] generator, so the hermetic
//! `cargo test --offline` keeps exercising the same invariants without a
//! crates registry.  Seeds are fixed, so every run replays the same cases;
//! when a case fails, the assertion message carries enough of the inputs
//! to reconstruct it as a plain regression test.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use the_force::machdep::{Machine, MachineId, Mutex, XorShift64};
use the_force::prelude::*;

/// Reference enumeration of a Fortran DO range.
fn naive_range(start: i64, last: i64, incr: i64) -> Vec<i64> {
    let mut v = Vec::new();
    let mut k = start;
    while (incr > 0 && k <= last) || (incr < 0 && k >= last) {
        v.push(k);
        k += incr;
        if v.len() > 100_000 {
            break;
        }
    }
    v
}

/// A nonzero increment in `-mag..=mag`.
fn nonzero_incr(rng: &mut XorShift64, mag: i64) -> i64 {
    let m = rng.next_i64_in(1, mag);
    if rng.next_bool() {
        m
    } else {
        -m
    }
}

/// A random string over `alphabet`, up to `max_len` chars.
fn random_string(rng: &mut XorShift64, alphabet: &[char], max_len: usize) -> String {
    let len = rng.next_index(max_len + 1);
    (0..len)
        .map(|_| alphabet[rng.next_index(alphabet.len())])
        .collect()
}

#[test]
fn force_range_matches_naive_enumeration() {
    let mut rng = XorShift64::new(1);
    for _ in 0..200 {
        let start = rng.next_i64_in(-100, 99);
        let last = rng.next_i64_in(-100, 99);
        let incr = nonzero_incr(&mut rng, 5);
        let r = ForceRange::new(start, last, incr);
        let naive = naive_range(start, last, incr);
        assert_eq!(
            r.count() as usize,
            naive.len(),
            "count mismatch for DO K = {start}, {last}, {incr}"
        );
        assert_eq!(
            r.iter().collect::<Vec<_>>(),
            naive,
            "values mismatch for DO K = {start}, {last}, {incr}"
        );
    }
}

#[test]
fn doall_executes_every_index_exactly_once() {
    let mut rng = XorShift64::new(2);
    for case in 0..24 {
        let start = rng.next_i64_in(-50, 49);
        let span = rng.next_i64_in(0, 119);
        let incr = nonzero_incr(&mut rng, 4);
        let nproc = rng.next_i64_in(1, 5) as usize;
        let chunk = rng.next_i64_in(1, 7) as u64;
        let selfsched = rng.next_bool();
        let last = if incr > 0 { start + span } else { start - span };
        let range = ForceRange::new(start, last, incr);
        let expected = naive_range(start, last, incr);
        let force = Force::new(nproc);
        let hits: Mutex<HashMap<i64, usize>> = Mutex::new(HashMap::new());
        force.run(|p| {
            let record = |i: i64| {
                *hits.lock().entry(i).or_insert(0) += 1;
            };
            if selfsched {
                p.selfsched_do_chunked(range, chunk, record);
            } else {
                p.presched_do(range, record);
            }
        });
        let hits = hits.into_inner();
        let ctx = format!(
            "case {case}: DO K = {start}, {last}, {incr} on {nproc} procs \
             (chunk {chunk}, selfsched {selfsched})"
        );
        assert_eq!(hits.len(), expected.len(), "{ctx}");
        for i in expected {
            assert_eq!(hits.get(&i), Some(&1), "index {i} in {ctx}");
        }
    }
}

#[test]
fn async_tokens_are_conserved() {
    let mut rng = XorShift64::new(3);
    let ids = [
        MachineId::Hep,
        MachineId::EncoreMultimax,
        MachineId::Cray2,
        MachineId::Flex32,
    ];
    for _ in 0..12 {
        let id = ids[rng.next_index(ids.len())];
        let pairs = rng.next_i64_in(1, 3) as usize;
        let per = rng.next_i64_in(1, 59) as u64;
        let machine = Machine::new(id);
        let chan: Async<u64> = Async::new(&machine);
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for p in 0..pairs as u64 {
                let chan = &chan;
                s.spawn(move || {
                    for i in 0..per {
                        chan.produce(p * per + i + 1);
                    }
                });
            }
            for _ in 0..pairs {
                let chan = &chan;
                let sum = &sum;
                s.spawn(move || {
                    for _ in 0..per {
                        sum.fetch_add(chan.consume(), Ordering::Relaxed);
                    }
                });
            }
        });
        let total = pairs as u64 * per;
        assert_eq!(
            sum.load(Ordering::Relaxed),
            total * (total + 1) / 2,
            "{} producers x {per} tokens on {}",
            pairs,
            id.name()
        );
        assert!(!chan.is_full());
    }
}

#[test]
fn pcase_sections_run_exactly_once() {
    let mut rng = XorShift64::new(4);
    for _ in 0..24 {
        let nproc = rng.next_i64_in(1, 5) as usize;
        let nsect = rng.next_index(10);
        let selfsched = rng.next_bool();
        let force = Force::new(nproc);
        let counts: Vec<AtomicU64> = (0..nsect).map(|_| AtomicU64::new(0)).collect();
        force.run(|p| {
            let mut pc = p.pcase();
            for c in &counts {
                pc = pc.sect(|| {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            if selfsched {
                pc.selfsched();
            } else {
                pc.presched();
            }
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::SeqCst),
                1,
                "section {i} of {nsect} on {nproc} procs (selfsched {selfsched})"
            );
        }
    }
}

#[test]
fn every_schedule_policy_covers_random_ranges_exactly_once() {
    // The unified distribute driver, randomized over range shape, force
    // width, and policy — the per-policy unit tests pin small fixed
    // ranges; this sweeps the space.
    let mut rng = XorShift64::new(16);
    let policies = SchedulePolicy::all();
    for case in 0..30 {
        let start = rng.next_i64_in(-50, 49);
        let span = rng.next_i64_in(0, 119);
        let incr = nonzero_incr(&mut rng, 4);
        let nproc = rng.next_i64_in(1, 6) as usize;
        let policy = policies[rng.next_index(policies.len())];
        let last = if incr > 0 { start + span } else { start - span };
        let range = ForceRange::new(start, last, incr);
        let expected = naive_range(start, last, incr);
        let force = Force::new(nproc);
        let hits: Mutex<HashMap<i64, usize>> = Mutex::new(HashMap::new());
        force.run(|p| {
            p.doall_with(policy, range, |i| {
                *hits.lock().entry(i).or_insert(0) += 1;
            });
        });
        let hits = hits.into_inner();
        let ctx =
            format!("case {case}: DO K = {start}, {last}, {incr} on {nproc} procs, {policy:?}");
        assert_eq!(hits.len(), expected.len(), "{ctx}");
        for i in expected {
            assert_eq!(hits.get(&i), Some(&1), "index {i} in {ctx}");
        }
    }
}

#[test]
fn askfor_split_trees_balance_exactly_under_stealing_on_every_machine() {
    // The deque-backed Askfor on all six machine personalities: random
    // split trees must conserve both the item count (every handler
    // invocation beyond the seeds was posted by some handler) and the
    // total value (splits conserve the sum), whatever the stealing
    // interleaving.
    let mut rng = XorShift64::new(17);
    for id in MachineId::all() {
        for _ in 0..4 {
            let nproc = rng.next_i64_in(1, 6) as usize;
            let nseeds = rng.next_i64_in(1, 4) as usize;
            let seeds: Vec<u64> = (0..nseeds).map(|_| rng.next_i64_in(1, 60) as u64).collect();
            let total: u64 = seeds.iter().sum();
            let force = Force::with_machine(nproc, Machine::new(id));
            let handled = AtomicU64::new(0);
            let posts = AtomicU64::new(0);
            let leaf_sum = AtomicU64::new(0);
            let seeds_in = seeds.clone();
            force.run(|p| {
                p.askfor(
                    || seeds_in.clone(),
                    |n, pot| {
                        handled.fetch_add(1, Ordering::SeqCst);
                        if n > 1 {
                            posts.fetch_add(2, Ordering::SeqCst);
                            pot.post(n / 2);
                            pot.post(n - n / 2);
                        } else {
                            leaf_sum.fetch_add(n, Ordering::SeqCst);
                        }
                    },
                );
                // After the construct's end barrier every process sees
                // the full accounting: posted == completed.
                assert_eq!(
                    handled.load(Ordering::SeqCst),
                    seeds_in.len() as u64 + posts.load(Ordering::SeqCst),
                    "{}: seeds {seeds_in:?} on {nproc} procs",
                    id.name()
                );
            });
            assert_eq!(
                leaf_sum.load(Ordering::SeqCst),
                total,
                "{}: seeds {seeds:?} on {nproc} procs",
                id.name()
            );
        }
    }
}

#[test]
fn askfor_processes_every_posted_item() {
    let mut rng = XorShift64::new(5);
    for _ in 0..16 {
        let nproc = rng.next_i64_in(1, 4) as usize;
        let seed = rng.next_i64_in(1, 39) as u64;
        let force = Force::new(nproc);
        let leaves = AtomicU64::new(0);
        force.run(|p| {
            p.askfor(
                || vec![seed],
                |n, pot| {
                    if n > 1 {
                        pot.post(n / 2);
                        pot.post(n - n / 2);
                    } else {
                        leaves.fetch_add(1, Ordering::Relaxed);
                    }
                },
            );
        });
        assert_eq!(
            leaves.load(Ordering::Relaxed),
            seed,
            "splitting {seed} on {nproc} procs"
        );
    }
}

#[test]
fn resolve_partitions_are_a_bijection() {
    let mut rng = XorShift64::new(6);
    for _ in 0..16 {
        let ncomp = rng.next_i64_in(1, 3) as usize;
        let sizes: Vec<usize> = (0..ncomp).map(|_| rng.next_i64_in(1, 3) as usize).collect();
        let nproc: usize = sizes.iter().sum();
        let force = Force::new(nproc);
        let seen: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
        let sizes2 = sizes.clone();
        force.run(|p| {
            p.resolve(&sizes2, |c| {
                seen.lock().push((c.index(), c.rank()));
            });
        });
        let mut seen = seen.into_inner();
        seen.sort_unstable();
        let mut expected = Vec::new();
        for (ci, &s) in sizes.iter().enumerate() {
            for r in 0..s {
                expected.push((ci, r));
            }
        }
        assert_eq!(seen, expected, "component sizes {sizes:?}");
    }
}

#[test]
fn m4_quoted_text_is_preserved() {
    const ALPHABET: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '_', '+', '=', '.', ',', ';', ':', '-',
    ];
    let mut rng = XorShift64::new(7);
    for _ in 0..200 {
        let text = random_string(&mut rng, ALPHABET, 60);
        let mut m4 = the_force::prep::m4::M4::new();
        let src = format!("`{text}'");
        assert_eq!(m4.expand(&src).unwrap(), text, "quoting {text:?}");
    }
}

#[test]
fn m4_define_roundtrip() {
    // Uppercase names cannot collide with the lowercase builtins, and the
    // body alphabet avoids forming builtin words.
    const NAME_TAIL: &[char] = &['A', 'B', 'Q', 'Z', '0', '9', '_'];
    const BODY: &[char] = &['x', 'y', 'z', '0', '9', ' ', '+', '*', '-'];
    let mut rng = XorShift64::new(8);
    for _ in 0..200 {
        let mut name = String::from("N");
        name.push_str(&random_string(&mut rng, NAME_TAIL, 10));
        let body = random_string(&mut rng, BODY, 30);
        let mut m4 = the_force::prep::m4::M4::new();
        m4.define(&name, &body);
        assert_eq!(m4.expand(&name).unwrap(), body, "define({name}, {body:?})");
    }
}

/// A deliberately hostile alphabet: multi-byte characters, Force/m4
/// metacharacters, and plain Fortran text.  Used by the never-panic
/// sweeps below (errors are fine; panics are not).
const HOSTILE: &[char] = &[
    'A',
    'k',
    '0',
    '7',
    ' ',
    '(',
    ')',
    '=',
    '+',
    ',',
    '.',
    '*',
    '/',
    '\'',
    '"',
    '`',
    '!',
    '\u{3a3}',
    '\u{e9}',
    '\u{6f22}',
    '\u{108f0}',
];

#[test]
fn fortran_lexer_never_panics() {
    let mut rng = XorShift64::new(9);
    for _ in 0..600 {
        let line = random_string(&mut rng, HOSTILE, 60);
        let _ = the_force::fortran::lexer::lex_statement(&line, 1);
    }
}

#[test]
fn fortran_parser_never_panics() {
    let mut rng = XorShift64::new(10);
    for _ in 0..600 {
        let line = random_string(&mut rng, HOSTILE, 60);
        if let Ok(toks) = the_force::fortran::lexer::lex_statement(&line, 1) {
            let _ = the_force::fortran::parser::parse_statement(&toks, 1);
        }
    }
}

#[test]
fn sed_pass_never_panics() {
    let mut rng = XorShift64::new(11);
    // The shrunk proptest counterexample seed first (a quote followed by
    // a multi-byte character), then the random sweep.
    let _ = the_force::prep::sedpass::sed_pass("\"\u{3a3}");
    for _ in 0..600 {
        let line = random_string(&mut rng, HOSTILE, 60);
        let _ = the_force::prep::sedpass::sed_pass(&line);
    }
}

#[test]
fn shared_f64_adds_are_exact_for_integers() {
    let mut rng = XorShift64::new(12);
    for _ in 0..10 {
        let nproc = rng.next_i64_in(1, 4) as usize;
        let n = rng.next_i64_in(1, 299);
        let arr = SharedF64Array::zeroed(1);
        let force = Force::new(nproc);
        force.run(|p| {
            p.selfsched_do(ForceRange::to(1, n), |_| {
                arr.add(0, 1.0);
            });
        });
        assert_eq!(arr.get(0), n as f64, "{n} adds on {nproc} procs");
    }
}

#[test]
fn barrier_algorithms_agree_with_each_other() {
    use force_machdep::spawn_force;
    use the_force::core::barrier_algs::{all_algorithms, BarrierAlg};
    let mut rng = XorShift64::new(13);
    for _ in 0..6 {
        let n = rng.next_i64_in(1, 6) as usize;
        let rounds = rng.next_i64_in(1, 14) as usize;
        let machine = Machine::new(MachineId::EncoreMultimax);
        for alg in all_algorithms(&machine, n) {
            let counter = AtomicU64::new(0);
            let alg: &dyn BarrierAlg = alg.as_ref();
            spawn_force(n, machine.stats(), |pid| {
                for r in 0..rounds {
                    counter.fetch_add(1, Ordering::SeqCst);
                    alg.wait(pid);
                    let seen = counter.load(Ordering::SeqCst);
                    assert!(
                        seen >= ((r + 1) * n) as u64,
                        "{} with {n} procs, round {r}",
                        alg.name()
                    );
                    alg.wait(pid);
                }
            });
            assert_eq!(
                counter.load(Ordering::SeqCst),
                (rounds * n) as u64,
                "{} with {n} procs",
                alg.name()
            );
        }
    }
}

#[test]
fn interpreter_sum_matches_for_random_bounds() {
    let mut rng = XorShift64::new(14);
    for _ in 0..6 {
        let start = rng.next_i64_in(1, 19);
        let last = rng.next_i64_in(1, 59);
        let nproc = rng.next_i64_in(1, 3) as usize;
        let expected: i64 = naive_range(start, last, 1).iter().sum();
        let src = format!(
            "      Force FMAIN of NP ident ME\n\
             \x20     Shared INTEGER TOTAL\n\
             \x20     Private INTEGER K\n\
             \x20     End declarations\n\
             \x20     Selfsched DO 100 K = {start}, {last}\n\
             \x20     Critical LCK\n\
             \x20     TOTAL = TOTAL + K\n\
             \x20     End critical\n\
             100   End selfsched DO\n\
             \x20     Join\n"
        );
        let out = the_force::run_force_source(&src, MachineId::Flex32, nproc).unwrap();
        assert_eq!(
            out.shared_scalar("TOTAL").unwrap().as_int(0).unwrap(),
            expected,
            "sum {start}..={last} on {nproc} procs"
        );
    }
}

#[test]
fn interpreter_do_loops_match_reference_iteration() {
    let mut rng = XorShift64::new(15);
    for _ in 0..8 {
        let from = rng.next_i64_in(-10, 10);
        let to = rng.next_i64_in(-10, 10);
        let step = nonzero_incr(&mut rng, 3);
        let mut expected = 0i64;
        let mut k = from;
        while (step > 0 && k <= to) || (step < 0 && k >= to) {
            expected += k;
            k += step;
        }
        let src = format!(
            "      Force FMAIN of NP ident ME\n\
             \x20     Shared INTEGER S\n\
             \x20     Private INTEGER K\n\
             \x20     End declarations\n\
             \x20     S = 0\n\
             \x20     DO 10 K = {from}, {to}, {step}\n\
             \x20     S = S + K\n\
             10    CONTINUE\n\
             \x20     Join\n"
        );
        let out = the_force::run_force_source(&src, MachineId::Hep, 1).unwrap();
        assert_eq!(
            out.shared_scalar("S").unwrap().as_int(0).unwrap(),
            expected,
            "DO K = {from}, {to}, {step}"
        );
    }
}

#[test]
fn random_expressions_agree_across_executors() {
    // Dependency-free port of tests/interpreter_arith.rs extended to the
    // executor matrix: every random integer expression must evaluate to
    // the Rust reference value under BOTH the tree-walking interpreter
    // and the bytecode VM.
    use the_force::compile_force_source;
    use the_force::machdep::{ExecutorChoice, RunOptions};

    // Build a random Fortran expression over V1..V4 and evaluate it with
    // checked reference arithmetic (None = division by zero or overflow;
    // such cases are skipped, as in the proptest original).
    fn gen(rng: &mut XorShift64, depth: usize, vars: &[i64; 4]) -> (String, Option<i64>) {
        if depth == 0 || rng.next_index(3) == 0 {
            if rng.next_bool() {
                let n = rng.next_i64_in(-9, 9);
                let s = if n < 0 {
                    format!("({n})")
                } else {
                    n.to_string()
                };
                return (s, Some(n));
            }
            let i = rng.next_index(4);
            return (format!("V{}", i + 1), Some(vars[i]));
        }
        let (a, av) = gen(rng, depth - 1, vars);
        let op = rng.next_index(9);
        if op == 7 {
            return (format!("(-{a})"), av.and_then(i64::checked_neg));
        }
        if op == 8 {
            return (format!("ABS({a})"), av.and_then(i64::checked_abs));
        }
        let (b, bv) = gen(rng, depth - 1, vars);
        let v = match (av, bv) {
            (Some(x), Some(y)) => match op {
                0 => x.checked_add(y),
                1 => x.checked_sub(y),
                2 => x.checked_mul(y),
                3 => (y != 0).then(|| x.checked_div(y)).flatten(),
                4 => (y != 0).then(|| x.checked_rem(y)).flatten(),
                5 => Some(x.min(y)),
                _ => Some(x.max(y)),
            },
            _ => None,
        };
        let s = match op {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} / {b})"),
            4 => format!("MOD({a}, {b})"),
            5 => format!("MIN({a}, {b})"),
            _ => format!("MAX({a}, {b})"),
        };
        (s, v)
    }

    let mut rng = XorShift64::new(17);
    let mut compared = 0;
    for _ in 0..120 {
        let vars = [
            rng.next_i64_in(-9, 9),
            rng.next_i64_in(-9, 9),
            rng.next_i64_in(-9, 9),
            rng.next_i64_in(-9, 9),
        ];
        let (e, v) = gen(&mut rng, 3, &vars);
        let Some(expected) = v else { continue };
        let src = format!(
            "      Force FMAIN of NP ident ME\n\
             \x20     Shared INTEGER R\n\
             \x20     Private INTEGER V1, V2, V3, V4\n\
             \x20     End declarations\n\
             \x20     V1 = {}\n\
             \x20     V2 = {}\n\
             \x20     V3 = {}\n\
             \x20     V4 = {}\n\
             \x20     R = {e}\n\
             \x20     Join\n",
            vars[0], vars[1], vars[2], vars[3],
        );
        for executor in [ExecutorChoice::TreeWalk, ExecutorChoice::Bytecode] {
            let (_expanded, engine) = compile_force_source(&src, MachineId::Cray2).unwrap();
            let out = engine
                .run_with(
                    1,
                    RunOptions {
                        executor,
                        ..RunOptions::default()
                    },
                )
                .unwrap();
            assert_eq!(
                out.shared_scalar("R").unwrap().as_int(0).unwrap(),
                expected,
                "{executor:?}: expr {e} with V = {vars:?}"
            );
        }
        compared += 1;
    }
    assert!(compared > 40, "only {compared} comparable cases generated");
}
