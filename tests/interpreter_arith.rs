//! Differential testing of the mini-Fortran interpreter's expression
//! evaluation against a Rust reference implementation, over randomly
//! generated integer expression trees.
//!
//! Gated behind the non-default `ext` feature because proptest is an
//! external dependency and the default build is hermetic (see Cargo.toml);
//! tests/prng_props.rs carries a dependency-free differential test.
#![cfg(feature = "ext")]

use proptest::prelude::*;
use the_force::compile_force_source;
use the_force::machdep::{ExecutorChoice, MachineId, RunOptions};
use the_force::run_force_source;

/// Run `src` once per executor and return the integer value of shared
/// scalar `name` from each: (tree-walker, bytecode VM).  Each run gets a
/// fresh engine and machine so no state leaks between executors.
fn both_executors(src: &str, id: MachineId, name: &str) -> (i64, i64) {
    let mut results = [0i64; 2];
    for (slot, executor) in [ExecutorChoice::TreeWalk, ExecutorChoice::Bytecode]
        .into_iter()
        .enumerate()
    {
        let (_expanded, engine) = compile_force_source(src, id).unwrap();
        let out = engine
            .run_with(
                1,
                RunOptions {
                    executor,
                    ..RunOptions::default()
                },
            )
            .unwrap();
        results[slot] = out.shared_scalar(name).unwrap().as_int(0).unwrap();
    }
    (results[0], results[1])
}

/// A tiny expression AST with its own Rust evaluator and Fortran
/// pretty-printer.
#[derive(Debug, Clone)]
enum E {
    Lit(i64),
    Var(usize), // V1..V4
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Neg(Box<E>),
    Abs(Box<E>),
    Mod(Box<E>, Box<E>),
    Min(Box<E>, Box<E>),
    Max(Box<E>, Box<E>),
}

impl E {
    /// Evaluate with Fortran semantics (integer division truncates toward
    /// zero — same as Rust's `/`).  Returns None on division/modulo by
    /// zero or overflow (such cases are filtered out of the comparison).
    fn eval(&self, vars: &[i64; 4]) -> Option<i64> {
        Some(match self {
            E::Lit(n) => *n,
            E::Var(i) => vars[*i],
            E::Add(a, b) => a.eval(vars)?.checked_add(b.eval(vars)?)?,
            E::Sub(a, b) => a.eval(vars)?.checked_sub(b.eval(vars)?)?,
            E::Mul(a, b) => a.eval(vars)?.checked_mul(b.eval(vars)?)?,
            E::Div(a, b) => {
                let d = b.eval(vars)?;
                if d == 0 {
                    return None;
                }
                a.eval(vars)?.checked_div(d)?
            }
            E::Neg(a) => a.eval(vars)?.checked_neg()?,
            E::Abs(a) => a.eval(vars)?.checked_abs()?,
            E::Mod(a, b) => {
                let d = b.eval(vars)?;
                if d == 0 {
                    return None;
                }
                a.eval(vars)?.checked_rem(d)?
            }
            E::Min(a, b) => a.eval(vars)?.min(b.eval(vars)?),
            E::Max(a, b) => a.eval(vars)?.max(b.eval(vars)?),
        })
    }

    /// Print as a Fortran expression.
    fn fortran(&self) -> String {
        match self {
            E::Lit(n) => {
                if *n < 0 {
                    format!("({n})")
                } else {
                    n.to_string()
                }
            }
            E::Var(i) => format!("V{}", i + 1),
            E::Add(a, b) => format!("({} + {})", a.fortran(), b.fortran()),
            E::Sub(a, b) => format!("({} - {})", a.fortran(), b.fortran()),
            E::Mul(a, b) => format!("({} * {})", a.fortran(), b.fortran()),
            E::Div(a, b) => format!("({} / {})", a.fortran(), b.fortran()),
            E::Neg(a) => format!("(-{})", a.fortran()),
            E::Abs(a) => format!("ABS({})", a.fortran()),
            E::Mod(a, b) => format!("MOD({}, {})", a.fortran(), b.fortran()),
            E::Min(a, b) => format!("MIN({}, {})", a.fortran(), b.fortran()),
            E::Max(a, b) => format!("MAX({}, {})", a.fortran(), b.fortran()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![(-9i64..=9).prop_map(E::Lit), (0usize..4).prop_map(E::Var)];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mod(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Max(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.prop_map(|a| E::Abs(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interpreter_matches_reference_evaluation(
        e in arb_expr(),
        vars in proptest::array::uniform4(-9i64..=9),
    ) {
        let expected = match e.eval(&vars) {
            Some(v) => v,
            None => return Ok(()), // division by zero / overflow: skip
        };
        let src = format!(
            "      Force FMAIN of NP ident ME\n\
             \x20     Shared INTEGER R\n\
             \x20     Private INTEGER V1, V2, V3, V4\n\
             \x20     End declarations\n\
             \x20     V1 = {}\n\
             \x20     V2 = {}\n\
             \x20     V3 = {}\n\
             \x20     V4 = {}\n\
             \x20     R = {}\n\
             \x20     Join\n",
            vars[0], vars[1], vars[2], vars[3],
            e.fortran()
        );
        let out = run_force_source(&src, MachineId::Hep, 1).unwrap();
        let got = out.shared_scalar("R").unwrap().as_int(0).unwrap();
        prop_assert_eq!(got, expected, "expr: {}", e.fortran());

        // Both executors must agree with the reference (and each other).
        let (tree, vm) = both_executors(&src, MachineId::Hep, "R");
        prop_assert_eq!(tree, expected, "tree-walker, expr: {}", e.fortran());
        prop_assert_eq!(vm, expected, "bytecode VM, expr: {}", e.fortran());
    }

    #[test]
    fn relational_operators_match_reference(
        a in -20i64..=20,
        b in -20i64..=20,
    ) {
        // Encode all six comparisons in one program.
        let src = format!(
            "      Force FMAIN of NP ident ME\n\
             \x20     Shared INTEGER MASK\n\
             \x20     Private INTEGER A, B\n\
             \x20     End declarations\n\
             \x20     A = {a}\n\
             \x20     B = {b}\n\
             \x20     MASK = 0\n\
             \x20     IF (A .EQ. B) MASK = MASK + 1\n\
             \x20     IF (A .NE. B) MASK = MASK + 2\n\
             \x20     IF (A .LT. B) MASK = MASK + 4\n\
             \x20     IF (A .LE. B) MASK = MASK + 8\n\
             \x20     IF (A .GT. B) MASK = MASK + 16\n\
             \x20     IF (A .GE. B) MASK = MASK + 32\n\
             \x20     Join\n"
        );
        let expected = (a == b) as i64
            + 2 * (a != b) as i64
            + 4 * (a < b) as i64
            + 8 * (a <= b) as i64
            + 16 * (a > b) as i64
            + 32 * (a >= b) as i64;
        let out = run_force_source(&src, MachineId::Flex32, 1).unwrap();
        prop_assert_eq!(
            out.shared_scalar("MASK").unwrap().as_int(0).unwrap(),
            expected
        );
        let (tree, vm) = both_executors(&src, MachineId::Flex32, "MASK");
        prop_assert_eq!(tree, expected, "tree-walker");
        prop_assert_eq!(vm, expected, "bytecode VM");
    }

    #[test]
    fn do_loops_match_reference_iteration(
        from in -10i64..=10,
        to in -10i64..=10,
        step in prop_oneof![-3i64..=-1, 1i64..=3],
    ) {
        let mut expected = 0i64;
        let mut k = from;
        while (step > 0 && k <= to) || (step < 0 && k >= to) {
            expected += k;
            k += step;
        }
        let src = format!(
            "      Force FMAIN of NP ident ME\n\
             \x20     Shared INTEGER S\n\
             \x20     Private INTEGER K\n\
             \x20     End declarations\n\
             \x20     S = 0\n\
             \x20     DO 10 K = {from}, {to}, {step}\n\
             \x20     S = S + K\n\
             10    CONTINUE\n\
             \x20     Join\n"
        );
        let out = run_force_source(&src, MachineId::Hep, 1).unwrap();
        prop_assert_eq!(out.shared_scalar("S").unwrap().as_int(0).unwrap(), expected);
        let (tree, vm) = both_executors(&src, MachineId::Hep, "S");
        prop_assert_eq!(tree, expected, "tree-walker");
        prop_assert_eq!(vm, expected, "bytecode VM");
    }
}
