//! EXP-2 — the six-machine portability matrix.
//!
//! A suite of Force programs, each exercising a different construct
//! class, preprocessed and executed on every machine personality.  The
//! programs never change; the ports differ only in the machine-dependent
//! macro set and driver — the paper's claim that "porting it between
//! machines with similar system supported primitives is almost trivial".

use the_force::fortran::Value;
use the_force::machdep::{MachineId, SharingModelId};
use the_force::run_force_source;

/// Run on all machines at several force sizes; verify with `check`.
fn matrix(src: &str, check: impl Fn(MachineId, usize, &the_force::fortran::RunOutput)) {
    for id in MachineId::all() {
        for nproc in [1, 2, 4] {
            let out = run_force_source(src, id, nproc)
                .unwrap_or_else(|e| panic!("{} nproc={nproc}: {e}", id.name()));
            check(id, nproc, &out);
        }
    }
}

#[test]
fn critical_section_counter() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      Private INTEGER K
      End declarations
      Presched DO 10 K = 1, 20
      Critical LCK
      N = N + 1
      End critical
10    End presched DO
      Join
";
    matrix(src, |id, nproc, out| {
        assert_eq!(
            out.shared_scalar("N"),
            Some(Value::Int(20)),
            "{} nproc={nproc}",
            id.name()
        );
    });
}

#[test]
fn barrier_section_runs_once() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER TIMES
      End declarations
      Barrier
      TIMES = TIMES + 1
      End barrier
      Barrier
      TIMES = TIMES + 1
      End barrier
      Join
";
    matrix(src, |id, nproc, out| {
        assert_eq!(
            out.shared_scalar("TIMES"),
            Some(Value::Int(2)),
            "{} nproc={nproc}: the barrier section must run exactly once per barrier",
            id.name()
        );
    });
}

#[test]
fn pcase_sections_distribute() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER A, B, C, D
      End declarations
      Pcase
      Usect
      A = A + 1
      Usect
      B = B + 1
      Csect (1 .GT. 0)
      C = C + 1
      Csect (1 .LT. 0)
      D = D + 1
      End pcase
      Selfsched Pcase
      Usect
      A = A + 10
      Usect
      B = B + 10
      End pcase
      Join
";
    matrix(src, |id, nproc, out| {
        let g = |n: &str| out.shared_scalar(n).unwrap();
        assert_eq!(g("A"), Value::Int(11), "{} nproc={nproc}", id.name());
        assert_eq!(g("B"), Value::Int(11), "{} nproc={nproc}", id.name());
        assert_eq!(g("C"), Value::Int(1), "{} nproc={nproc}", id.name());
        assert_eq!(g("D"), Value::Int(0), "{} nproc={nproc}", id.name());
    });
}

#[test]
fn produce_consume_void_copy() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER GOT, PEEK
      Async INTEGER CHAN
      Private INTEGER T
      End declarations
      Barrier
      End barrier
      IF (ME .EQ. 0) THEN
      Produce CHAN = 7 * 6
      END IF
      IF (ME .EQ. NP - 1) THEN
      Copy CHAN into T
      PEEK = T
      Consume CHAN into T
      GOT = T
      END IF
      Barrier
      Void CHAN
      End barrier
      Join
";
    matrix(src, |id, nproc, out| {
        assert_eq!(
            out.shared_scalar("PEEK"),
            Some(Value::Int(42)),
            "{} nproc={nproc}",
            id.name()
        );
        assert_eq!(
            out.shared_scalar("GOT"),
            Some(Value::Int(42)),
            "{} nproc={nproc}",
            id.name()
        );
    });
}

#[test]
fn forcesub_with_shared_state_and_externf() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER TOTAL
      Private INTEGER K
      Externf WORKER
      End declarations
      CALL WORKER(3)
      Barrier
      End barrier
      Join
      Forcesub WORKER(TIMES) of NP ident ME
      Shared INTEGER TOTAL
      Private INTEGER J
      End declarations
      Presched DO 10 J = 1, 10
      Critical WLCK
      TOTAL = TOTAL + TIMES
      End critical
10    End presched DO
      Join
";
    matrix(src, |id, nproc, out| {
        assert_eq!(
            out.shared_scalar("TOTAL"),
            Some(Value::Int(30)),
            "{} nproc={nproc}",
            id.name()
        );
    });
}

#[test]
fn real_arithmetic_reduction() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared REAL SUM
      Private INTEGER K
      Private REAL X
      End declarations
      Selfsched DO 100 K = 1, 50
      X = FLOAT(K) * 0.5
      Critical RLCK
      SUM = SUM + X
      End critical
100   End selfsched DO
      Join
";
    matrix(src, |id, nproc, out| {
        let sum = out.shared_scalar("SUM").unwrap().as_real(0).unwrap();
        assert!(
            (sum - 637.5).abs() < 1e-9,
            "{} nproc={nproc}: SUM={sum}",
            id.name()
        );
    });
}

#[test]
fn machine_profiles_differ_along_the_taxonomy() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 1, 40
      Critical LCK
      N = N + 1
      End critical
100   End selfsched DO
      Join
";
    for id in MachineId::all() {
        let out = run_force_source(src, id, 3).unwrap();
        let s = &out.stats;
        let spec = the_force::machdep::MachineSpec::of(id);
        match id {
            MachineId::Hep => {
                assert_eq!(s.syscalls, 0, "HEP never calls the OS for locks");
                assert!(
                    s.fe_produces + s.fe_consumes > 0,
                    "HEP locks are full/empty accesses"
                );
            }
            MachineId::Cray2 => {
                assert!(s.syscalls > 0, "every Cray lock op is a system call");
            }
            MachineId::SequentBalance => {
                assert!(
                    !out.linker_commands.is_empty(),
                    "the Sequent port must emit linker commands"
                );
            }
            MachineId::EncoreMultimax | MachineId::AlliantFx8 => {
                assert!(s.padding_words > 0, "{}: paged sharing must pad", id.name());
            }
            MachineId::Flex32 => {
                // combined locks: contended acquires may park, but the
                // uncontended path must not be all-syscall
                assert!(s.lock_acquires as f64 > s.syscalls as f64 * 0.5);
            }
        }
        match spec.sharing {
            SharingModelId::LinkTime => assert!(!out.linker_commands.is_empty()),
            _ => assert!(out.linker_commands.is_empty(), "{}", id.name()),
        }
        // Every machine computed the same answer.
        assert_eq!(
            out.shared_scalar("N"),
            Some(Value::Int(40)),
            "{}",
            id.name()
        );
    }
}

#[test]
fn simulated_cycle_profiles_follow_the_cost_models() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 1, 60
      Critical LCK
      N = N + 1
      End critical
100   End selfsched DO
      Join
";
    let mut cycles = std::collections::HashMap::new();
    for id in MachineId::all() {
        let out = run_force_source(src, id, 2).unwrap();
        cycles.insert(id, out.cycles);
    }
    // The HEP (cheap spawn + hardware sync) must be the cheapest port;
    // the Cray (per-lock syscalls + expensive fork) the most expensive.
    let hep = cycles[&MachineId::Hep];
    let cray = cycles[&MachineId::Cray2];
    for (id, c) in &cycles {
        assert!(hep <= *c, "HEP {hep} should not exceed {} {c}", id.name());
        assert!(
            cray >= *c,
            "Cray {cray} should not undercut {} {c}",
            id.name()
        );
    }
    assert!(
        cray > 5 * hep,
        "the gap should be large: hep={hep} cray={cray}"
    );
}
